//! Deterministic discrete-event simulation of the serving loop.
//!
//! The threaded server ([`crate::server`]) is real but its timings depend on
//! the host; this module replays the same scheduler against a virtual clock
//! so SLO claims ("zero violations among admitted requests", "dynamic beats
//! fixed-batch-1 by ≥1.3×") are exactly reproducible: the same seed and
//! worker count produce a byte-identical batch/shed log on every machine.
//!
//! No wall clock, no OS entropy: arrivals come from a splittable LCG and an
//! exponential inter-arrival transform, all times are f64 microseconds on
//! the virtual clock.

use crate::request::ShedReason;
use crate::scheduler::{Action, BatchPolicy, Scheduler};
use std::collections::VecDeque;
use ucudnn_framework::StreamingHistogram;

/// One simulated load experiment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Load-generator seed; the only entropy source in the simulation.
    pub seed: u64,
    /// Per-request deadline budget, microseconds.
    pub slo_us: f64,
    /// Bounded admission queue capacity.
    pub queue_cap: usize,
    /// Parallel worker lanes.
    pub workers: usize,
    /// Coalesced-batch cap.
    pub max_batch: usize,
    /// Mean offered load, requests per second (Poisson arrivals).
    pub arrival_rate_rps: f64,
    /// Total requests to offer.
    pub requests: usize,
    /// Batching policy under test.
    pub policy: BatchPolicy,
}

/// Sheds tallied per rung of the degradation ladder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedCounts {
    /// Admission-control rejections (queue full).
    pub queue_full: u64,
    /// Scheduler-proven deadline misses, dropped before execution.
    pub deadline_infeasible: u64,
    /// Batches lost to permanent execution faults.
    pub exec_failed: u64,
    /// Rejected during drain.
    pub draining: u64,
}

impl ShedCounts {
    /// Total sheds across all reasons.
    pub fn total(&self) -> u64 {
        self.queue_full + self.deadline_infeasible + self.exec_failed + self.draining
    }

    /// Bump the counter for one reason.
    pub fn bump(&mut self, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => self.queue_full += 1,
            ShedReason::DeadlineInfeasible => self.deadline_infeasible += 1,
            ShedReason::ExecFailed => self.exec_failed += 1,
            ShedReason::Draining => self.draining += 1,
        }
    }
}

/// What one simulated run produced.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Requests that completed within the simulation.
    pub completed: u64,
    /// Requests shed, by reason.
    pub shed: ShedCounts,
    /// Completed requests whose end-to-end latency exceeded the SLO.
    pub violations: u64,
    /// Every fired batch size, in firing order.
    pub batch_sizes: Vec<usize>,
    /// The deterministic batch/shed log (one line per decision); byte-
    /// identical across runs with the same config.
    pub log: Vec<String>,
    /// End-to-end latency distribution of completed requests.
    pub latencies: StreamingHistogram,
    /// Virtual time of the first arrival.
    pub first_arrival_us: f64,
    /// Virtual time of the last batch completion.
    pub last_completion_us: f64,
}

impl SimOutcome {
    /// Completed-request throughput over the active window, requests/s.
    pub fn throughput_rps(&self) -> f64 {
        let span = self.last_completion_us - self.first_arrival_us;
        if span <= 0.0 || self.completed == 0 {
            0.0
        } else {
            self.completed as f64 / (span / 1e6)
        }
    }

    /// Mean fired batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            0.0
        } else {
            self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
        }
    }
}

/// The deterministic load generator: Knuth/MMIX LCG driving an exponential
/// inter-arrival transform. No `rand`, no wall clock.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    /// Uniform draw in `(0, 1]` (53-bit mantissa; never 0, so `ln` is safe).
    pub fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }
}

/// Poisson arrival times (µs) for `n` requests at `rate_rps`.
pub fn poisson_arrivals(seed: u64, n: usize, rate_rps: f64) -> Vec<f64> {
    assert!(rate_rps > 0.0, "arrival rate must be positive");
    let rate_per_us = rate_rps / 1e6;
    let mut rng = Lcg::new(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += -rng.next_unit().ln() / rate_per_us;
            t
        })
        .collect()
}

/// Run one experiment: offered arrivals flow through admission control, the
/// scheduler, and a pool of virtual workers executing from the latency
/// table.
pub fn run_sim(sched: &Scheduler, cfg: &SimConfig) -> SimOutcome {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.queue_cap >= 1, "need a non-empty queue");
    let arrivals = poisson_arrivals(cfg.seed, cfg.requests, cfg.arrival_rate_rps);
    let mut out = SimOutcome {
        completed: 0,
        shed: ShedCounts::default(),
        violations: 0,
        batch_sizes: Vec::new(),
        log: Vec::new(),
        latencies: StreamingHistogram::new(),
        first_arrival_us: arrivals.first().copied().unwrap_or(0.0),
        last_completion_us: 0.0,
    };

    // (id, arrival time) admitted and waiting.
    let mut queue: VecDeque<(u64, f64)> = VecDeque::new();
    let mut next_id: usize = 0; // next offered arrival index
    let mut free_at = vec![0.0f64; cfg.workers];

    loop {
        // The earliest-free worker drives the clock (ties: lowest index).
        let (w, _) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .unwrap();
        let mut now = free_at[w];

        // Nothing queued: jump to the next arrival or finish.
        if queue.is_empty() {
            if next_id >= arrivals.len() {
                break;
            }
            now = now.max(arrivals[next_id]);
        }

        // Admit everything that has arrived by `now`, bounded by the queue.
        while next_id < arrivals.len() && arrivals[next_id] <= now {
            let (id, at) = (next_id as u64, arrivals[next_id]);
            next_id += 1;
            if queue.len() >= cfg.queue_cap {
                out.shed.bump(ShedReason::QueueFull);
                out.log
                    .push(format!("shed t={at:.3} id={id} reason=queue_full"));
            } else {
                queue.push_back((id, at));
            }
        }
        if queue.is_empty() {
            free_at[w] = now;
            continue;
        }

        let times: Vec<f64> = queue.iter().map(|&(_, at)| at).collect();
        let next_arrival = arrivals.get(next_id).copied();
        match sched.decide(now, &times, next_arrival) {
            Action::Fire(d) => {
                let finish = now + d.exec_us;
                free_at[w] = finish;
                out.last_completion_us = out.last_completion_us.max(finish);
                let mut ids = Vec::with_capacity(d.batch);
                for _ in 0..d.batch {
                    let (id, at) = queue.pop_front().expect("planned batch exceeds queue");
                    let latency = finish - at;
                    if latency > sched.slo_us() + 1e-6 {
                        out.violations += 1;
                    }
                    out.latencies.record(latency);
                    out.completed += 1;
                    ids.push(id);
                }
                out.batch_sizes.push(d.batch);
                let micros = d
                    .micros
                    .iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join("+");
                out.log.push(format!(
                    "fire t={now:.3} worker={w} batch={} micros={micros} exec={:.3} ids={}..{}",
                    d.batch,
                    d.exec_us,
                    ids.first().unwrap(),
                    ids.last().unwrap()
                ));
            }
            Action::WaitUntil(t) => {
                // Admission above guarantees the next arrival is strictly in
                // the future, so the clock always advances.
                debug_assert!(t > now, "wait must move the clock forward");
                free_at[w] = t;
            }
            Action::ShedOldest => {
                let (id, _at) = queue.pop_front().unwrap();
                out.shed.bump(ShedReason::DeadlineInfeasible);
                out.log.push(format!(
                    "shed t={now:.3} id={id} reason=deadline_infeasible"
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<(usize, f64)> {
        // Strongly sub-linear: t(1)=500, t(32)=1120 (35µs/sample).
        [1usize, 2, 4, 8, 16, 32]
            .into_iter()
            .map(|m| (m, 480.0 + 20.0 * m as f64))
            .collect()
    }

    fn cfg(policy: BatchPolicy) -> SimConfig {
        SimConfig {
            seed: 7,
            slo_us: 20_000.0,
            queue_cap: 256,
            workers: 2,
            max_batch: 32,
            arrival_rate_rps: 4_000.0,
            requests: 400,
            policy,
        }
    }

    #[test]
    fn arrivals_are_monotone_and_seed_deterministic() {
        let a = poisson_arrivals(42, 100, 1000.0);
        let b = poisson_arrivals(42, 100, 1000.0);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t.is_finite() && t > 0.0));
        let c = poisson_arrivals(43, 100, 1000.0);
        assert_ne!(a, c);
    }

    #[test]
    fn dynamic_admits_everything_it_keeps_within_slo() {
        let c = cfg(BatchPolicy::Dynamic);
        let sched = Scheduler::new(table(), c.slo_us, c.max_batch, c.policy);
        let out = run_sim(&sched, &c);
        assert_eq!(out.violations, 0, "admitted requests must meet the SLO");
        assert_eq!(
            out.completed + out.shed.total(),
            c.requests as u64,
            "every offered request is accounted for"
        );
        assert!(out.completed > 0);
        assert!(out.mean_batch() > 1.0, "load this heavy must coalesce");
    }

    #[test]
    fn same_seed_gives_a_byte_identical_log() {
        let c = cfg(BatchPolicy::Dynamic);
        let sched = Scheduler::new(table(), c.slo_us, c.max_batch, c.policy);
        let a = run_sim(&sched, &c);
        let b = run_sim(&sched, &c);
        assert_eq!(a.log, b.log);
        assert_eq!(a.batch_sizes, b.batch_sizes);
        assert_eq!(a.shed, b.shed);
    }

    #[test]
    fn overload_sheds_but_never_violates_under_dynamic() {
        let mut c = cfg(BatchPolicy::Dynamic);
        // Far beyond the two workers' capacity (~2/0.000035µs ≈ 57k rps at
        // perfect batching, but SLO and queue cap bite much earlier).
        c.arrival_rate_rps = 400_000.0;
        c.queue_cap = 64;
        c.requests = 2_000;
        let sched = Scheduler::new(table(), c.slo_us, c.max_batch, c.policy);
        let out = run_sim(&sched, &c);
        assert!(out.shed.total() > 0, "overload must shed");
        assert_eq!(out.violations, 0, "sheds, not violations");
        assert_eq!(out.completed + out.shed.total(), c.requests as u64);
    }

    #[test]
    fn dynamic_outperforms_fixed_one_at_equal_slo() {
        let cd = cfg(BatchPolicy::Dynamic);
        let c1 = cfg(BatchPolicy::FixedOne);
        let sd = Scheduler::new(table(), cd.slo_us, cd.max_batch, cd.policy);
        let s1 = Scheduler::new(table(), c1.slo_us, c1.max_batch, c1.policy);
        let d = run_sim(&sd, &cd);
        let f = run_sim(&s1, &c1);
        // At 4k rps two fixed-1 workers (500µs each ⇒ 4k rps capacity) sit at
        // the saturation knee; dynamic batches its way far below it.
        let goodput = |o: &SimOutcome| o.completed as f64 - o.violations as f64;
        assert!(
            goodput(&d) >= goodput(&f),
            "dynamic goodput {} vs fixed1 {}",
            goodput(&d),
            goodput(&f)
        );
        assert_eq!(d.violations, 0);
    }

    #[test]
    fn queue_full_backpressure_is_attributed_correctly() {
        let mut c = cfg(BatchPolicy::FixedMax);
        c.queue_cap = 8;
        c.max_batch = 8;
        c.arrival_rate_rps = 1_000_000.0;
        c.requests = 200;
        let sched = Scheduler::new(table(), c.slo_us, c.max_batch, c.policy);
        let out = run_sim(&sched, &c);
        assert!(
            out.shed.queue_full > 0,
            "tiny queue under burst must refuse"
        );
        assert_eq!(out.completed + out.shed.total(), c.requests as u64);
    }
}
