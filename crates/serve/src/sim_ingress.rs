//! Deterministic discrete-event simulation of the ingress reactor.
//!
//! The real reactor ([`crate::reactor`]) multiplexes live sockets, so its
//! timings depend on the host kernel; this module replays the reactor's
//! *policies* — the connection cap at the listener, admission backpressure
//! parking reads while kernel buffers absorb the burst, half-drain resume
//! hysteresis — against the same virtual clock and seeded LCG the serving
//! sim uses. The `ingress` section of `BENCH_serve.json` comes from here:
//! same seed, byte-identical log, every machine.
//!
//! Model: a fan-in of many connections offering one pooled Poisson request
//! stream, plus an independent Poisson connection-churn stream (short-lived
//! connections opening against `max_conns` and closing after a hold). When
//! the admission queue is full, offered requests are *buffered* (the
//! kernel-socket-buffer stand-in, capacity `kernel_buf`) instead of shed;
//! they admit in arrival order once the queue drains to the resume
//! threshold. Only buffer overflow sheds — exactly the reactor's contract
//! that backpressure engages before the shed ladder.

use crate::request::ShedReason;
use crate::scheduler::{Action, BatchPolicy, Scheduler};
use crate::sim::{poisson_arrivals, ShedCounts};
use std::collections::VecDeque;
use ucudnn_framework::StreamingHistogram;

/// One simulated ingress experiment.
#[derive(Debug, Clone)]
pub struct IngressSimConfig {
    /// Load-generator seed; the only entropy source (the churn stream
    /// derives its own from it).
    pub seed: u64,
    /// Per-request deadline budget, microseconds (from admission).
    pub slo_us: f64,
    /// Bounded admission queue capacity.
    pub queue_cap: usize,
    /// Parallel worker lanes.
    pub workers: usize,
    /// Coalesced-batch cap.
    pub max_batch: usize,
    /// Batching policy under test.
    pub policy: BatchPolicy,
    /// Pooled offered load across all active connections, requests/s.
    pub arrival_rate_rps: f64,
    /// Total requests to offer.
    pub requests: usize,
    /// Long-held idle connections (the C10k floor under the fan-in).
    pub idle_conns: usize,
    /// Short-lived churn connections to open over the run.
    pub churn_cycles: usize,
    /// Churn connection-open rate, connections/s.
    pub churn_rate_cps: f64,
    /// How long each churn connection stays open, microseconds.
    pub churn_hold_us: f64,
    /// Listener connection cap (`UCUDNN_SERVE_MAX_CONNS`'s stand-in).
    pub max_conns: usize,
    /// Kernel-buffer stand-in capacity: offered requests parked during an
    /// admission pause; overflow sheds as `queue_full`.
    pub kernel_buf: usize,
}

/// What one simulated ingress run produced.
#[derive(Debug, Clone)]
pub struct IngressOutcome {
    /// Requests that completed.
    pub completed: u64,
    /// Requests shed, by reason (under backpressure only buffer overflow).
    pub shed: ShedCounts,
    /// Completions whose admission-to-response latency exceeded the SLO.
    pub violations: u64,
    /// Admission-pause transitions (read interest parked, queue full).
    pub admission_pauses: u64,
    /// Peak simultaneous kernel-buffered requests.
    pub buffered_peak: usize,
    /// Longest offered-to-admitted delay a buffered request saw, µs.
    pub max_buffer_wait_us: f64,
    /// Churn connections accepted.
    pub conns_opened: u64,
    /// Churn connections refused by the connection cap.
    pub conns_rejected: u64,
    /// Peak simultaneous connections (idle + live churn).
    pub peak_conns: usize,
    /// Every fired batch size, in firing order.
    pub batch_sizes: Vec<usize>,
    /// The deterministic event log; byte-identical for equal configs.
    pub log: Vec<String>,
    /// Admission-to-completion latency distribution.
    pub latencies: StreamingHistogram,
    /// Virtual time of the first offered request.
    pub first_arrival_us: f64,
    /// Virtual time of the last batch completion.
    pub last_completion_us: f64,
}

impl IngressOutcome {
    /// Completed-request throughput over the active window, requests/s.
    pub fn throughput_rps(&self) -> f64 {
        let span = self.last_completion_us - self.first_arrival_us;
        if span <= 0.0 || self.completed == 0 {
            0.0
        } else {
            self.completed as f64 / (span / 1e6)
        }
    }

    /// Mean fired batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            0.0
        } else {
            self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
        }
    }
}

/// Run one ingress experiment.
///
/// # Panics
/// Panics on a degenerate config (zero workers, queue, or connections).
pub fn run_ingress_sim(sched: &Scheduler, cfg: &IngressSimConfig) -> IngressOutcome {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.queue_cap >= 1, "need a non-empty queue");
    assert!(cfg.max_conns >= 1, "need room for at least one connection");
    let arrivals = poisson_arrivals(cfg.seed, cfg.requests, cfg.arrival_rate_rps);
    let churn_opens = if cfg.churn_cycles > 0 {
        poisson_arrivals(
            cfg.seed ^ 0x9e37_79b9_7f4a_7c15,
            cfg.churn_cycles,
            cfg.churn_rate_cps,
        )
    } else {
        Vec::new()
    };
    let mut out = IngressOutcome {
        completed: 0,
        shed: ShedCounts::default(),
        violations: 0,
        admission_pauses: 0,
        buffered_peak: 0,
        max_buffer_wait_us: 0.0,
        conns_opened: 0,
        conns_rejected: 0,
        peak_conns: cfg.idle_conns.min(cfg.max_conns),
        batch_sizes: Vec::new(),
        log: Vec::new(),
        latencies: StreamingHistogram::new(),
        first_arrival_us: arrivals.first().copied().unwrap_or(0.0),
        last_completion_us: 0.0,
    };

    // (id, offered_us, admitted_us) admitted and waiting to batch.
    let mut queue: VecDeque<(u64, f64, f64)> = VecDeque::new();
    // (id, offered_us) parked in the kernel-buffer stand-in.
    let mut buffer: VecDeque<(u64, f64)> = VecDeque::new();
    let mut paused = false;
    let resume_depth = cfg.queue_cap / 2;
    let mut next_id: usize = 0;
    let mut next_open: usize = 0;
    // Accepted opens close after a fixed hold, so closes stay sorted.
    let mut closes: VecDeque<f64> = VecDeque::new();
    let mut conns = cfg.idle_conns;
    let mut free_at = vec![0.0f64; cfg.workers];

    loop {
        // The earliest-free worker drives the clock (ties: lowest index).
        let (w, _) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .unwrap();
        let mut now = free_at[w];

        // Nothing pending anywhere: jump to the next event or finish.
        if queue.is_empty() && buffer.is_empty() {
            let jump = [
                arrivals.get(next_id).copied(),
                churn_opens.get(next_open).copied(),
                closes.front().copied(),
            ]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
            if jump.is_infinite() {
                break;
            }
            now = now.max(jump);
        }

        // Connection churn up to `now`, opens and closes in time order.
        loop {
            let open = churn_opens.get(next_open).copied();
            let close = closes.front().copied();
            match (open, close) {
                (Some(t), c) if t <= now && c.is_none_or(|c| t <= c) => {
                    next_open += 1;
                    if conns >= cfg.max_conns {
                        out.conns_rejected += 1;
                        out.log.push(format!("conn_reject t={t:.3} n={conns}"));
                    } else {
                        conns += 1;
                        out.conns_opened += 1;
                        out.peak_conns = out.peak_conns.max(conns);
                        closes.push_back(t + cfg.churn_hold_us);
                        out.log.push(format!("conn_open t={t:.3} n={conns}"));
                    }
                }
                (_, Some(t)) if t <= now => {
                    closes.pop_front();
                    conns -= 1;
                    out.log.push(format!("conn_close t={t:.3} n={conns}"));
                }
                _ => break,
            }
        }

        // Resume: the queue drained to the hysteresis floor, so parked
        // requests admit in arrival order (possibly re-pausing if the
        // backlog alone refills the queue).
        if paused && queue.len() <= resume_depth {
            paused = false;
            out.log
                .push(format!("resume t={now:.3} buffered={}", buffer.len()));
            while let Some(&(id, offered)) = buffer.front() {
                if queue.len() >= cfg.queue_cap {
                    paused = true;
                    out.admission_pauses += 1;
                    out.log
                        .push(format!("pause t={now:.3} depth={}", queue.len()));
                    break;
                }
                buffer.pop_front();
                let admitted = now.max(offered);
                out.max_buffer_wait_us = out.max_buffer_wait_us.max(admitted - offered);
                queue.push_back((id, offered, admitted));
            }
        }

        // Offered arrivals up to `now` flow into the queue or the buffer.
        while next_id < arrivals.len() && arrivals[next_id] <= now {
            let (id, t) = (next_id as u64, arrivals[next_id]);
            next_id += 1;
            if !paused && queue.len() >= cfg.queue_cap {
                paused = true;
                out.admission_pauses += 1;
                out.log
                    .push(format!("pause t={t:.3} depth={}", queue.len()));
            }
            if paused {
                if buffer.len() >= cfg.kernel_buf {
                    // The kernel-buffer stand-in overflowed: this is the
                    // point where real backpressure turns into a shed.
                    out.shed.bump(ShedReason::QueueFull);
                    out.log
                        .push(format!("shed t={t:.3} id={id} reason=queue_full"));
                } else {
                    buffer.push_back((id, t));
                    out.buffered_peak = out.buffered_peak.max(buffer.len());
                }
            } else {
                queue.push_back((id, t, t));
            }
        }
        if queue.is_empty() {
            free_at[w] = now;
            continue;
        }

        let times: Vec<f64> = queue.iter().map(|&(_, _, at)| at).collect();
        // Under a pause the next admission instant is unknown to the
        // scheduler — no arrival oracle, exactly like the live server.
        let next_arrival = if paused {
            None
        } else {
            arrivals.get(next_id).copied()
        };
        match sched.decide(now, &times, next_arrival) {
            Action::Fire(d) => {
                let finish = now + d.exec_us;
                free_at[w] = finish;
                out.last_completion_us = out.last_completion_us.max(finish);
                let mut ids = Vec::with_capacity(d.batch);
                for _ in 0..d.batch {
                    let (id, _offered, admitted) =
                        queue.pop_front().expect("planned batch exceeds queue");
                    let latency = finish - admitted;
                    if latency > sched.slo_us() + 1e-6 {
                        out.violations += 1;
                    }
                    out.latencies.record(latency);
                    out.completed += 1;
                    ids.push(id);
                }
                out.batch_sizes.push(d.batch);
                let micros = d
                    .micros
                    .iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join("+");
                out.log.push(format!(
                    "fire t={now:.3} worker={w} batch={} micros={micros} exec={:.3} ids={}..{}",
                    d.batch,
                    d.exec_us,
                    ids.first().unwrap(),
                    ids.last().unwrap()
                ));
            }
            Action::WaitUntil(t) => {
                debug_assert!(t > now, "wait must move the clock forward");
                free_at[w] = t;
            }
            Action::ShedOldest => {
                let (id, _, _) = queue.pop_front().unwrap();
                out.shed.bump(ShedReason::DeadlineInfeasible);
                out.log.push(format!(
                    "shed t={now:.3} id={id} reason=deadline_infeasible"
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<(usize, f64)> {
        [1usize, 2, 4, 8, 16, 32]
            .into_iter()
            .map(|m| (m, 480.0 + 20.0 * m as f64))
            .collect()
    }

    fn cfg() -> IngressSimConfig {
        IngressSimConfig {
            seed: 2018,
            slo_us: 20_000.0,
            queue_cap: 256,
            workers: 2,
            max_batch: 32,
            policy: BatchPolicy::Dynamic,
            arrival_rate_rps: 20_000.0,
            requests: 2_000,
            idle_conns: 10_000,
            churn_cycles: 200,
            churn_rate_cps: 2_000.0,
            churn_hold_us: 5_000.0,
            max_conns: 16_384,
            kernel_buf: 4_096,
        }
    }

    fn run(c: &IngressSimConfig) -> IngressOutcome {
        let sched = Scheduler::new(table(), c.slo_us, c.max_batch, c.policy);
        run_ingress_sim(&sched, c)
    }

    #[test]
    fn same_config_gives_a_byte_identical_log() {
        let c = cfg();
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a.log, b.log);
        assert_eq!(a.batch_sizes, b.batch_sizes);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.admission_pauses, b.admission_pauses);
    }

    #[test]
    fn nominal_load_never_pauses_or_sheds() {
        let c = cfg();
        let out = run(&c);
        assert_eq!(out.admission_pauses, 0, "nominal load must not pause");
        assert_eq!(out.shed.total(), 0, "nominal load must not shed");
        assert_eq!(out.violations, 0);
        assert_eq!(out.completed, c.requests as u64);
        assert!(out.mean_batch() > 1.0, "20k rps must coalesce");
    }

    #[test]
    fn bursts_pause_and_recover_instead_of_shedding() {
        let mut c = cfg();
        c.arrival_rate_rps = 400_000.0;
        c.queue_cap = 32;
        c.requests = 4_000;
        let out = run(&c);
        assert!(out.admission_pauses > 0, "overload must park read interest");
        assert!(out.buffered_peak > 0);
        assert!(out.max_buffer_wait_us > 0.0);
        // Everything offered is accounted for: completed, shed at a rung,
        // but nothing lost.
        assert_eq!(
            out.completed + out.shed.total(),
            c.requests as u64,
            "every offered request is accounted for"
        );
        assert_eq!(
            out.violations, 0,
            "admitted requests still meet the SLO — pauses delay admission, \
             they never break the deadline contract"
        );
    }

    #[test]
    fn a_tiny_kernel_buffer_overflows_into_queue_full() {
        let mut c = cfg();
        c.arrival_rate_rps = 400_000.0;
        c.queue_cap = 16;
        c.kernel_buf = 8;
        c.requests = 2_000;
        let out = run(&c);
        assert!(out.shed.queue_full > 0, "overflow must shed");
        assert_eq!(out.completed + out.shed.total(), c.requests as u64);
    }

    #[test]
    fn the_connection_cap_rejects_churn_beyond_it() {
        let mut c = cfg();
        c.idle_conns = 100;
        c.max_conns = 110;
        c.churn_cycles = 500;
        c.churn_rate_cps = 100_000.0; // all opens land inside one hold window
        let out = run(&c);
        assert!(out.conns_rejected > 0, "cap must refuse");
        assert!(out.peak_conns <= c.max_conns, "cap is a hard ceiling");
        assert_eq!(
            out.conns_opened + out.conns_rejected,
            c.churn_cycles as u64,
            "every churn open is accounted for"
        );
    }

    #[test]
    fn churn_rides_along_without_perturbing_the_serving_outcome() {
        let mut with = cfg();
        with.churn_cycles = 500;
        let mut without = cfg();
        without.churn_cycles = 0;
        let a = run(&with);
        let b = run(&without);
        // The connection ledger is independent of the batching plane.
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.batch_sizes, b.batch_sizes);
        assert!(a.conns_opened > 0);
        assert_eq!(b.conns_opened, 0);
    }
}
