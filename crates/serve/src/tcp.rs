//! The TCP line protocol and its front-end entry point.
//!
//! Protocol, one JSON object per line in each direction (unchanged since
//! the original thread-per-connection front-end — byte-compatible):
//!
//! ```text
//! → {"id": 7, "input": [0.1, 0.2, …]}            # sample_len floats
//! ← {"id": 7, "ok": true, "argmax": 3, "latency_us": 812.5, "batch": 4, "plan_version": 1}
//! ← {"id": 7, "ok": false, "error": "shed:queue_full"}
//! ```
//!
//! One non-JSON verb: a line consisting of `STATS` returns the live
//! Prometheus-style exposition ([`Server::exposition`]) — multiple lines,
//! terminated by `# EOF` — then the connection resumes the JSON protocol.
//!
//! Transport is the [`crate::reactor`] event loop (DESIGN.md §15): all
//! connections multiplex onto a fixed pool of readiness-driven loop
//! threads instead of a thread per connection, requests pipeline through
//! per-connection sequencers, and responses arrive via completion
//! callbacks. This module keeps the *protocol*: parsing one request line
//! ([`parse_request`]) and rendering one response line ([`ok_line`] /
//! [`error_line`]), plus [`TcpFrontend`], the configuration-from-env
//! facade the callers and tests bind to.

use crate::reactor::Reactor;
use crate::request::Response;
use crate::server::Server;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use ucudnn::json::{self, Value};
use ucudnn::IngressOptions;

/// A running TCP front-end bound to a [`Server`]: the reactor, configured
/// from the `UCUDNN_SERVE_{MAX_CONNS,LOOPS,BACKEND}` environment.
pub struct TcpFrontend {
    inner: Reactor,
}

impl TcpFrontend {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting, with the
    /// ingress configuration read from the environment.
    ///
    /// # Errors
    /// Socket bind failures, or a malformed `UCUDNN_SERVE_*` ingress
    /// variable (reported as `InvalidInput`).
    pub fn start(server: Arc<Server>, addr: &str) -> io::Result<Self> {
        let opts = IngressOptions::from_env()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        Self::start_with(server, addr, &opts)
    }

    /// Bind `addr` and start accepting with explicit ingress options.
    ///
    /// # Errors
    /// Socket bind failures, or an unsupported backend request.
    pub fn start_with(server: Arc<Server>, addr: &str, opts: &IngressOptions) -> io::Result<Self> {
        Ok(Self {
            inner: Reactor::start(server, addr, opts)?,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Open connections right now, across all event loops.
    pub fn active_connections(&self) -> usize {
        self.inner.active_connections()
    }

    /// Stop accepting, drain half-written responses and in-flight requests
    /// (bounded), close every connection, and join the event-loop threads
    /// — nothing is leaked. Also runs on drop.
    pub fn stop(self) {
        self.inner.stop();
    }
}

/// One classified request line.
pub(crate) enum Request {
    /// Blank line: consumed, no response.
    Empty,
    /// The `STATS` verb: reply with the live exposition.
    Stats,
    /// A malformed line: the rendered error response (no trailing newline).
    Immediate(String),
    /// A well-formed inference request, ready to submit.
    Submit {
        /// The client's correlation id, echoed on the response.
        id: Option<f64>,
        /// `sample_len` floats.
        input: Vec<f32>,
    },
}

/// Classify one request line (newline already stripped).
pub(crate) fn parse_request(line: &str, sample_len: usize) -> Request {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Request::Empty;
    }
    if trimmed == "STATS" {
        return Request::Stats;
    }
    let Some(req) = Value::parse(line) else {
        return Request::Immediate(error_line(None, "bad_json"));
    };
    let id = req.get("id").and_then(Value::as_f64);
    let Some(input) = req.get("input").and_then(Value::as_arr) else {
        return Request::Immediate(error_line(id, "missing_input"));
    };
    let input: Vec<f32> = input
        .iter()
        .filter_map(Value::as_f64)
        .map(|v| v as f32)
        .collect();
    if input.len() != sample_len {
        return Request::Immediate(error_line(id, "bad_input_len"));
    }
    Request::Submit { id, input }
}

/// Render one success response line (no trailing newline).
pub(crate) fn ok_line(id: Option<f64>, resp: &Response) -> String {
    let argmax = resp
        .output
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    json::obj([
        ("id", id.map_or(Value::Null, json::num)),
        ("ok", Value::Bool(true)),
        ("argmax", json::num(argmax as f64)),
        ("latency_us", json::num(resp.latency_us)),
        ("batch", json::num(resp.batch as f64)),
        ("plan_version", json::num(resp.plan_version as f64)),
    ])
    .to_json()
}

/// Render one error response line (no trailing newline).
pub(crate) fn error_line(id: Option<f64>, msg: &str) -> String {
    json::obj([
        ("id", id.map_or(Value::Null, json::num)),
        ("ok", Value::Bool(false)),
        ("error", Value::Str(msg.to_string())),
    ])
    .to_json()
}
