//! An optional TCP front-end: newline-delimited JSON over
//! `std::net::TcpListener` (no external dependencies; the workspace builds
//! offline).
//!
//! Protocol, one JSON object per line in each direction:
//!
//! ```text
//! → {"id": 7, "input": [0.1, 0.2, …]}            # sample_len floats
//! ← {"id": 7, "ok": true, "argmax": 3, "latency_us": 812.5, "batch": 4, "plan_version": 1}
//! ← {"id": 7, "ok": false, "error": "shed:queue_full"}
//! ```
//!
//! One non-JSON verb: a line consisting of `STATS` returns the live
//! Prometheus-style exposition ([`Server::exposition`]) — multiple lines,
//! terminated by `# EOF` — then the connection resumes the JSON protocol.
//!
//! Each connection is served by its own thread and pipelines requests
//! sequentially; the batching happens behind [`Server::submit`], where
//! requests from all connections coalesce.

use crate::server::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ucudnn::json::{self, Value};

/// A running TCP listener bound to a [`Server`].
pub struct TcpFrontend {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl TcpFrontend {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting.
    ///
    /// # Errors
    /// Socket bind failures.
    pub fn start(server: Arc<Server>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("serve-tcp-accept".to_string())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let server = Arc::clone(&server);
                            let _ = std::thread::Builder::new()
                                .name("serve-tcp-conn".to_string())
                                .spawn(move || handle_connection(&server, stream));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(Self {
            addr: bound,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the acceptor. Existing
    /// connections finish their in-flight request and close on client EOF.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

impl Drop for TcpFrontend {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

fn error_line(id: Option<f64>, msg: &str) -> String {
    json::obj([
        ("id", id.map_or(Value::Null, json::num)),
        ("ok", Value::Bool(false)),
        ("error", Value::Str(msg.to_string())),
    ])
    .to_json()
}

fn handle_connection(server: &Server, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        if line.trim() == "STATS" {
            // The exposition ends with its own "# EOF\n" terminator, so the
            // client knows where the multi-line reply stops.
            if writer.write_all(server.exposition().as_bytes()).is_err() {
                return;
            }
            let _ = writer.flush();
            continue;
        }
        let reply = respond(server, &line);
        if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

/// One request line → one response line (no trailing newline).
fn respond(server: &Server, line: &str) -> String {
    let Some(req) = Value::parse(line) else {
        return error_line(None, "bad_json");
    };
    let id = req.get("id").and_then(Value::as_f64);
    let Some(input) = req.get("input").and_then(Value::as_arr) else {
        return error_line(id, "missing_input");
    };
    let input: Vec<f32> = input
        .iter()
        .filter_map(Value::as_f64)
        .map(|v| v as f32)
        .collect();
    if input.len() != server.sample_len() {
        return error_line(id, "bad_input_len");
    }
    match server.submit(input) {
        Err(reason) => error_line(id, &format!("shed:{reason}")),
        Ok(ticket) => match ticket.wait() {
            Err(reason) => error_line(id, &format!("shed:{reason}")),
            Ok(resp) => {
                let argmax = resp
                    .output
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                json::obj([
                    ("id", id.map_or(Value::Null, json::num)),
                    ("ok", Value::Bool(true)),
                    ("argmax", json::num(argmax as f64)),
                    ("latency_us", json::num(resp.latency_us)),
                    ("batch", json::num(resp.batch as f64)),
                    ("plan_version", json::num(resp.plan_version as f64)),
                ])
                .to_json()
            }
        },
    }
}
