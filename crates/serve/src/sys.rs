//! Readiness-multiplexing syscall shims for the reactor front-end.
//!
//! The workspace builds fully offline with zero external dependencies, so
//! there is no `libc` crate to lean on. On Linux x86-64/aarch64 the epoll
//! and ppoll entry points are invoked as *raw syscalls* through inline
//! assembly — the same shim discipline as `sync-shim`/`proptest-shim`: a
//! thin, auditable stand-in for the dependency the container cannot fetch.
//! On other targets the shims fall back to the C symbols `std` already
//! links (every unix program carries them), keeping the reactor portable
//! without pulling in a crate.
//!
//! Two readiness backends are exposed behind one [`Poller`] type:
//!
//! * **epoll** (Linux): one `epoll_create1` instance per event loop,
//!   level-triggered interest updated with `epoll_ctl`, waits through
//!   `epoll_pwait`. O(ready) per tick — the C10k path.
//! * **poll(2)** (portable fallback, or `UCUDNN_SERVE_BACKEND=poll`): the
//!   interest list is replayed through `ppoll`/`poll` each tick. O(n) per
//!   tick, but semantically identical — the reactor proper cannot tell the
//!   backends apart, which is what the backend-parity tests pin.
//!
//! The loop waker is a nonblocking `UnixStream` pair (`std`-only, works
//! with both backends): completion callbacks write one byte, the loop
//! drains on readiness.

use std::io;
use std::os::unix::net::UnixStream;
#[cfg(not(target_os = "linux"))]
use std::os::unix::prelude::AsRawFd;
use std::os::unix::prelude::RawFd;
#[cfg(target_os = "linux")]
use std::os::unix::prelude::{AsRawFd, FromRawFd, OwnedFd};

/// Interest bit: readable.
pub const EV_READ: u8 = 0b01;
/// Interest bit: writable.
pub const EV_WRITE: u8 = 0b10;

/// One readiness event, backend-neutral.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or peer-hangup: a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error condition on the fd (`EPOLLERR`/`POLLERR`/`POLLNVAL`).
    pub error: bool,
}

// ---------------------------------------------------------------------------
// Raw syscalls (Linux x86-64 / aarch64): libc-free via inline assembly.

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod raw {
    #[cfg(target_arch = "x86_64")]
    pub mod nr {
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
        pub const PPOLL: usize = 271;
        pub const PRLIMIT64: usize = 302;
    }

    #[cfg(target_arch = "aarch64")]
    pub mod nr {
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EPOLL_CREATE1: usize = 20;
        pub const PPOLL: usize = 73;
        pub const PRLIMIT64: usize = 261;
    }

    /// Six-argument raw syscall. Returns the kernel's raw result: negative
    /// values in `[-4095, -1]` are `-errno`.
    ///
    /// # Safety
    /// The caller must uphold the invoked syscall's contract (valid
    /// pointers, correct lengths).
    #[cfg(target_arch = "x86_64")]
    pub unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// Six-argument raw syscall (aarch64 `svc 0` convention).
    ///
    /// # Safety
    /// The caller must uphold the invoked syscall's contract.
    #[cfg(target_arch = "aarch64")]
    pub unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            in("x8") n,
            options(nostack),
        );
        ret
    }

    /// Fold a raw kernel return into `io::Result`.
    pub fn check(ret: isize) -> std::io::Result<isize> {
        if (-4095..0).contains(&ret) {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }
}

// ---------------------------------------------------------------------------
// Shared kernel ABI types.

/// `struct epoll_event`. The kernel packs it on x86-64 only.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// Caller token, returned verbatim.
    pub data: u64,
}

/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

#[cfg(target_os = "linux")]
mod epoll_consts {
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
}
#[cfg(target_os = "linux")]
use epoll_consts::*;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

// ---------------------------------------------------------------------------
// Linux syscall wrappers: raw on x86-64/aarch64, C symbols elsewhere.

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sysimpl {
    use super::raw::{check, nr, syscall6};
    use super::EpollEvent;
    use std::io;

    pub fn epoll_create1(flags: i32) -> io::Result<i32> {
        // SAFETY: no pointers; flags is a plain bitmask.
        let r = check(unsafe { syscall6(nr::EPOLL_CREATE1, flags as usize, 0, 0, 0, 0, 0) })?;
        Ok(r as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, ev: Option<&mut EpollEvent>) -> io::Result<()> {
        let ptr = ev.map_or(core::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null (DEL) or a live, exclusive EpollEvent.
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as usize,
                op as usize,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        })?;
        Ok(())
    }

    pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // epoll_pwait with a null sigmask == epoll_wait; aarch64 only has
        // the pwait flavour.
        // SAFETY: `events` is a live exclusive slice; the kernel writes at
        // most `events.len()` entries.
        let r = check(unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                8,
            )
        })?;
        Ok(r as usize)
    }

    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }

    pub fn poll(fds: &mut [super::PollFd], timeout_ms: i32) -> io::Result<usize> {
        // The kernel writes the remaining time back through `tmo_p`, so the
        // timespec must be passed as a mutable pointer — glibc's ppoll hides
        // that with a local copy; this raw shim owns the local itself.
        let mut ts = Timespec {
            sec: i64::from(timeout_ms) / 1000,
            nsec: (i64::from(timeout_ms) % 1000) * 1_000_000,
        };
        let ts_ptr = if timeout_ms < 0 {
            core::ptr::null_mut()
        } else {
            &mut ts as *mut Timespec
        };
        // SAFETY: `fds` is a live exclusive slice of kernel-ABI pollfds;
        // the timespec (when non-null) is a live exclusive out-pointer that
        // outlives the call.
        let r = check(unsafe {
            syscall6(
                nr::PPOLL,
                fds.as_mut_ptr() as usize,
                fds.len(),
                ts_ptr as usize,
                0,
                8,
                0,
            )
        })?;
        Ok(r as usize)
    }

    #[repr(C)]
    struct Rlimit64 {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: usize = 7;

    /// Raise the soft open-file limit to the hard limit; returns the
    /// resulting soft limit, or `None` when the kernel refused.
    pub fn raise_nofile_limit() -> Option<u64> {
        let mut old = Rlimit64 { cur: 0, max: 0 };
        // SAFETY: pid 0 = self; `old` is a live exclusive out-pointer.
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                0,
                &mut old as *mut Rlimit64 as usize,
                0,
                0,
            )
        })
        .ok()?;
        if old.cur >= old.max {
            return Some(old.cur);
        }
        let new = Rlimit64 {
            cur: old.max,
            max: old.max,
        };
        // SAFETY: `new` is a live const in-pointer for the call's duration.
        match check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &new as *const Rlimit64 as usize,
                0,
                0,
                0,
            )
        }) {
            Ok(_) => Some(new.cur),
            Err(_) => Some(old.cur),
        }
    }
}

#[cfg(all(
    target_os = "linux",
    not(any(target_arch = "x86_64", target_arch = "aarch64"))
))]
mod sysimpl {
    //! Linux, but no inline-asm shim for this architecture: call the C
    //! symbols `std` already links.
    use super::EpollEvent;
    use std::io;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn poll(fds: *mut super::PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub fn epoll_create1_shim(flags: i32) -> io::Result<i32> {
        // SAFETY: plain flags argument.
        let r = unsafe { epoll_create1(flags) };
        if r < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(r)
        }
    }
    pub use epoll_create1_shim as epoll_create1;

    pub fn epoll_ctl_shim(
        epfd: i32,
        op: i32,
        fd: i32,
        ev: Option<&mut EpollEvent>,
    ) -> io::Result<()> {
        let ptr = ev.map_or(core::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null (DEL) or a live, exclusive EpollEvent.
        if unsafe { epoll_ctl(epfd, op, fd, ptr) } < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }
    pub use epoll_ctl_shim as epoll_ctl;

    pub fn epoll_wait_shim(
        epfd: i32,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        // SAFETY: `events` is a live exclusive slice.
        let r = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if r < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(r as usize)
        }
    }
    pub use epoll_wait_shim as epoll_wait;

    pub fn poll_shim(fds: &mut [super::PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a live exclusive slice of kernel-ABI pollfds.
        let r = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if r < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(r as usize)
        }
    }
    pub use poll_shim as poll;

    pub fn raise_nofile_limit() -> Option<u64> {
        None
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sysimpl {
    //! Non-Linux unix: no epoll; `poll(2)` through the C symbol `std`
    //! links. The reactor's poll backend is the only one available here.
    use std::io;

    extern "C" {
        fn poll(fds: *mut super::PollFd, nfds: u32, timeout: i32) -> i32;
    }

    pub fn poll_shim(fds: &mut [super::PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a live exclusive slice of kernel-ABI pollfds.
        let r = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
        if r < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(r as usize)
        }
    }
    pub use poll_shim as poll;

    pub fn raise_nofile_limit() -> Option<u64> {
        None
    }
}

/// Raise the process's soft `RLIMIT_NOFILE` to the hard limit (Linux; a
/// no-op `None` elsewhere). Returns the resulting soft limit so callers
/// can size their connection counts honestly instead of crashing on
/// `EMFILE` mid-benchmark.
pub fn raise_nofile_limit() -> Option<u64> {
    sysimpl::raise_nofile_limit()
}

/// Whether the epoll backend exists on this target.
pub fn epoll_supported() -> bool {
    cfg!(target_os = "linux")
}

// ---------------------------------------------------------------------------
// The epoll poller.

/// The epoll backend's state: one epoll instance plus its event buffer.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    ep: OwnedFd,
    buf: Vec<EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<Self> {
        let fd = sysimpl::epoll_create1(EPOLL_CLOEXEC)?;
        // SAFETY: epoll_create1 returned a fresh fd we now own.
        let ep = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Self {
            ep,
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn mask(interest: u8) -> u32 {
        let mut m = 0;
        if interest & EV_READ != 0 {
            // RDHUP rides with read interest only: a half-closed peer must
            // not wake a connection whose reads are deliberately parked.
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest & EV_WRITE != 0 {
            m |= EPOLLOUT;
        }
        m
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: Self::mask(interest),
            data: token,
        };
        sysimpl::epoll_ctl(self.ep.as_raw_fd(), op, fd, Some(&mut ev))
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        let n = match sysimpl::epoll_wait(self.ep.as_raw_fd(), &mut self.buf, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &self.buf[..n] {
            let bits = ev.events;
            out.push(Event {
                token: { ev.data },
                readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & EPOLLERR != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The poll(2) poller: interest list replayed each tick.

/// The `poll(2)` backend's state: the authoritative interest list replayed
/// into a `pollfd` array each tick.
pub struct PollPoller {
    /// (fd, token, interest) — authoritative interest list.
    entries: Vec<(RawFd, u64, u8)>,
    fds: Vec<PollFd>,
}

impl PollPoller {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
            fds: Vec::new(),
        }
    }

    fn find(&self, fd: RawFd) -> Option<usize> {
        self.entries.iter().position(|&(f, _, _)| f == fd)
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        self.fds.clear();
        for &(fd, _, interest) in &self.entries {
            let mut events = 0i16;
            if interest & EV_READ != 0 {
                events |= POLLIN;
            }
            if interest & EV_WRITE != 0 {
                events |= POLLOUT;
            }
            self.fds.push(PollFd {
                fd,
                events,
                revents: 0,
            });
        }
        let n = match sysimpl::poll(&mut self.fds, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(());
        }
        for (i, pfd) in self.fds.iter().enumerate() {
            let r = pfd.revents;
            if r == 0 {
                continue;
            }
            out.push(Event {
                token: self.entries[i].1,
                readable: r & (POLLIN | POLLHUP) != 0,
                writable: r & POLLOUT != 0,
                error: r & (POLLERR | POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The backend-neutral poller.

/// Which readiness backend a [`Poller`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux epoll via raw syscalls — O(ready) per tick.
    Epoll,
    /// Portable `poll(2)` — O(registered) per tick.
    Poll,
}

/// One event loop's readiness multiplexer.
pub enum Poller {
    /// Linux epoll instance.
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    /// `poll(2)` interest-list replay.
    Poll(PollPoller),
}

impl Poller {
    /// Open a poller on `backend`.
    ///
    /// # Errors
    /// `epoll_create1` failure, or requesting epoll on a non-Linux target.
    pub fn new(backend: Backend) -> io::Result<Self> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Poller::Epoll(EpollPoller::new()?)),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux; set UCUDNN_SERVE_BACKEND=poll",
            )),
            Backend::Poll => Ok(Poller::Poll(PollPoller::new())),
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => Backend::Epoll,
            Poller::Poll(_) => Backend::Poll,
        }
    }

    /// Register `fd` with `interest`; readiness events carry `token`.
    ///
    /// # Errors
    /// The underlying `epoll_ctl` failure (the poll backend cannot fail).
    pub fn add(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(EPOLL_CTL_ADD, fd, token, interest),
            Poller::Poll(p) => {
                debug_assert!(p.find(fd).is_none(), "fd registered twice");
                p.entries.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Replace `fd`'s interest set.
    ///
    /// # Errors
    /// The underlying `epoll_ctl` failure or an unregistered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(EPOLL_CTL_MOD, fd, token, interest),
            Poller::Poll(p) => {
                let i = p
                    .find(fd)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
                p.entries[i] = (fd, token, interest);
                Ok(())
            }
        }
    }

    /// Remove `fd` from the interest set. Must be called *before* the fd is
    /// closed (the poll backend matches by fd number).
    ///
    /// # Errors
    /// The underlying `epoll_ctl` failure.
    pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => sysimpl::epoll_ctl(p.ep.as_raw_fd(), EPOLL_CTL_DEL, fd, None),
            Poller::Poll(p) => {
                if let Some(i) = p.find(fd) {
                    p.entries.swap_remove(i);
                }
                Ok(())
            }
        }
    }

    /// Block up to `timeout_ms` (-1 = forever) and append readiness events
    /// to `out`. A signal interruption returns cleanly with no events.
    ///
    /// # Errors
    /// Backend wait failure other than `EINTR`.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(out, timeout_ms),
            Poller::Poll(p) => p.wait(out, timeout_ms),
        }
    }
}

// ---------------------------------------------------------------------------
// The loop waker.

/// Wakes an event loop parked in [`Poller::wait`] from another thread:
/// a nonblocking `UnixStream` pair, write side shared by completion
/// callbacks and the accept path, read side registered in the loop.
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Create a waker pair.
    ///
    /// # Errors
    /// `socketpair` failure.
    pub fn new() -> io::Result<Self> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Self { tx, rx })
    }

    /// The fd to register for `EV_READ` in the loop's poller.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Wake the loop. Saturating: once the pipe is full the loop is
    /// certainly waking anyway, so `WouldBlock` is success.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1]);
    }

    /// Drain pending wake bytes after a readiness event.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Backend> {
        if epoll_supported() {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn both_backends_report_readable_data() {
        for backend in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            let mut poller = Poller::new(backend).unwrap();
            assert_eq!(poller.backend(), backend);
            poller.add(server.as_raw_fd(), 7, EV_READ).unwrap();

            // Nothing pending yet: a zero-timeout wait returns no events.
            let mut events = Vec::new();
            poller.wait(&mut events, 0).unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious readiness");

            client.write_all(b"ping").unwrap();
            let mut events = Vec::new();
            // Generous timeout; loopback delivery is immediate in practice.
            poller.wait(&mut events, 2_000).unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable && !events[0].writable);

            let mut buf = [0u8; 8];
            let n = (&server).read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping");
            poller.remove(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn interest_modification_gates_writability() {
        for backend in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            let mut poller = Poller::new(backend).unwrap();
            poller.add(server.as_raw_fd(), 3, EV_READ).unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, 0).unwrap();
            assert!(
                events.iter().all(|e| !e.writable),
                "{backend:?}: writable without EV_WRITE interest"
            );

            // An idle socket with write interest is immediately writable.
            poller
                .modify(server.as_raw_fd(), 3, EV_READ | EV_WRITE)
                .unwrap();
            events.clear();
            poller.wait(&mut events, 2_000).unwrap();
            assert!(
                events.iter().any(|e| e.token == 3 && e.writable),
                "{backend:?}: write readiness missing"
            );
            poller.remove(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn waker_crosses_threads_and_drains() {
        for backend in backends() {
            let waker = std::sync::Arc::new(Waker::new().unwrap());
            let mut poller = Poller::new(backend).unwrap();
            poller.add(waker.fd(), u64::MAX, EV_READ).unwrap();

            let w2 = std::sync::Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                for _ in 0..100 {
                    w2.wake();
                }
            });
            let mut events = Vec::new();
            poller.wait(&mut events, 2_000).unwrap();
            assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
            t.join().unwrap();
            waker.drain();
            // Drained: no residual readiness.
            events.clear();
            poller.wait(&mut events, 0).unwrap();
            assert!(
                events.is_empty(),
                "{backend:?}: waker still readable after drain"
            );
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn nofile_limit_raise_reports_a_usable_bound() {
        let soft = raise_nofile_limit().expect("linux must report a limit");
        assert!(soft >= 256, "soft fd limit {soft} suspiciously small");
    }

    #[test]
    fn peer_hangup_reads_as_readable() {
        for backend in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            let mut poller = Poller::new(backend).unwrap();
            poller.add(server.as_raw_fd(), 9, EV_READ).unwrap();
            drop(client);
            let mut events = Vec::new();
            poller.wait(&mut events, 2_000).unwrap();
            // HUP must surface as readability so the reactor observes EOF.
            assert!(
                events.iter().any(|e| e.token == 9 && e.readable),
                "{backend:?}: hangup invisible"
            );
            poller.remove(server.as_raw_fd()).unwrap();
        }
    }
}
