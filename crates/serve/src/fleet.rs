//! Fleet router: SLO-aware sharding across heterogeneous device replicas.
//!
//! PR 5–9 built a single-replica serving stack; this module is the tier
//! above (DESIGN.md §16). A fleet is N replicas, each wrapping its *own*
//! latency table built from its *own* device card's WR Pareto front — a
//! K80 replica and a V100 replica genuinely disagree about `t*(m)` — and
//! the [`Router`] decides, per admitted request, which replica's queue the
//! ticket joins.
//!
//! The production policy is **feasibility-first**
//! ([`FleetRouterPolicy::Feasibility`]): estimate each replica's
//! completion time for the new ticket with a fluid model
//! (`max(now, earliest_free) + (depth + 1) / service_rate`), keep only
//! replicas whose estimate meets the request's deadline, and dispatch to
//! the earliest estimated finish. Only when *no* replica is feasible does
//! the ticket fall through the existing shed ladder ([`ShedReason`]),
//! with the rung chosen by why routing failed: every queue full →
//! `queue_full`; space exists but no deadline-feasible replica →
//! `deadline_infeasible`; no live replica at all → `draining`.
//!
//! The **least-loaded** baseline ([`FleetRouterPolicy::LeastLoaded`],
//! join-shortest-queue) exists to be beaten: it is rate-blind, so under
//! heterogeneity it happily parks tickets in a short K80 queue that is
//! *slower in time* than a longer V100 queue. `serve_bench --fleet` runs
//! both policies over identical arrivals and commits the shed-count gap.
//!
//! Per-replica instruments ride the PR 8 registry through the
//! closed-vocabulary `CounterVec`/`GaugeVec` path ([`FleetMetrics`]): the
//! label vocabulary is the configured replica card list, so an unknown
//! replica spelling lands in `ucudnn_telemetry_dropped_total` instead of
//! allocating a new series.

use crate::request::ShedReason;
use ucudnn::{CounterVec, FleetRouterPolicy, GaugeVec, Registry};

/// Aggregate service rate of one replica, in requests per microsecond:
/// `workers × max over (m, t) in table of m / t`. An empty (unrunnable)
/// table yields 0.0, which makes every deadline infeasible — the router
/// then never dispatches there.
pub fn replica_rate_per_us(table: &[(usize, f64)], workers: usize) -> f64 {
    let per_worker = table
        .iter()
        .filter(|(m, t)| *m > 0 && *t > 0.0)
        .map(|(m, t)| *m as f64 / t)
        .fold(0.0_f64, f64::max);
    workers as f64 * per_worker
}

/// One replica's routing-relevant state at a decision instant.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaSnapshot {
    /// Fluid service rate (requests/µs), from [`replica_rate_per_us`].
    pub rate_per_us: f64,
    /// Tickets currently queued (not yet fired into a batch).
    pub queue_depth: usize,
    /// Bounded queue capacity; `queue_depth == queue_cap` refuses admits.
    pub queue_cap: usize,
    /// Earliest instant any of the replica's workers goes idle.
    pub earliest_free_us: f64,
    /// Dead or draining replicas are never dispatched to.
    pub alive: bool,
}

/// Where one admitted request goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Join replica `i`'s queue.
    Dispatch(usize),
    /// No replica can take it: shed on the named ladder rung.
    Shed(ShedReason),
}

/// The fleet's dispatch policy, bound to an SLO.
#[derive(Debug, Clone, Copy)]
pub struct Router {
    /// Dispatch policy.
    pub policy: FleetRouterPolicy,
    /// Per-request deadline budget in microseconds.
    pub slo_us: f64,
}

impl Router {
    /// A router for `policy` under `slo_us`.
    pub fn new(policy: FleetRouterPolicy, slo_us: f64) -> Self {
        Self { policy, slo_us }
    }

    /// Route one request that arrived at `arrival_us`, deciding at `now_us`
    /// (the two differ when a failed replica's queue is re-routed later
    /// than the original arrivals). Deterministic: ties prefer the lowest
    /// replica index.
    pub fn choose(
        &self,
        now_us: f64,
        arrival_us: f64,
        replicas: &[ReplicaSnapshot],
    ) -> RouteDecision {
        match self.policy {
            FleetRouterPolicy::Feasibility => self.choose_feasibility(now_us, arrival_us, replicas),
            FleetRouterPolicy::LeastLoaded => Self::choose_least_loaded(replicas),
        }
    }

    fn choose_feasibility(
        &self,
        now_us: f64,
        arrival_us: f64,
        replicas: &[ReplicaSnapshot],
    ) -> RouteDecision {
        let deadline = arrival_us + self.slo_us;
        let mut best: Option<(f64, usize)> = None;
        for (i, r) in replicas.iter().enumerate() {
            if !r.alive || r.queue_depth >= r.queue_cap || r.rate_per_us <= 0.0 {
                continue;
            }
            let start = r.earliest_free_us.max(now_us);
            let est_finish = start + (r.queue_depth + 1) as f64 / r.rate_per_us;
            if est_finish > deadline {
                continue;
            }
            // Strict `<` keeps the lowest index on exact ties.
            if best.is_none_or(|(b, _)| est_finish < b) {
                best = Some((est_finish, i));
            }
        }
        if let Some((_, i)) = best {
            return RouteDecision::Dispatch(i);
        }
        RouteDecision::Shed(Self::ladder_rung(replicas))
    }

    fn choose_least_loaded(replicas: &[ReplicaSnapshot]) -> RouteDecision {
        let mut best: Option<(usize, usize)> = None;
        for (i, r) in replicas.iter().enumerate() {
            if !r.alive || r.queue_depth >= r.queue_cap {
                continue;
            }
            if best.is_none_or(|(b, _)| r.queue_depth < b) {
                best = Some((r.queue_depth, i));
            }
        }
        match best {
            Some((_, i)) => RouteDecision::Dispatch(i),
            None => RouteDecision::Shed(Self::ladder_rung(replicas)),
        }
    }

    /// Which shed-ladder rung a routing failure lands on.
    fn ladder_rung(replicas: &[ReplicaSnapshot]) -> ShedReason {
        if !replicas.iter().any(|r| r.alive) {
            return ShedReason::Draining;
        }
        if replicas
            .iter()
            .filter(|r| r.alive)
            .all(|r| r.queue_depth >= r.queue_cap)
        {
            return ShedReason::QueueFull;
        }
        ShedReason::DeadlineInfeasible
    }
}

/// Per-replica instruments on the shared telemetry registry. Labels go
/// through the closed-vocabulary path: the vocabulary is fixed at
/// construction to the configured replica cards, and any other spelling
/// bumps `ucudnn_telemetry_dropped_total` instead of allocating a series.
/// Duplicate cards in a fleet (two `v100` replicas) share one series per
/// card, keeping cardinality bounded by the card vocabulary.
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    registry: Registry,
    routed: CounterVec,
    completed: CounterVec,
    shed: CounterVec,
    depth: GaugeVec,
}

impl FleetMetrics {
    /// Bind the fleet series onto `registry` with `replicas` as the full
    /// label vocabulary.
    pub fn with_registry(registry: Registry, replicas: &[&str]) -> Self {
        let routed = registry.counter_vec(
            "ucudnn_fleet_routed_total",
            "Requests dispatched, by replica.",
            "replica",
            replicas,
        );
        let completed = registry.counter_vec(
            "ucudnn_fleet_completed_total",
            "Requests completed within batches, by replica.",
            "replica",
            replicas,
        );
        let shed = registry.counter_vec(
            "ucudnn_fleet_shed_total",
            "Requests shed after dispatch (deadline/exec/drain), by replica.",
            "replica",
            replicas,
        );
        let depth = registry.gauge_vec(
            "ucudnn_fleet_queue_depth",
            "Queued tickets right now, by replica.",
            "replica",
            replicas,
        );
        Self {
            registry,
            routed,
            completed,
            shed,
            depth,
        }
    }

    /// Count `n` dispatches to `replica`.
    pub fn routed(&self, replica: &str, n: u64) {
        if let Some(c) = self.routed.with(replica) {
            c.add(n);
        }
    }

    /// Count `n` completions on `replica`.
    pub fn completed(&self, replica: &str, n: u64) {
        if let Some(c) = self.completed.with(replica) {
            c.add(n);
        }
    }

    /// Count `n` post-dispatch sheds on `replica`.
    pub fn shed(&self, replica: &str, n: u64) {
        if let Some(c) = self.shed.with(replica) {
            c.add(n);
        }
    }

    /// Publish `replica`'s current queue depth.
    pub fn set_depth(&self, replica: &str, depth: f64) {
        if let Some(g) = self.depth.with(replica) {
            g.set(depth);
        }
    }

    /// The registry the series live on (for exposition).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn::FLEET_REPLICA_CARDS;

    fn snap(rate: f64, depth: usize, cap: usize, free: f64, alive: bool) -> ReplicaSnapshot {
        ReplicaSnapshot {
            rate_per_us: rate,
            queue_depth: depth,
            queue_cap: cap,
            earliest_free_us: free,
            alive,
        }
    }

    #[test]
    fn rate_comes_from_the_best_table_point() {
        // 8 samples in 100 µs beats 1 in 20 µs; two workers double it.
        let table = vec![(1, 20.0), (8, 100.0)];
        let r = replica_rate_per_us(&table, 2);
        assert!((r - 2.0 * 8.0 / 100.0).abs() < 1e-12);
        assert_eq!(replica_rate_per_us(&[], 2), 0.0);
    }

    #[test]
    fn feasibility_skips_a_slower_shorter_queue_for_a_faster_feasible_one() {
        // Replica 0 (K80-ish): short queue but slow — estimated finish
        // blows the deadline. Replica 1 (V100-ish): longer queue, much
        // faster — feasible. JSQ picks 0; feasibility must pick 1.
        let slow = snap(0.001, 10, 64, 0.0, true); // 11 / 0.001 = 11 ms wait
        let fast = snap(0.1, 20, 64, 0.0, true); // 21 / 0.1 = 210 µs
        let fleet = [slow, fast];
        let feas = Router::new(FleetRouterPolicy::Feasibility, 1_000.0);
        assert_eq!(feas.choose(0.0, 0.0, &fleet), RouteDecision::Dispatch(1));
        let jsq = Router::new(FleetRouterPolicy::LeastLoaded, 1_000.0);
        assert_eq!(jsq.choose(0.0, 0.0, &fleet), RouteDecision::Dispatch(0));
    }

    #[test]
    fn ties_prefer_the_lowest_index() {
        let a = snap(0.1, 5, 64, 0.0, true);
        let fleet = [a, a];
        let feas = Router::new(FleetRouterPolicy::Feasibility, 10_000.0);
        assert_eq!(feas.choose(0.0, 0.0, &fleet), RouteDecision::Dispatch(0));
        let jsq = Router::new(FleetRouterPolicy::LeastLoaded, 10_000.0);
        assert_eq!(jsq.choose(0.0, 0.0, &fleet), RouteDecision::Dispatch(0));
    }

    #[test]
    fn busy_workers_push_the_estimate_past_the_deadline() {
        // Plenty of rate, but every worker busy until long after the SLO.
        let r = snap(1.0, 0, 64, 50_000.0, true);
        let feas = Router::new(FleetRouterPolicy::Feasibility, 1_000.0);
        assert_eq!(
            feas.choose(0.0, 0.0, &[r]),
            RouteDecision::Shed(ShedReason::DeadlineInfeasible)
        );
    }

    #[test]
    fn routing_failures_land_on_the_right_ladder_rung() {
        let feas = Router::new(FleetRouterPolicy::Feasibility, 1_000.0);
        let jsq = Router::new(FleetRouterPolicy::LeastLoaded, 1_000.0);
        // All queues full → queue_full, both policies.
        let full = [snap(0.1, 4, 4, 0.0, true), snap(0.1, 8, 8, 0.0, true)];
        assert_eq!(
            feas.choose(0.0, 0.0, &full),
            RouteDecision::Shed(ShedReason::QueueFull)
        );
        assert_eq!(
            jsq.choose(0.0, 0.0, &full),
            RouteDecision::Shed(ShedReason::QueueFull)
        );
        // Space exists but nothing feasible → deadline_infeasible.
        let slow = [snap(0.0001, 50, 64, 0.0, true)];
        assert_eq!(
            feas.choose(0.0, 0.0, &slow),
            RouteDecision::Shed(ShedReason::DeadlineInfeasible)
        );
        // No live replica at all → draining.
        let dead = [snap(0.1, 0, 64, 0.0, false)];
        assert_eq!(
            feas.choose(0.0, 0.0, &dead),
            RouteDecision::Shed(ShedReason::Draining)
        );
        assert_eq!(
            jsq.choose(0.0, 0.0, &dead),
            RouteDecision::Shed(ShedReason::Draining)
        );
    }

    #[test]
    fn dead_replicas_are_never_dispatched_to() {
        // Replica 0 is dead but would otherwise win on every metric.
        let fleet = [snap(10.0, 0, 64, 0.0, false), snap(0.01, 30, 64, 0.0, true)];
        let feas = Router::new(FleetRouterPolicy::Feasibility, 100_000.0);
        assert_eq!(feas.choose(0.0, 0.0, &fleet), RouteDecision::Dispatch(1));
        let jsq = Router::new(FleetRouterPolicy::LeastLoaded, 100_000.0);
        assert_eq!(jsq.choose(0.0, 0.0, &fleet), RouteDecision::Dispatch(1));
    }

    #[test]
    fn unknown_replica_labels_land_in_the_dropped_counter() {
        // Satellite: per-replica label cardinality is pinned. The replica
        // vocabulary is closed at construction; a label outside it must
        // not allocate a series — it bumps the registry's dropped total.
        let registry = Registry::new();
        let m = FleetMetrics::with_registry(registry.clone(), &FLEET_REPLICA_CARDS);
        m.routed("k80", 3);
        assert_eq!(registry.dropped(), 0);
        m.routed("titan_x", 1);
        m.completed("titan_x", 1);
        m.shed("", 1);
        m.set_depth("a100", 9.0);
        assert_eq!(registry.dropped(), 4);
        let text = registry.expose();
        assert!(text.contains("ucudnn_fleet_routed_total{replica=\"k80\"} 3"));
        assert!(!text.contains("titan_x"));
        assert!(text.contains("ucudnn_telemetry_dropped_total 4"));
    }
}
