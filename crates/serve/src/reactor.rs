//! The C10k ingress reactor: a readiness-driven event-loop front-end for
//! the TCP line protocol (DESIGN.md §15).
//!
//! The previous front-end spent one thread per connection and slept 2 ms
//! between accepts; it saturated at a few hundred clients while the dynamic
//! batcher behind it sat idle. This module replaces it with a small fixed
//! pool of event-loop threads (`UCUDNN_SERVE_LOOPS`), each owning a
//! [`Poller`](crate::sys::Poller) — raw epoll on Linux, `poll(2)` as the
//! portable fallback — and a slab of per-connection state machines:
//!
//! * **Framing** lives in the connection, not a thread: partial lines
//!   accumulate in a read buffer across readiness events, pipelined
//!   requests all parse out of one read, and the multi-line `STATS`
//!   exposition is just bytes in the outbound buffer, streamed as the
//!   socket accepts them under write-readiness.
//! * **Delivery** is a completion callback ([`Server::submit_with`]) that
//!   enqueues the rendered response line onto the owning loop's inbox and
//!   wakes it — no thread ever parks in a ticket wait. A per-connection
//!   sequencer assigns every inbound line a slot at parse time and emits
//!   responses strictly in slot order, so pipelined clients observe exactly
//!   the request-order replies the thread-per-connection code produced.
//! * **Backpressure** is explicit and two-stage. When the admission queue
//!   is full, the connection parks its *read* interest before the shed
//!   ladder would fire — unread requests wait in kernel socket buffers —
//!   and resumes at half-drain hysteresis. A slow reader whose outbound
//!   buffer crosses the high-water mark parks reads the same way. Beyond
//!   both, `UCUDNN_SERVE_MAX_CONNS` rejects connections at the listener.
//! * **Shutdown** is a drain, not a leak: [`Reactor::stop`] stops reading,
//!   finishes half-written responses, waits (bounded) for in-flight
//!   requests to resolve, closes every fd, and joins the loop threads.
//!
//! Connection telemetry (accepted/rejected/read-err/write-err/
//! backpressure counters plus the active-connections gauge) lands on the
//! same registry the `STATS` verb scrapes.
//!
//! Tokens are generation-counted (`gen << 32 | slot`): a completion
//! callback that outlives its connection resolves to a stale token and is
//! dropped instead of writing into whoever reused the slot.

use crate::request::{Response, ShedReason};
use crate::server::Server;
use crate::sys::{Backend, Event, Poller, Waker, EV_READ, EV_WRITE};
use crate::tcp::{error_line, ok_line, parse_request, Request};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::prelude::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ucudnn::{IngressBackend, IngressOptions};

/// Outbound-buffer high-water mark: past this, the connection's read
/// interest parks until the reader catches up (counted as
/// `conn_write_backpressure`).
const WRITE_HIGH_WATER: usize = 256 * 1024;
/// Resume reads once the outbound buffer drains below this.
const WRITE_LOW_WATER: usize = WRITE_HIGH_WATER / 4;
/// Hard cap on buffered unparsed input per connection; a frame that grows
/// past this closes the connection as a read error.
const RBUF_CAP: usize = 4 * 1024 * 1024;
/// Loop tick while any connection is parked (admission or write
/// backpressure) — the resume condition is polled, not signaled.
const PAUSE_TICK_MS: i32 = 10;
/// Bound on the graceful-drain wait at [`Reactor::stop`]: in-flight
/// requests past this are abandoned (their sockets close; the server
/// resolves their callbacks into a dead inbox).
const DRAIN_WAIT: Duration = Duration::from_secs(5);
/// Slab token of the loop waker.
const WAKER_TOKEN: u64 = u64::MAX;
/// Slab token of the listener (loop 0 only).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// A running reactor bound to a [`Server`].
pub struct Reactor {
    addr: SocketAddr,
    shared: Arc<ReactorShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

struct ReactorShared {
    server: Arc<Server>,
    stop: AtomicBool,
    /// Open connections across all loops (the `max_conns` cap's ledger).
    active: AtomicUsize,
    max_conns: usize,
    /// Admission backpressure thresholds, derived from the server's queue.
    queue_cap: usize,
    queue_resume: usize,
    /// Round-robin cursor for sharding accepted connections across loops.
    next_loop: AtomicUsize,
    loops: Vec<Arc<LoopShared>>,
}

/// The cross-thread face of one event loop: an inbox plus a waker.
struct LoopShared {
    inbox: Mutex<Inbox>,
    waker: Waker,
}

/// One loop's message queue plus its liveness flag, kept under one lock so
/// a message can never race into the inbox of a loop that already drained
/// it on exit.
#[derive(Default)]
struct Inbox {
    msgs: Vec<LoopMsg>,
    dead: bool,
}

impl LoopShared {
    /// Deliver `msg` and wake the loop. A loop that has exited (wait error
    /// or shutdown) hands the message back instead of black-holing it.
    fn try_send(&self, msg: LoopMsg) -> Result<(), LoopMsg> {
        {
            let mut inbox = self.inbox.lock().unwrap();
            if inbox.dead {
                return Err(msg);
            }
            inbox.msgs.push(msg);
        }
        self.waker.wake();
        Ok(())
    }

    fn take_inbox(&self) -> Vec<LoopMsg> {
        std::mem::take(&mut self.inbox.lock().unwrap().msgs)
    }

    /// Mark the loop dead and hand back whatever was queued. Every
    /// `try_send` after this bounces to its caller.
    fn retire(&self) -> Vec<LoopMsg> {
        let mut inbox = self.inbox.lock().unwrap();
        inbox.dead = true;
        std::mem::take(&mut inbox.msgs)
    }
}

enum LoopMsg {
    /// A freshly accepted connection handed to this loop.
    Adopt(TcpStream),
    /// A completed request's rendered response (newline included), bound
    /// for `token`'s sequencer slot `seq`. Stale tokens are dropped.
    Complete { token: u64, seq: u64, line: String },
}

/// Why a connection is being torn down (selects the right counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Death {
    /// Clean shutdown: EOF seen, everything owed was delivered.
    Clean,
    /// Read failure, oversized frame, or invalid UTF-8.
    ReadErr,
    /// Write failure (peer reset mid-response).
    WriteErr,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    token: u64,
    /// Unparsed inbound bytes (partial or backpressured lines).
    rbuf: Vec<u8>,
    /// Outbound bytes; `[wpos..]` is still owed to the socket.
    out: Vec<u8>,
    wpos: usize,
    /// Next sequencer slot to assign to an inbound line.
    next_seq: u64,
    /// Next slot whose response may be emitted.
    emit_seq: u64,
    /// Fulfilled slots waiting for their turn (reorder buffer).
    ready: std::collections::BTreeMap<u64, String>,
    read_closed: bool,
    /// Peer EOF actually observed (a drain sets `read_closed` without it).
    /// Only a genuine EOF promotes a residual unterminated fragment to a
    /// final line; a drain must not serve a peer's half-sent request.
    eof: bool,
    admission_paused: bool,
    write_paused: bool,
    /// Interest currently armed in the poller.
    interest: u8,
    death: Option<Death>,
}

impl Conn {
    fn new(stream: TcpStream, token: u64) -> Self {
        Self {
            stream,
            token,
            rbuf: Vec::new(),
            out: Vec::new(),
            wpos: 0,
            next_seq: 0,
            emit_seq: 0,
            ready: std::collections::BTreeMap::new(),
            read_closed: false,
            eof: false,
            admission_paused: false,
            write_paused: false,
            interest: 0,
            death: None,
        }
    }

    fn out_len(&self) -> usize {
        self.out.len() - self.wpos
    }

    /// Requests submitted but not yet fulfilled.
    fn unfulfilled(&self) -> u64 {
        self.next_seq - self.emit_seq - self.ready.len() as u64
    }

    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Fulfill slot `seq` with fully framed bytes, then emit every ready
    /// slot in order into the outbound buffer.
    fn fulfill(&mut self, seq: u64, framed: String) {
        self.ready.insert(seq, framed);
        while let Some(s) = self.ready.remove(&self.emit_seq) {
            self.out.extend_from_slice(s.as_bytes());
            self.emit_seq += 1;
        }
    }

    fn desired_interest(&self, draining: bool) -> u8 {
        let mut i = 0;
        if !self.read_closed && !self.admission_paused && !self.write_paused && !draining {
            i |= EV_READ;
        }
        if self.out_len() > 0 {
            i |= EV_WRITE;
        }
        i
    }
}

/// Generation-counted connection slab. A token names (slot, generation);
/// lookups against a reused slot with the wrong generation miss.
#[derive(Default)]
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

impl Slab {
    fn token(slot: usize, gen: u32) -> u64 {
        (u64::from(gen) << 32) | slot as u64
    }

    fn insert(&mut self, stream: TcpStream) -> u64 {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.gens.push(0);
            self.slots.len() - 1
        });
        let token = Self::token(slot, self.gens[slot]);
        self.slots[slot] = Some(Conn::new(stream, token));
        token
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let slot = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        if slot >= self.slots.len() || self.gens[slot] != gen {
            return None;
        }
        self.slots[slot].as_mut()
    }

    fn remove(&mut self, token: u64) -> Option<Conn> {
        let slot = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        if slot >= self.slots.len() || self.gens[slot] != gen {
            return None;
        }
        let conn = self.slots[slot].take()?;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
        Some(conn)
    }

    fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|c| c.token))
            .collect()
    }
}

impl Reactor {
    /// Bind `addr` and start `opts.loops` event-loop threads.
    ///
    /// # Errors
    /// Socket bind/configure failures, or an unsupported backend request
    /// (epoll on a non-Linux target).
    pub fn start(server: Arc<Server>, addr: &str, opts: &IngressOptions) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let backend = match opts.backend {
            Some(IngressBackend::Epoll) => Backend::Epoll,
            Some(IngressBackend::Poll) => Backend::Poll,
            None => {
                if crate::sys::epoll_supported() {
                    Backend::Epoll
                } else {
                    Backend::Poll
                }
            }
        };
        // Fail fast on an unsupported backend before any thread spawns.
        drop(Poller::new(backend)?);
        let nloops = opts.loops.max(1);
        let mut loop_shared = Vec::with_capacity(nloops);
        for _ in 0..nloops {
            loop_shared.push(Arc::new(LoopShared {
                inbox: Mutex::new(Inbox::default()),
                waker: Waker::new()?,
            }));
        }
        let queue_cap = server.queue_cap();
        let shared = Arc::new(ReactorShared {
            server,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            max_conns: opts.max_conns.max(1),
            queue_cap,
            queue_resume: queue_cap / 2,
            next_loop: AtomicUsize::new(0),
            loops: loop_shared,
        });
        let mut threads = Vec::with_capacity(nloops);
        let mut listener = Some(listener);
        for idx in 0..nloops {
            let shared2 = Arc::clone(&shared);
            let listener = listener.take(); // loop 0 owns the listener
            let t = std::thread::Builder::new()
                .name(format!("serve-reactor-{idx}"))
                .spawn(move || {
                    EventLoop::new(shared2, idx, listener, backend).run();
                })?;
            threads.push(t);
        }
        Ok(Self {
            addr: bound,
            shared,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Open connections right now, across all loops.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain half-written responses and in-flight requests
    /// (bounded), close every connection, and join the loop threads. Also
    /// runs on drop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for l in &self.shared.loops {
            l.waker.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct EventLoop {
    shared: Arc<ReactorShared>,
    idx: usize,
    me: Arc<LoopShared>,
    poller: Poller,
    slab: Slab,
    listener: Option<TcpListener>,
    /// Set once the stop flag is observed; reads stop, writes drain.
    draining: bool,
}

impl EventLoop {
    fn new(
        shared: Arc<ReactorShared>,
        idx: usize,
        listener: Option<TcpListener>,
        backend: Backend,
    ) -> Self {
        let poller = Poller::new(backend).expect("backend validated at Reactor::start");
        let me = Arc::clone(&shared.loops[idx]);
        Self {
            shared,
            idx,
            me,
            poller,
            slab: Slab::default(),
            listener,
            draining: false,
        }
    }

    fn run(mut self) {
        self.run_inner();
        // Retire this loop no matter how run_inner exited (clean drain,
        // registration failure, or a wait error): senders see the dead flag
        // and keep their messages, the accept round-robin skips us, and the
        // residual inbox drains here — an orphaned Adopt is an accepted,
        // counted connection that was never served, so its stream closes
        // and its max_conns ledger entry is released instead of leaking
        // until the cap rejects everything.
        for msg in self.me.retire() {
            if let LoopMsg::Adopt(stream) = msg {
                drop(stream);
                self.release_active();
            }
        }
        // Teardown: every remaining fd closes here (Drop), nothing leaks.
        for token in self.slab.tokens() {
            self.close(token, Death::Clean);
        }
    }

    fn run_inner(&mut self) {
        if self
            .poller
            .add(self.me.waker.fd(), WAKER_TOKEN, EV_READ)
            .is_err()
        {
            return;
        }
        if let Some(l) = &self.listener {
            if self
                .poller
                .add(l.as_raw_fd(), LISTENER_TOKEN, EV_READ)
                .is_err()
            {
                return;
            }
        }
        let mut events: Vec<Event> = Vec::with_capacity(1024);
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let any_paused = self
                .slab
                .slots
                .iter()
                .flatten()
                .any(|c| c.admission_paused || c.write_paused);
            let timeout = if self.draining || any_paused {
                PAUSE_TICK_MS
            } else {
                -1
            };
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            // Readiness events MUST be handled before inbox messages.
            // touch() infers hangup from "readable while read interest is
            // parked", which is only sound while `conn.interest` still
            // reflects the mask armed when wait() captured the event —
            // inbox completions can pump a connection into admission/write
            // pause and park that interest mid-batch, turning a genuine
            // data-arrival event into a phantom HUP. The waker also drains
            // here, before the inbox is taken: draining after the take
            // could eat the wake byte of a message pushed in between and
            // strand it until the next unrelated wakeup.
            for &ev in &events {
                match ev.token {
                    WAKER_TOKEN => self.me.waker.drain(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.touch(token, ev),
                }
            }
            let msgs = self.me.take_inbox();
            for msg in msgs {
                match msg {
                    LoopMsg::Adopt(stream) => self.adopt(stream),
                    LoopMsg::Complete { token, seq, line } => self.complete(token, seq, line),
                }
            }
            if !self.draining && self.shared.stop.load(Ordering::SeqCst) {
                self.begin_drain();
                drain_deadline = Some(Instant::now() + DRAIN_WAIT);
            }
            self.resume_paused();
            if self.draining {
                let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
                for token in self.slab.tokens() {
                    let done = {
                        let conn = self.slab.get_mut(token).expect("token just listed");
                        conn.out_len() == 0 && conn.unfulfilled() == 0
                    };
                    if done || expired {
                        self.close(token, Death::Clean);
                    }
                }
                if self.slab.len() == 0 {
                    break;
                }
            }
        }
    }

    /// Enter drain mode: stop accepting (close the listener so new SYNs are
    /// refused), stop reading everywhere, keep delivering what is owed.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(l) = self.listener.take() {
            let _ = self.poller.remove(l.as_raw_fd());
        }
        for token in self.slab.tokens() {
            let Some(conn) = self.slab.get_mut(token) else {
                continue;
            };
            conn.read_closed = true;
            let fd = conn.stream.as_raw_fd();
            let desired = conn.desired_interest(true);
            if desired != conn.interest && self.poller.modify(fd, token, desired).is_err() {
                conn.death = Some(Death::ReadErr);
            }
            conn.interest = desired;
            if conn.death.is_some() {
                self.close(token, Death::ReadErr);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(l) = &self.listener else { return };
            match l.accept() {
                Ok((stream, _)) => {
                    let m = self.shared.server.metrics();
                    if self.draining {
                        continue; // refused: reactor is shutting down
                    }
                    let active = self.shared.active.load(Ordering::Relaxed);
                    if active >= self.shared.max_conns {
                        m.conn_rejected.inc();
                        continue; // dropped before any state is built
                    }
                    if stream.set_nonblocking(true).is_err() {
                        m.conn_read_err.inc();
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let now_active = self.shared.active.fetch_add(1, Ordering::Relaxed) + 1;
                    m.conn_opened(now_active as u64);
                    // Round-robin across loops, skipping any that died (a
                    // wait error exits a loop; its inbox bounces sends).
                    // This loop is alive by construction — it is running
                    // this code — so a bounced stream always finds a home.
                    let base = self.shared.next_loop.fetch_add(1, Ordering::Relaxed);
                    let nloops = self.shared.loops.len();
                    let mut stream = Some(stream);
                    for k in 0..nloops {
                        let target = (base + k) % nloops;
                        if target == self.idx {
                            break; // adopt locally below
                        }
                        match self.shared.loops[target]
                            .try_send(LoopMsg::Adopt(stream.take().expect("unplaced")))
                        {
                            Ok(()) => break,
                            Err(LoopMsg::Adopt(s)) => stream = Some(s),
                            Err(_) => unreachable!("adopt bounced as another message"),
                        }
                    }
                    if let Some(s) = stream {
                        self.adopt(s);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if self.draining {
            self.release_active();
            return;
        }
        let fd = stream.as_raw_fd();
        let token = self.slab.insert(stream);
        if self.poller.add(fd, token, EV_READ).is_err() {
            self.slab.remove(token);
            self.release_active();
            return;
        }
        let conn = self.slab.get_mut(token).expect("just inserted");
        conn.interest = EV_READ;
    }

    /// Decrement the global active-connection ledger and mirror the gauge.
    fn release_active(&self) {
        let now = self.shared.active.fetch_sub(1, Ordering::Relaxed) - 1;
        self.shared.server.metrics().set_conn_active(now as u64);
    }

    /// Route a completion into its connection's sequencer slot. Stale
    /// tokens (the connection died first) drop the line on the floor.
    fn complete(&mut self, token: u64, seq: u64, line: String) {
        let shared = Arc::clone(&self.shared);
        let me = Arc::clone(&self.me);
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        conn.fulfill(seq, line);
        pump(&shared, &me, conn);
        self.settle(token);
    }

    /// Apply one readiness event to a connection.
    fn touch(&mut self, token: u64, ev: Event) {
        let shared = Arc::clone(&self.shared);
        let me = Arc::clone(&self.me);
        let draining = self.draining;
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if ev.error {
            conn.death = Some(Death::ReadErr);
            self.settle(token);
            return;
        }
        if ev.readable {
            if conn.interest & EV_READ == 0 {
                // Read interest is parked, yet the fd woke us: that is a
                // hangup (HUP is unmaskable). Sound only because readiness
                // events are handled before inbox messages each tick, so
                // `conn.interest` here is exactly the mask armed when
                // wait() captured this event — nothing has parked it in
                // between. The peer is gone; whatever we still owe it has
                // no reader.
                conn.death = Some(if conn.out_len() > 0 || conn.unfulfilled() > 0 {
                    Death::WriteErr
                } else {
                    Death::Clean
                });
                self.settle(token);
                return;
            }
            read_some(conn, draining);
        }
        if conn.death.is_none() {
            pump(&shared, &me, conn);
        }
        self.settle(token);
    }

    /// Post-IO bookkeeping: close the dead, re-arm interest for the living.
    fn settle(&mut self, token: u64) {
        let draining = self.draining;
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        if conn.death.is_none()
            && conn.read_closed
            && conn.out_len() == 0
            && conn.unfulfilled() == 0
            && conn.rbuf.is_empty()
        {
            conn.death = Some(Death::Clean);
        }
        if let Some(cause) = conn.death {
            self.close(token, cause);
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let desired = conn.desired_interest(draining);
        if desired != conn.interest {
            if self.poller.modify(fd, token, desired).is_err() {
                self.close(token, Death::ReadErr);
                return;
            }
            let conn = self.slab.get_mut(token).expect("still live");
            conn.interest = desired;
        }
    }

    fn close(&mut self, token: u64, fallback: Death) {
        let Some(conn) = self.slab.remove(token) else {
            return;
        };
        let cause = conn.death.unwrap_or(fallback);
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        drop(conn);
        let m = self.shared.server.metrics();
        match cause {
            Death::ReadErr => m.conn_read_err.inc(),
            Death::WriteErr => m.conn_write_err.inc(),
            Death::Clean => {}
        }
        self.release_active();
    }

    /// Un-park admission-paused connections once the queue has drained to
    /// the hysteresis floor, replaying their buffered lines.
    fn resume_paused(&mut self) {
        let any = self.slab.slots.iter().flatten().any(|c| c.admission_paused);
        if !any {
            return;
        }
        if self.shared.server.queue_depth() > self.shared.queue_resume {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let me = Arc::clone(&self.me);
        for token in self.slab.tokens() {
            let Some(conn) = self.slab.get_mut(token) else {
                continue;
            };
            if !conn.admission_paused {
                continue;
            }
            conn.admission_paused = false;
            pump(&shared, &me, conn);
            self.settle(token);
        }
    }
}

/// Drain the socket into the connection's read buffer until `WouldBlock`
/// or EOF. Oversized frames and transport errors mark the connection dead.
fn read_some(conn: &mut Conn, draining: bool) {
    if draining {
        return;
    }
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                conn.eof = true;
                return;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&buf[..n]);
                if conn.rbuf.len() > RBUF_CAP {
                    conn.death = Some(Death::ReadErr);
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.death = Some(Death::ReadErr);
                return;
            }
        }
    }
}

/// Alternate flushing and line processing until neither makes progress.
/// This loop is load-bearing: a flush can empty the outbound buffer below
/// the low-water mark and un-park the write side while parsed-but-unserved
/// lines still sit in `rbuf` — with the socket already drained, no
/// readiness event will ever revisit them, so the pump must finish the job
/// here rather than wait on the poller.
fn pump(shared: &ReactorShared, me: &Arc<LoopShared>, conn: &mut Conn) {
    loop {
        try_flush(conn);
        if conn.death.is_some() || conn.write_paused {
            return;
        }
        let before = (conn.rbuf.len(), conn.out_len(), conn.unfulfilled());
        process_lines(shared, me, conn);
        if conn.death.is_some() {
            return;
        }
        try_flush(conn);
        if (conn.rbuf.len(), conn.out_len(), conn.unfulfilled()) == before {
            return;
        }
    }
}

/// Parse and dispatch every complete line in the read buffer, stopping at
/// a backpressure boundary (full admission queue or a high outbound
/// buffer). Unconsumed lines stay buffered for the resume path.
fn process_lines(shared: &ReactorShared, me: &Arc<LoopShared>, conn: &mut Conn) {
    let mut start = 0;
    while conn.death.is_none() {
        if conn.out_len() > WRITE_HIGH_WATER {
            if !conn.write_paused {
                conn.write_paused = true;
                shared.server.metrics().conn_write_backpressure.inc();
            }
            break;
        }
        // A line normally ends at '\n'; once the peer half-closes, the
        // residual unterminated bytes count as a final line too — the old
        // thread-per-connection front-end served that trailing fragment,
        // so byte-compatibility requires the reactor to as well. `next` is
        // the consume cursor: one past the newline, or the buffer end for
        // the terminal fragment.
        let (end, next) = match conn.rbuf[start..].iter().position(|&b| b == b'\n') {
            Some(nl) => (start + nl, start + nl + 1),
            None if conn.eof && start < conn.rbuf.len() => (conn.rbuf.len(), conn.rbuf.len()),
            None => break,
        };
        let mut line_end = end;
        if line_end > start && conn.rbuf[line_end - 1] == b'\r' {
            line_end -= 1;
        }
        let Ok(line) = std::str::from_utf8(&conn.rbuf[start..line_end]) else {
            conn.death = Some(Death::ReadErr);
            break;
        };
        match parse_request(line, shared.server.sample_len()) {
            Request::Empty => {}
            Request::Stats => {
                let seq = conn.alloc_seq();
                // The exposition carries its own "# EOF\n" terminator; it
                // enters the sequencer like any response and streams out
                // under write-readiness.
                conn.fulfill(seq, shared.server.exposition());
            }
            Request::Immediate(reply) => {
                let seq = conn.alloc_seq();
                conn.fulfill(seq, reply + "\n");
            }
            Request::Submit { id, input } => {
                // Admission backpressure: a full queue parks this line (and
                // everything after it) in the buffer instead of feeding the
                // shed ladder; kernel socket buffers hold the rest.
                if shared.server.queue_depth() >= shared.queue_cap {
                    if !conn.admission_paused {
                        conn.admission_paused = true;
                        shared.server.metrics().conn_admission_pause.inc();
                    }
                    break;
                }
                let seq = conn.alloc_seq();
                let me = Arc::clone(me);
                let token = conn.token;
                let cb = move |result: Result<Response, ShedReason>| {
                    let rendered = match result {
                        Ok(resp) => ok_line(id, &resp),
                        Err(reason) => error_line(id, &format!("shed:{reason}")),
                    };
                    // A bounce means the owning loop exited and took the
                    // connection with it: drop, like any stale token.
                    let _ = me.try_send(LoopMsg::Complete {
                        token,
                        seq,
                        line: rendered + "\n",
                    });
                };
                // Err means the callback will never run: the refusal is
                // rendered here, inline, keeping the slot single-sourced.
                if let Err(reason) = shared.server.submit_with(input, cb) {
                    conn.fulfill(seq, error_line(id, &format!("shed:{reason}")) + "\n");
                }
            }
        }
        start = next;
    }
    if start > 0 {
        conn.rbuf.drain(..start);
    }
}

/// Push owed bytes at the socket until it stops taking them. Clears the
/// write-backpressure park at the low-water mark.
fn try_flush(conn: &mut Conn) {
    while conn.wpos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.wpos..]) {
            Ok(0) => {
                conn.death = Some(Death::WriteErr);
                return;
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.death = Some(Death::WriteErr);
                return;
            }
        }
    }
    if conn.wpos == conn.out.len() {
        conn.out.clear();
        conn.wpos = 0;
    } else if conn.wpos > 64 * 1024 {
        conn.out.drain(..conn.wpos);
        conn.wpos = 0;
    }
    if conn.write_paused && conn.out_len() <= WRITE_LOW_WATER {
        conn.write_paused = false;
    }
}
