//! SLO error-budget burn-rate monitoring (multi-window).
//!
//! The serving SLO promises that at most a `budget` fraction of admitted
//! requests go *bad* — shed by the ladder or completed past the deadline.
//! The burn rate over a window is
//!
//! ```text
//! burn(window) = (bad events in window / events in window) / budget
//! ```
//!
//! `burn == 1` means the budget is being consumed exactly as fast as it
//! accrues; `burn == 10` means a month's budget burns in three days. A
//! single window forces a bad trade: short windows page on blips, long
//! windows page an hour late. The standard fix (Google SRE workbook ch. 5)
//! is *multi-window* alerting, and [`BurnMonitor`] implements its
//! deterministic core: an alert fires only when **both** the fast window
//! (is it happening *now*?) and the slow window (is it *sustained*?) burn
//! at or above the threshold, and it re-arms only after the slow window
//! cools back below it (hysteresis — no alert storms while one incident
//! drains).
//!
//! The monitor is pure bookkeeping over caller-supplied timestamps: the
//! threaded server feeds it wall-clock micros, the virtual-clock sim feeds
//! it virtual time, and the same event sequence produces the same alert at
//! the same (byte-reproducible) timestamp either way.

use std::collections::VecDeque;
use ucudnn::env::EnvError;

/// Default error budget: 1% of admitted requests may go bad.
pub const DEFAULT_BUDGET: f64 = 0.01;
/// Default fast window, microseconds (1 s): "is it happening now?".
pub const DEFAULT_FAST_US: f64 = 1_000_000.0;
/// Default slow window, microseconds (10 s): "is it sustained?".
pub const DEFAULT_SLOW_US: f64 = 10_000_000.0;
/// Alert when both windows burn at ≥ this multiple of the budget rate.
pub const DEFAULT_THRESHOLD: f64 = 1.0;

/// Burn-monitor configuration (`UCUDNN_SLO_BUDGET`, `UCUDNN_BURN_WINDOWS`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnConfig {
    /// Fraction of admitted requests allowed to go bad, in `(0, 1]`.
    pub budget: f64,
    /// Fast window length, microseconds.
    pub fast_us: f64,
    /// Slow window length, microseconds (must exceed `fast_us`).
    pub slow_us: f64,
    /// Burn multiple at which the alert fires.
    pub threshold: f64,
}

impl Default for BurnConfig {
    fn default() -> Self {
        Self {
            budget: DEFAULT_BUDGET,
            fast_us: DEFAULT_FAST_US,
            slow_us: DEFAULT_SLOW_US,
            threshold: DEFAULT_THRESHOLD,
        }
    }
}

impl BurnConfig {
    /// Read the configuration from a key-lookup function (testable twin of
    /// [`Self::from_env`]). Unset keys keep their defaults; malformed
    /// values are errors, not silent fallbacks.
    ///
    /// * `UCUDNN_SLO_BUDGET` — bad-event budget fraction in `(0, 1]`.
    /// * `UCUDNN_BURN_WINDOWS` — `"<fast_us>,<slow_us>"`, both positive,
    ///   fast strictly shorter than slow.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<Self, EnvError> {
        let mut cfg = Self::default();
        if let Some(v) = lookup("UCUDNN_SLO_BUDGET") {
            cfg.budget = v
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|b| b.is_finite() && *b > 0.0 && *b <= 1.0)
                .ok_or(EnvError {
                    variable: "UCUDNN_SLO_BUDGET",
                    value: v,
                })?;
        }
        if let Some(v) = lookup("UCUDNN_BURN_WINDOWS") {
            let err = || EnvError {
                variable: "UCUDNN_BURN_WINDOWS",
                value: v.clone(),
            };
            let (fast, slow) = v.split_once(',').ok_or_else(err)?;
            let parse = |s: &str| {
                s.trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
            };
            let fast = parse(fast).ok_or_else(err)?;
            let slow = parse(slow).ok_or_else(err)?;
            if fast >= slow {
                return Err(err());
            }
            cfg.fast_us = fast;
            cfg.slow_us = slow;
        }
        Ok(cfg)
    }

    /// Read the configuration from the process environment.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_env() -> Result<Self, EnvError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }
}

/// An inactive→active alert transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnAlert {
    /// Timestamp of the observation that tripped the alert, microseconds.
    pub at_us: f64,
    /// Fast-window burn at that instant.
    pub fast_burn: f64,
    /// Slow-window burn at that instant.
    pub slow_burn: f64,
}

/// Deterministic multi-window burn-rate monitor. Feed it every outcome —
/// `observe(ts, bad)` for each shed and each completion — and it returns
/// `Some(BurnAlert)` exactly at inactive→active transitions.
#[derive(Debug)]
pub struct BurnMonitor {
    cfg: BurnConfig,
    /// Outcome events inside the slow window, oldest first: `(ts, bad)`.
    events: VecDeque<(f64, bool)>,
    slow_total: u64,
    slow_bad: u64,
    /// High-water timestamp: windows are anchored here, so slightly
    /// out-of-order completion timestamps from concurrent workers cannot
    /// move a window backwards.
    max_ts: f64,
    active: bool,
    alerts_fired: u64,
    first_alert_us: Option<f64>,
}

impl BurnMonitor {
    /// A monitor with no history.
    pub fn new(cfg: BurnConfig) -> Self {
        Self {
            cfg,
            events: VecDeque::new(),
            slow_total: 0,
            slow_bad: 0,
            max_ts: f64::NEG_INFINITY,
            active: false,
            alerts_fired: 0,
            first_alert_us: None,
        }
    }

    /// The configuration this monitor runs under.
    pub fn config(&self) -> &BurnConfig {
        &self.cfg
    }

    /// Record one outcome at `now_us` (`bad` = shed or SLO violation).
    /// Returns the alert if this observation flipped the monitor from
    /// inactive to active; while already active, further bad events return
    /// `None` (one alert per incident). The monitor deactivates — re-arms —
    /// once the slow-window burn falls back below the threshold.
    pub fn observe(&mut self, now_us: f64, bad: bool) -> Option<BurnAlert> {
        self.max_ts = self.max_ts.max(now_us);
        self.events.push_back((now_us, bad));
        self.slow_total += 1;
        if bad {
            self.slow_bad += 1;
        }
        let slow_cutoff = self.max_ts - self.cfg.slow_us;
        while let Some(&(ts, was_bad)) = self.events.front() {
            if ts >= slow_cutoff {
                break;
            }
            self.events.pop_front();
            self.slow_total -= 1;
            if was_bad {
                self.slow_bad -= 1;
            }
        }
        let (fast_burn, slow_burn) = self.burn_rates();
        if !self.active {
            if fast_burn >= self.cfg.threshold && slow_burn >= self.cfg.threshold {
                self.active = true;
                self.alerts_fired += 1;
                self.first_alert_us.get_or_insert(now_us);
                return Some(BurnAlert {
                    at_us: now_us,
                    fast_burn,
                    slow_burn,
                });
            }
        } else if slow_burn < self.cfg.threshold {
            self.active = false;
        }
        None
    }

    /// Current `(fast, slow)` burn rates, anchored at the latest observed
    /// timestamp. An empty window burns 0 (no data is not an outage).
    pub fn burn_rates(&self) -> (f64, f64) {
        let fast_cutoff = self.max_ts - self.cfg.fast_us;
        let mut fast_total = 0u64;
        let mut fast_bad = 0u64;
        for &(ts, bad) in self.events.iter().rev() {
            if ts < fast_cutoff {
                break;
            }
            fast_total += 1;
            if bad {
                fast_bad += 1;
            }
        }
        let burn = |bad: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / self.cfg.budget
            }
        };
        (
            burn(fast_bad, fast_total),
            burn(self.slow_bad, self.slow_total),
        )
    }

    /// Whether an alert is currently active.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Inactive→active transitions so far.
    pub fn alerts_fired(&self) -> u64 {
        self.alerts_fired
    }

    /// Timestamp of the first alert, if any ever fired.
    pub fn first_alert_us(&self) -> Option<f64> {
        self.first_alert_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BurnConfig {
        BurnConfig {
            budget: 0.01,
            fast_us: 1_000.0,
            slow_us: 10_000.0,
            threshold: 1.0,
        }
    }

    #[test]
    fn a_clean_run_never_alerts() {
        let mut m = BurnMonitor::new(cfg());
        for i in 0..10_000 {
            assert_eq!(m.observe(i as f64 * 10.0, false), None);
        }
        assert!(!m.active());
        assert_eq!(m.alerts_fired(), 0);
        assert_eq!(m.first_alert_us(), None);
        assert_eq!(m.burn_rates(), (0.0, 0.0));
    }

    #[test]
    fn a_sustained_burn_fires_exactly_once_per_incident() {
        let mut m = BurnMonitor::new(cfg());
        // Warm up clean, then turn every outcome bad.
        for i in 0..1_000 {
            m.observe(i as f64 * 10.0, false);
        }
        let mut alerts = Vec::new();
        for i in 1_000..2_000 {
            if let Some(a) = m.observe(i as f64 * 10.0, true) {
                alerts.push(a);
            }
        }
        assert_eq!(alerts.len(), 1, "one alert per incident, not a storm");
        let a = alerts[0];
        assert!(a.fast_burn >= 1.0 && a.slow_burn >= 1.0);
        assert_eq!(m.first_alert_us(), Some(a.at_us));
        assert!(m.active());
    }

    #[test]
    fn the_alert_timestamp_is_deterministic() {
        let run = || {
            let mut m = BurnMonitor::new(cfg());
            let mut first = None;
            for i in 0..5_000 {
                let bad = i >= 2_500;
                if let Some(a) = m.observe(i as f64 * 7.0, bad) {
                    first.get_or_insert(a.at_us);
                }
            }
            first
        };
        let a = run();
        assert!(a.is_some());
        assert_eq!(a, run(), "same feed, same alert timestamp, bytewise");
    }

    #[test]
    fn the_monitor_rearms_after_the_slow_window_cools() {
        let mut m = BurnMonitor::new(cfg());
        let mut t = 0.0;
        let mut feed = |m: &mut BurnMonitor, n: usize, bad: bool| {
            let mut fired = 0;
            for _ in 0..n {
                t += 10.0;
                if m.observe(t, bad).is_some() {
                    fired += 1;
                }
            }
            fired
        };
        assert_eq!(feed(&mut m, 200, true), 1, "first incident");
        // A long clean stretch flushes the slow window and deactivates.
        assert_eq!(feed(&mut m, 2_000, false), 0);
        assert!(!m.active(), "slow window cooled below threshold");
        // A second incident fires a second alert.
        assert_eq!(feed(&mut m, 200, true), 1, "re-armed");
        assert_eq!(m.alerts_fired(), 2);
    }

    #[test]
    fn a_blip_below_the_fast_window_threshold_does_not_page() {
        // 1 bad in 400 events inside the fast window: bad fraction 0.25%,
        // burn 0.25 < 1 under a 1% budget.
        let mut m = BurnMonitor::new(cfg());
        for i in 0..400 {
            let bad = i == 200;
            assert_eq!(m.observe(i as f64 * 2.0, bad), None);
        }
        assert_eq!(m.alerts_fired(), 0);
    }

    #[test]
    fn out_of_order_timestamps_cannot_rewind_the_window() {
        let mut m = BurnMonitor::new(cfg());
        m.observe(100_000.0, false);
        // A worker reporting an earlier completion must not shrink max_ts.
        m.observe(99_990.0, false);
        assert_eq!(m.max_ts, 100_000.0);
        assert_eq!(m.events.len(), 2);
    }

    #[test]
    fn burn_config_env_parses_strictly() {
        let none = |_: &str| None;
        assert_eq!(
            BurnConfig::from_lookup(none).unwrap(),
            BurnConfig::default()
        );
        let both = |k: &str| match k {
            "UCUDNN_SLO_BUDGET" => Some("0.05".to_string()),
            "UCUDNN_BURN_WINDOWS" => Some("20000, 100000".to_string()),
            _ => None,
        };
        let cfg = BurnConfig::from_lookup(both).unwrap();
        assert_eq!(cfg.budget, 0.05);
        assert_eq!(cfg.fast_us, 20_000.0);
        assert_eq!(cfg.slow_us, 100_000.0);
        for (key, bad) in [
            ("UCUDNN_SLO_BUDGET", "0"),
            ("UCUDNN_SLO_BUDGET", "1.5"),
            ("UCUDNN_SLO_BUDGET", "lots"),
            ("UCUDNN_BURN_WINDOWS", "5000"),
            ("UCUDNN_BURN_WINDOWS", "5000,1000"),
            ("UCUDNN_BURN_WINDOWS", "0,1000"),
            ("UCUDNN_BURN_WINDOWS", "a,b"),
        ] {
            let e =
                BurnConfig::from_lookup(|k| (k == key).then(|| bad.to_string())).expect_err(bad);
            assert_eq!(e.variable, key);
        }
    }
}
