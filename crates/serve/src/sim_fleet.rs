//! Deterministic discrete-event twin of the fleet tier.
//!
//! [`run_fleet_sim`] drives N simulated device replicas — each with its
//! own latency table, bounded queue, worker pool, and per-replica
//! [`Scheduler`] — behind one [`Router`], on a virtual clock. Same
//! contract as [`crate::sim`] and [`crate::sim_reopt`]: everything is a
//! pure function of the config, so the same seed and replica set produce
//! a byte-identical event log, and `serve_bench --fleet` replays runs to
//! prove it.
//!
//! Event order is total and deterministic. The loop repeatedly takes the
//! earliest of three event kinds, breaking exact time ties in this order:
//!
//! 1. **Failure** — the configured replica dies: it stops accepting, its
//!    in-flight batches land (drain semantics), and every queued ticket is
//!    re-routed through the router among the survivors at its *original*
//!    arrival time, or shed on the `draining` rung. Tickets never hang:
//!    `completed + shed == offered` holds with or without a failure.
//! 2. **Arrival** — the router inspects a snapshot of every replica
//!    (queue depth, capacity, earliest-free worker, fluid service rate)
//!    and dispatches or sheds at the arrival instant.
//! 3. **Service** — the replica whose next opportunity
//!    (`max(earliest-free worker, oldest queued arrival)`) is earliest
//!    runs its scheduler: fire a coalesced batch, wait for the next
//!    arrival, or shed a proven-infeasible ticket.
//!
//! Because each replica runs the same deadline-aware [`BatchPolicy::Dynamic`]
//! scheduler as the single-replica stack, an admitted request either
//! completes within its SLO or is shed *before* execution — admitted
//! requests never violate, under either router policy. The routers differ
//! in how much they shed, which is exactly what the bench compares.

use crate::fleet::FleetMetrics;
use crate::fleet::{replica_rate_per_us, ReplicaSnapshot, RouteDecision, Router};
use crate::request::ShedReason;
use crate::scheduler::{Action, BatchPolicy, Scheduler};
use crate::sim::{poisson_arrivals, ShedCounts};
use std::collections::VecDeque;
use ucudnn::FleetRouterPolicy;
use ucudnn_framework::StreamingHistogram;

/// One replica of the simulated fleet.
#[derive(Debug, Clone)]
pub struct FleetReplicaConfig {
    /// Stable name for logs and metric labels (device card by convention).
    pub name: String,
    /// The replica's own `t*(m)` latency table (per-device).
    pub table: Vec<(usize, f64)>,
    /// Worker threads executing coalesced batches.
    pub workers: usize,
    /// Bounded admission-queue capacity.
    pub queue_cap: usize,
}

/// Kill one replica mid-run.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaFailure {
    /// Index into [`FleetSimConfig::replicas`].
    pub replica: usize,
    /// Virtual-clock instant of death.
    pub at_us: f64,
}

/// Full configuration of one fleet simulation.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Seed for the Poisson arrival process.
    pub seed: u64,
    /// Per-request deadline budget (µs).
    pub slo_us: f64,
    /// Coalesced-batch cap shared by every replica's scheduler.
    pub max_batch: usize,
    /// Offered load (requests/second).
    pub arrival_rate_rps: f64,
    /// Total requests offered.
    pub requests: usize,
    /// Router policy under test.
    pub policy: FleetRouterPolicy,
    /// The fleet, in router index order.
    pub replicas: Vec<FleetReplicaConfig>,
    /// Optional mid-run replica failure.
    pub fail: Option<ReplicaFailure>,
}

/// Per-replica tallies.
#[derive(Debug, Clone, Default)]
pub struct ReplicaOutcome {
    /// Replica name, copied from the config.
    pub name: String,
    /// Tickets the router dispatched here (including re-routes).
    pub routed: u64,
    /// Requests completed in this replica's batches.
    pub completed: u64,
    /// Post-dispatch sheds charged to this replica (scheduler-proven
    /// deadline misses, plus drain sheds when the replica died).
    pub shed: u64,
    /// Coalesced batches fired.
    pub batches: u64,
}

/// Everything observable from one fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Requests that completed.
    pub completed: u64,
    /// Sheds by ladder rung, fleet-wide.
    pub shed: ShedCounts,
    /// Completed requests that missed their deadline (expected 0: the
    /// per-replica schedulers only fire feasible plans).
    pub violations: u64,
    /// Tickets re-routed off a failed replica onto survivors.
    pub requeued: u64,
    /// Per-replica tallies, in config order.
    pub per_replica: Vec<ReplicaOutcome>,
    /// Size of every coalesced batch fired, fleet-wide, in fire order.
    pub batch_sizes: Vec<usize>,
    /// The deterministic event log.
    pub log: Vec<String>,
    /// End-to-end latency of completed requests.
    pub latencies: StreamingHistogram,
    /// First arrival instant (µs).
    pub first_arrival_us: f64,
    /// Last batch-completion instant (µs).
    pub last_completion_us: f64,
}

impl FleetOutcome {
    /// Completed-request throughput over the active interval.
    pub fn throughput_rps(&self) -> f64 {
        let span_us = self.last_completion_us - self.first_arrival_us;
        if span_us <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / (span_us / 1e6)
    }

    /// Mean coalesced-batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            return 0.0;
        }
        self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
    }

    /// Publish the per-replica tallies onto fleet instruments. Replicas
    /// sharing a card name accumulate into one series (the label
    /// vocabulary is the card list, keeping cardinality pinned).
    pub fn export(&self, metrics: &FleetMetrics) {
        for r in &self.per_replica {
            metrics.routed(&r.name, r.routed);
            metrics.completed(&r.name, r.completed);
            metrics.shed(&r.name, r.shed);
            metrics.set_depth(&r.name, 0.0);
        }
    }
}

/// Live state of one replica inside the event loop.
struct Rep {
    name: String,
    sched: Scheduler,
    rate_per_us: f64,
    queue: VecDeque<(u64, f64)>,
    free_at: Vec<f64>,
    queue_cap: usize,
    alive: bool,
}

impl Rep {
    fn snapshot(&self) -> ReplicaSnapshot {
        ReplicaSnapshot {
            rate_per_us: self.rate_per_us,
            queue_depth: self.queue.len(),
            queue_cap: self.queue_cap,
            earliest_free_us: self.free_at.iter().copied().fold(f64::INFINITY, f64::min),
            alive: self.alive,
        }
    }

    /// Insert a re-routed ticket keeping the queue sorted by arrival time
    /// (then id), so the scheduler's oldest-first deadline logic stays
    /// sound when old tickets land behind newer ones.
    fn insert_sorted(&mut self, id: u64, at: f64) {
        let pos = self
            .queue
            .iter()
            .position(|&(qid, qat)| (qat, qid) > (at, id))
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, (id, at));
    }
}

/// Run one fleet simulation to completion.
pub fn run_fleet_sim(cfg: &FleetSimConfig) -> FleetOutcome {
    assert!(!cfg.replicas.is_empty(), "need at least one replica");
    for r in &cfg.replicas {
        assert!(r.workers >= 1, "replica {} needs a worker", r.name);
        assert!(r.queue_cap >= 1, "replica {} needs a queue", r.name);
        assert!(
            r.table.iter().any(|&(m, _)| m >= 1 && m <= cfg.max_batch),
            "replica {} has no batch size within max_batch",
            r.name
        );
    }
    if let Some(f) = cfg.fail {
        assert!(f.replica < cfg.replicas.len(), "failure index out of range");
    }

    let router = Router::new(cfg.policy, cfg.slo_us);
    let mut reps: Vec<Rep> = cfg
        .replicas
        .iter()
        .map(|r| {
            let table: Vec<(usize, f64)> = r
                .table
                .iter()
                .copied()
                .filter(|&(m, _)| m <= cfg.max_batch)
                .collect();
            Rep {
                name: r.name.clone(),
                sched: Scheduler::new(
                    table.clone(),
                    cfg.slo_us,
                    cfg.max_batch,
                    BatchPolicy::Dynamic,
                ),
                rate_per_us: replica_rate_per_us(&table, r.workers),
                queue: VecDeque::new(),
                free_at: vec![0.0f64; r.workers],
                queue_cap: r.queue_cap,
                alive: true,
            }
        })
        .collect();

    let arrivals = poisson_arrivals(cfg.seed, cfg.requests, cfg.arrival_rate_rps);
    let mut out = FleetOutcome {
        completed: 0,
        shed: ShedCounts::default(),
        violations: 0,
        requeued: 0,
        per_replica: cfg
            .replicas
            .iter()
            .map(|r| ReplicaOutcome {
                name: r.name.clone(),
                ..ReplicaOutcome::default()
            })
            .collect(),
        batch_sizes: Vec::new(),
        log: Vec::new(),
        latencies: StreamingHistogram::new(),
        first_arrival_us: arrivals.first().copied().unwrap_or(0.0),
        last_completion_us: 0.0,
    };

    let mut next_id: usize = 0;
    let mut pending_fail = cfg.fail;

    loop {
        // Candidate events, earliest wins; exact ties resolve
        // failure → arrival → service, then lowest replica index.
        let fail_t = pending_fail.map(|f| f.at_us);
        let arr_t = arrivals.get(next_id).copied();
        let mut svc: Option<(f64, usize, usize)> = None;
        for (ri, r) in reps.iter().enumerate() {
            if !r.alive || r.queue.is_empty() {
                continue;
            }
            let (w, free) = r
                .free_at
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
                .expect("replica has workers");
            let t = free.max(r.queue.front().expect("non-empty queue").1);
            if svc.is_none_or(|(bt, _, _)| t < bt) {
                svc = Some((t, ri, w));
            }
        }

        let next_t = [fail_t, arr_t, svc.map(|(t, _, _)| t)]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        if next_t.is_infinite() {
            break;
        }

        if fail_t.is_some_and(|t| t <= next_t) {
            // Replica death: drain semantics. In-flight batches land, the
            // queue re-routes (original arrival times) or sheds — never
            // hangs.
            let f = pending_fail.take().expect("failure is pending");
            let now = f.at_us;
            reps[f.replica].alive = false;
            let drained: Vec<(u64, f64)> = reps[f.replica].queue.drain(..).collect();
            let mut requeued = 0u64;
            let mut shed_n = 0u64;
            for (id, at) in drained {
                let snaps: Vec<ReplicaSnapshot> = reps.iter().map(Rep::snapshot).collect();
                match router.choose(now, at, &snaps) {
                    RouteDecision::Dispatch(i) => {
                        reps[i].insert_sorted(id, at);
                        out.per_replica[i].routed += 1;
                        requeued += 1;
                    }
                    RouteDecision::Shed(_) => {
                        // Whatever rung routing failed on, the ticket is
                        // lost to the drain: charge the draining rung.
                        out.shed.bump(ShedReason::Draining);
                        out.per_replica[f.replica].shed += 1;
                        shed_n += 1;
                        out.log
                            .push(format!("shed t={now:.3} id={id} reason=draining"));
                    }
                }
            }
            out.requeued += requeued;
            out.log.push(format!(
                "fail t={now:.3} replica={} requeued={requeued} shed={shed_n}",
                reps[f.replica].name
            ));
            continue;
        }

        if arr_t.is_some_and(|t| t <= next_t) {
            // Route one arrival at its arrival instant.
            let at = arrivals[next_id];
            let id = next_id as u64;
            next_id += 1;
            let snaps: Vec<ReplicaSnapshot> = reps.iter().map(Rep::snapshot).collect();
            match router.choose(at, at, &snaps) {
                RouteDecision::Dispatch(i) => {
                    reps[i].queue.push_back((id, at));
                    out.per_replica[i].routed += 1;
                }
                RouteDecision::Shed(reason) => {
                    out.shed.bump(reason);
                    out.log
                        .push(format!("shed t={at:.3} id={id} reason={}", reason.name()));
                }
            }
            continue;
        }

        // Service opportunity on the earliest replica/worker.
        let (t, ri, w) = svc.expect("a service event remains");
        let now = t;
        let times: Vec<f64> = reps[ri].queue.iter().map(|&(_, at)| at).collect();
        let next_arrival = arrivals.get(next_id).copied();
        match reps[ri].sched.decide(now, &times, next_arrival) {
            Action::Fire(d) => {
                let finish = now + d.exec_us;
                reps[ri].free_at[w] = finish;
                out.last_completion_us = out.last_completion_us.max(finish);
                let mut first = 0u64;
                let mut last = 0u64;
                for k in 0..d.batch {
                    let (id, at) = reps[ri]
                        .queue
                        .pop_front()
                        .expect("planned batch exceeds queue");
                    if k == 0 {
                        first = id;
                    }
                    last = id;
                    let latency = finish - at;
                    if latency > cfg.slo_us + 1e-6 {
                        out.violations += 1;
                    }
                    out.latencies.record(latency);
                    out.completed += 1;
                    out.per_replica[ri].completed += 1;
                }
                out.batch_sizes.push(d.batch);
                out.per_replica[ri].batches += 1;
                let micros = d
                    .micros
                    .iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join("+");
                out.log.push(format!(
                    "fire t={now:.3} replica={} worker={w} batch={} micros={micros} \
                     exec={:.3} ids={first}..{last}",
                    reps[ri].name, d.batch, d.exec_us
                ));
            }
            Action::WaitUntil(t) => {
                debug_assert!(t > now, "wait must move the clock forward");
                reps[ri].free_at[w] = t;
            }
            Action::ShedOldest => {
                let (id, _at) = reps[ri].queue.pop_front().expect("non-empty queue");
                out.shed.bump(ShedReason::DeadlineInfeasible);
                out.per_replica[ri].shed += 1;
                out.log.push(format!(
                    "shed t={now:.3} replica={} id={id} reason=deadline_infeasible",
                    reps[ri].name
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A V100-flavoured synthetic table: fast, batches well.
    fn fast_table() -> Vec<(usize, f64)> {
        vec![
            (1, 120.0),
            (2, 160.0),
            (4, 240.0),
            (8, 400.0),
            (16, 720.0),
            (32, 1360.0),
        ]
    }

    /// A P100-flavoured synthetic table.
    fn mid_table() -> Vec<(usize, f64)> {
        vec![
            (1, 200.0),
            (2, 280.0),
            (4, 440.0),
            (8, 760.0),
            (16, 1400.0),
            (32, 2680.0),
        ]
    }

    /// A K80-flavoured synthetic table: ~4× slower than the V100.
    fn slow_table() -> Vec<(usize, f64)> {
        vec![
            (1, 500.0),
            (2, 700.0),
            (4, 1100.0),
            (8, 1900.0),
            (16, 3500.0),
            (32, 6700.0),
        ]
    }

    fn replica(name: &str, table: Vec<(usize, f64)>) -> FleetReplicaConfig {
        FleetReplicaConfig {
            name: name.into(),
            table,
            workers: 2,
            queue_cap: 256,
        }
    }

    fn hetero_cfg(policy: ucudnn::FleetRouterPolicy, rate: f64, requests: usize) -> FleetSimConfig {
        FleetSimConfig {
            seed: 2018,
            slo_us: 20_000.0,
            max_batch: 32,
            arrival_rate_rps: rate,
            requests,
            policy,
            replicas: vec![
                replica("k80", slow_table()),
                replica("p100", mid_table()),
                replica("v100", fast_table()),
            ],
            fail: None,
        }
    }

    #[test]
    fn same_seed_gives_a_byte_identical_log() {
        for policy in [
            ucudnn::FleetRouterPolicy::Feasibility,
            ucudnn::FleetRouterPolicy::LeastLoaded,
        ] {
            let cfg = hetero_cfg(policy, 60_000.0, 3_000);
            let a = run_fleet_sim(&cfg);
            let b = run_fleet_sim(&cfg);
            assert_eq!(a.log, b.log);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.shed.total(), b.shed.total());
        }
    }

    #[test]
    fn accounting_balances_and_admitted_requests_never_violate() {
        for policy in [
            ucudnn::FleetRouterPolicy::Feasibility,
            ucudnn::FleetRouterPolicy::LeastLoaded,
        ] {
            for rate in [20_000.0, 80_000.0, 250_000.0] {
                let out = run_fleet_sim(&hetero_cfg(policy, rate, 4_000));
                assert_eq!(out.completed + out.shed.total(), 4_000);
                assert_eq!(out.violations, 0, "policy {policy:?} rate {rate}");
                let routed: u64 = out.per_replica.iter().map(|r| r.routed).sum();
                let finished: u64 = out.per_replica.iter().map(|r| r.completed + r.shed).sum();
                assert_eq!(routed, finished, "every dispatched ticket resolves");
                assert_eq!(
                    out.completed,
                    out.per_replica.iter().map(|r| r.completed).sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn heterogeneous_replicas_see_heterogeneous_shares() {
        // Under feasibility routing, the V100 should complete well more
        // than the K80 — the router is rate-aware.
        let out = run_fleet_sim(&hetero_cfg(
            ucudnn::FleetRouterPolicy::Feasibility,
            120_000.0,
            6_000,
        ));
        let k80 = &out.per_replica[0];
        let v100 = &out.per_replica[2];
        assert!(
            v100.completed > k80.completed,
            "v100 {} should out-serve k80 {}",
            v100.completed,
            k80.completed
        );
    }

    #[test]
    fn feasibility_beats_least_loaded_under_moderate_overload() {
        // Offered load somewhat beyond fleet capacity — the regime a
        // fleet is actually provisioned for. The rate-aware router must
        // shed strictly less than the rate-blind baseline: JSQ parks
        // tickets in the slow replica's short-but-doomed queue, while
        // feasibility routing only dispatches where the deadline holds.
        // (Under extreme overload, many multiples of capacity, both
        // policies degenerate to shedding most of the offered load and
        // the gap closes; the fleet bench pins this regime instead.)
        for rate in [100_000.0, 120_000.0] {
            let feas = run_fleet_sim(&hetero_cfg(
                ucudnn::FleetRouterPolicy::Feasibility,
                rate,
                6_000,
            ));
            let jsq = run_fleet_sim(&hetero_cfg(
                ucudnn::FleetRouterPolicy::LeastLoaded,
                rate,
                6_000,
            ));
            assert!(
                feas.shed.total() < jsq.shed.total(),
                "rate {rate}: feasibility shed {} >= least-loaded {}",
                feas.shed.total(),
                jsq.shed.total()
            );
            assert_eq!(feas.violations, 0);
            assert_eq!(jsq.violations, 0);
        }
    }

    #[test]
    fn replica_failure_loses_zero_tickets() {
        for policy in [
            ucudnn::FleetRouterPolicy::Feasibility,
            ucudnn::FleetRouterPolicy::LeastLoaded,
        ] {
            let mut cfg = hetero_cfg(policy, 120_000.0, 5_000);
            cfg.fail = Some(ReplicaFailure {
                replica: 2,
                at_us: 15_000.0,
            });
            let out = run_fleet_sim(&cfg);
            assert_eq!(
                out.completed + out.shed.total(),
                5_000,
                "no ticket may hang through a failure"
            );
            assert_eq!(out.violations, 0);
            let fail_line = out
                .log
                .iter()
                .find(|l| l.starts_with("fail "))
                .expect("failure is logged");
            assert!(fail_line.contains("replica=v100"));
            // After the failure instant, the dead replica never fires.
            let seen_fail = out.log.iter().position(|l| l.starts_with("fail ")).unwrap();
            assert!(
                out.log[seen_fail..]
                    .iter()
                    .all(|l| !(l.starts_with("fire ") && l.contains("replica=v100"))),
                "dead replica must not fire after death"
            );
        }
    }

    #[test]
    fn failure_reroutes_queued_tickets_to_survivors() {
        // Kill the replica mid-burst so its queue is non-empty; the
        // survivors absorb the backlog.
        let mut cfg = hetero_cfg(ucudnn::FleetRouterPolicy::Feasibility, 200_000.0, 5_000);
        cfg.fail = Some(ReplicaFailure {
            replica: 1,
            at_us: 10_000.0,
        });
        let out = run_fleet_sim(&cfg);
        assert!(out.requeued > 0, "expected a non-empty queue at death");
        assert_eq!(out.completed + out.shed.total(), 5_000);
    }

    #[test]
    fn outcome_exports_onto_closed_vocabulary_instruments() {
        let out = run_fleet_sim(&hetero_cfg(
            ucudnn::FleetRouterPolicy::Feasibility,
            60_000.0,
            2_000,
        ));
        let registry = ucudnn::Registry::new();
        let metrics = FleetMetrics::with_registry(registry.clone(), &["k80", "p100", "v100"]);
        out.export(&metrics);
        let text = registry.expose();
        assert!(text.contains("ucudnn_fleet_routed_total{replica=\"v100\"}"));
        assert!(text.contains("ucudnn_fleet_completed_total{replica=\"k80\"}"));
        assert_eq!(registry.dropped(), 0);
    }
}
