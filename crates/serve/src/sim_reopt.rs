//! Deterministic discrete-event simulation of the *online re-optimization*
//! loop (DESIGN.md §13): a device whose latency curve drifts mid-run, a
//! drift detector watching windowed per-micro-batch p50s, a modeled
//! re-benchmark with its own virtual latency, and an atomic epoch-pointer
//! hot-swap of the plan — all on the same seeded virtual clock as
//! [`crate::sim`], so the "frozen plan sheds, re-optimized plan re-converges
//! with zero violations" claim is byte-identical across runs and machines.
//!
//! The ground truth is explicit: the device executes micro-batch `m` in
//! `base_t(m) · factor_at(now)` where the [`Perturbation`] steps the factor
//! at a virtual timestamp (the sim twin of `UCUDNN_PERTURB_*` on the
//! simulated `CudnnHandle`). The *plan* only knows whatever table it was
//! last benchmarked with — the gap between the two is exactly what the
//! detector observes and what a re-benchmark closes.

use crate::reopt::{DriftDetector, ReoptConfig};
use crate::request::ShedReason;
use crate::scheduler::{Action, BatchPolicy, Scheduler};
use crate::sim::{poisson_arrivals, ShedCounts};
use crate::slo_monitor::{BurnConfig, BurnMonitor};
use parking_lot::Epoch;
use std::collections::VecDeque;
use ucudnn_framework::StreamingHistogram;
use ucudnn_gpu_model::Perturbation;

/// One simulated drift-and-recover experiment.
#[derive(Debug, Clone)]
pub struct ReoptSimConfig {
    /// Load-generator seed; the only entropy source in the simulation.
    pub seed: u64,
    /// Per-request deadline budget, microseconds.
    pub slo_us: f64,
    /// Bounded admission queue capacity.
    pub queue_cap: usize,
    /// Parallel worker lanes.
    pub workers: usize,
    /// Coalesced-batch cap.
    pub max_batch: usize,
    /// Mean offered load, requests per second (Poisson arrivals).
    pub arrival_rate_rps: f64,
    /// Total requests to offer.
    pub requests: usize,
    /// The device's *pre-drift* latency table `t*(m)`; the startup plan is
    /// benchmarked from it, and ground truth scales it by the perturbation.
    pub base_table: Vec<(usize, f64)>,
    /// The mid-run device drift (virtual timestamp + latency multiplier).
    pub perturb: Perturbation,
    /// The re-optimization policy, or `None` for the frozen-plan baseline
    /// (no detector, no re-benchmark, no swap — the startup table forever).
    pub reopt: Option<ReoptConfig>,
    /// Virtual time one re-benchmark takes (invalidate + re-measure the
    /// stale Pareto fronts); serving continues on the old plan meanwhile.
    pub rebench_latency_us: f64,
    /// Optional SLO burn-rate monitor: every shed and completion outcome
    /// feeds a [`BurnMonitor`] on the virtual clock, and inactive→active
    /// transitions land in the log (`slo_alert t=…`). Pure observation —
    /// scheduling is unchanged, so the log with `None` stays byte-identical.
    pub burn: Option<BurnConfig>,
}

/// What one drift experiment produced.
#[derive(Debug, Clone)]
pub struct ReoptOutcome {
    /// Requests that completed within the simulation.
    pub completed: u64,
    /// Requests shed, by reason.
    pub shed: ShedCounts,
    /// Completed requests whose *actual* end-to-end latency exceeded the
    /// SLO (the plan believed otherwise — that is the cost of staleness).
    pub violations: u64,
    /// Violations among requests fired after the first plan swap — the
    /// re-convergence claim is that this is zero.
    pub violations_post_swap: u64,
    /// Drift reports raised by the detector.
    pub stale_detections: u64,
    /// Successful plan hot-swaps.
    pub swaps: u64,
    /// Virtual time of the first drift report, if any.
    pub detect_time_us: Option<f64>,
    /// Virtual time the first swapped plan took effect, if any.
    pub swap_time_us: Option<f64>,
    /// Plan generation serving at the end (1 = startup table).
    pub final_version: u64,
    /// Every fired batch size, in firing order.
    pub batch_sizes: Vec<usize>,
    /// The deterministic fire/shed/drift/swap log; byte-identical across
    /// runs with the same config.
    pub log: Vec<String>,
    /// Actual end-to-end latency distribution of completed requests.
    pub latencies: StreamingHistogram,
    /// Virtual time of the first arrival.
    pub first_arrival_us: f64,
    /// Virtual time of the last batch completion.
    pub last_completion_us: f64,
    /// Burn-rate alerts fired (inactive→active transitions), if a
    /// [`BurnConfig`] was supplied.
    pub slo_alerts: u64,
    /// Virtual time of the first burn-rate alert, if any fired —
    /// byte-reproducible across runs with the same config.
    pub first_alert_us: Option<f64>,
}

/// Feed one outcome to the optional burn monitor; an inactive→active
/// transition appends an `slo_alert` log line and updates the outcome.
fn observe_burn(burn: &mut Option<BurnMonitor>, out: &mut ReoptOutcome, t: f64, bad: bool) {
    let Some(mon) = burn.as_mut() else { return };
    if let Some(a) = mon.observe(t, bad) {
        out.slo_alerts += 1;
        if out.first_alert_us.is_none() {
            out.first_alert_us = Some(a.at_us);
        }
        out.log.push(format!(
            "slo_alert t={:.3} fast={:.3} slow={:.3}",
            a.at_us, a.fast_burn, a.slow_burn
        ));
    }
}

/// Run one drift experiment.
///
/// The loop is [`crate::sim::run_sim`] with three additions: execution uses
/// the perturbed ground truth instead of the plan's belief, every executed
/// micro-batch feeds the drift detector, and a completed re-benchmark
/// publishes a new scheduler through an [`Epoch`] pointer (version-stamped
/// into the log, exactly like the threaded server's hot-swap).
///
/// # Panics
/// Panics on a config with no workers, an empty queue, or a base table with
/// no size within `max_batch`.
pub fn run_reopt_sim(cfg: &ReoptSimConfig) -> ReoptOutcome {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.queue_cap >= 1, "need a non-empty queue");
    let base: Vec<(usize, f64)> = cfg
        .base_table
        .iter()
        .copied()
        .filter(|&(m, _)| m <= cfg.max_batch)
        .collect();
    assert!(!base.is_empty(), "no batch size within max_batch");
    let base_t = |m: usize| -> f64 {
        base.iter()
            .find(|&&(size, _)| size == m)
            .map(|&(_, t)| t)
            .expect("planned micro size comes from the table")
    };

    let plan = Epoch::new(Scheduler::new(
        base.clone(),
        cfg.slo_us,
        cfg.max_batch,
        BatchPolicy::Dynamic,
    ));
    let mut detector = DriftDetector::new(cfg.reopt.unwrap_or(ReoptConfig {
        enabled: false,
        ..ReoptConfig::default()
    }));
    // An in-flight re-benchmark: (virtual completion time, the latency
    // factor it measures — the device as-it-was when the re-benchmark ran).
    let mut rebench: Option<(f64, f64)> = None;
    let mut burn = cfg.burn.map(BurnMonitor::new);

    let arrivals = poisson_arrivals(cfg.seed, cfg.requests, cfg.arrival_rate_rps);
    let mut out = ReoptOutcome {
        completed: 0,
        shed: ShedCounts::default(),
        violations: 0,
        violations_post_swap: 0,
        stale_detections: 0,
        swaps: 0,
        detect_time_us: None,
        swap_time_us: None,
        final_version: plan.version(),
        batch_sizes: Vec::new(),
        log: Vec::new(),
        latencies: StreamingHistogram::new(),
        first_arrival_us: arrivals.first().copied().unwrap_or(0.0),
        last_completion_us: 0.0,
        slo_alerts: 0,
        first_alert_us: None,
    };

    let mut queue: VecDeque<(u64, f64)> = VecDeque::new();
    let mut next_id: usize = 0;
    let mut free_at = vec![0.0f64; cfg.workers];

    loop {
        let (w, _) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .unwrap();
        let mut now = free_at[w];

        if queue.is_empty() {
            if next_id >= arrivals.len() {
                break;
            }
            now = now.max(arrivals[next_id]);
        }

        // A finished re-benchmark takes effect at the next scheduling
        // opportunity: publish the refreshed table as a new generation.
        if let Some((ready_at, factor)) = rebench {
            if now >= ready_at {
                let table: Vec<(usize, f64)> = base.iter().map(|&(m, t)| (m, t * factor)).collect();
                let version = plan.store(Scheduler::new(
                    table,
                    cfg.slo_us,
                    cfg.max_batch,
                    BatchPolicy::Dynamic,
                ));
                out.swaps += 1;
                out.final_version = version;
                if out.swap_time_us.is_none() {
                    out.swap_time_us = Some(now);
                }
                detector.reset();
                out.log.push(format!(
                    "swap t={now:.3} plan=v{version} factor={factor:.3}"
                ));
                rebench = None;
            }
        }

        while next_id < arrivals.len() && arrivals[next_id] <= now {
            let (id, at) = (next_id as u64, arrivals[next_id]);
            next_id += 1;
            if queue.len() >= cfg.queue_cap {
                out.shed.bump(ShedReason::QueueFull);
                out.log
                    .push(format!("shed t={at:.3} id={id} reason=queue_full"));
                observe_burn(&mut burn, &mut out, at, true);
            } else {
                queue.push_back((id, at));
            }
        }
        if queue.is_empty() {
            free_at[w] = now;
            continue;
        }

        let times: Vec<f64> = queue.iter().map(|&(_, at)| at).collect();
        let next_arrival = arrivals.get(next_id).copied();
        let cur = plan.load();
        match cur.decide(now, &times, next_arrival) {
            Action::Fire(d) => {
                // Ground truth: the device as-it-is-now, not as the plan
                // believes. The gap is the drift under test.
                let factor = cfg.perturb.factor_at(now);
                let actual_exec: f64 = d.micros.iter().map(|&m| base_t(m) * factor).sum();
                let finish = now + actual_exec;
                free_at[w] = finish;
                out.last_completion_us = out.last_completion_us.max(finish);
                let post_swap = out.swaps > 0;
                let mut ids = Vec::with_capacity(d.batch);
                let mut verdicts = Vec::with_capacity(d.batch);
                for _ in 0..d.batch {
                    let (id, at) = queue.pop_front().expect("planned batch exceeds queue");
                    let latency = finish - at;
                    let violated = latency > cfg.slo_us + 1e-6;
                    if violated {
                        out.violations += 1;
                        if post_swap {
                            out.violations_post_swap += 1;
                        }
                    }
                    verdicts.push(violated);
                    out.latencies.record(latency);
                    out.completed += 1;
                    ids.push(id);
                }
                out.batch_sizes.push(d.batch);
                let micros = d
                    .micros
                    .iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join("+");
                out.log.push(format!(
                    "fire t={now:.3} worker={w} plan=v{} batch={} micros={micros} \
                     planned={:.3} actual={actual_exec:.3} ids={}..{}",
                    cur.version(),
                    d.batch,
                    d.exec_us,
                    ids.first().unwrap(),
                    ids.last().unwrap()
                ));
                // Completions feed the burn monitor after the fire line, so
                // an alert tripped by this batch lands right below it.
                for violated in verdicts {
                    observe_burn(&mut burn, &mut out, finish, violated);
                }

                // Every executed micro-batch feeds the detector, judged
                // against the plan that fired it.
                let table = cur.table().to_vec();
                for &m in &d.micros {
                    let Some(&(_, expected)) = table.iter().find(|&&(size, _)| size == m) else {
                        continue;
                    };
                    if let Some(r) = detector.observe(m, base_t(m) * factor, expected) {
                        out.stale_detections += 1;
                        if out.detect_time_us.is_none() {
                            out.detect_time_us = Some(now);
                        }
                        out.log.push(format!(
                            "drift t={now:.3} micro={} observed_p50={:.3} expected={:.3} \
                             ratio={:.3}",
                            r.micro, r.observed_p50_us, r.expected_us, r.ratio
                        ));
                        if rebench.is_none() {
                            // The re-benchmark measures the device as it is
                            // *now* and lands after its own latency; serving
                            // stays on the old plan meanwhile.
                            let measured = cfg.perturb.factor_at(now);
                            rebench = Some((now + cfg.rebench_latency_us, measured));
                            out.log.push(format!(
                                "rebench_start t={now:.3} ready_at={:.3} factor={measured:.3}",
                                now + cfg.rebench_latency_us
                            ));
                        }
                    }
                }
            }
            Action::WaitUntil(t) => {
                debug_assert!(t > now, "wait must move the clock forward");
                free_at[w] = t;
            }
            Action::ShedOldest => {
                let (id, _at) = queue.pop_front().unwrap();
                out.shed.bump(ShedReason::DeadlineInfeasible);
                out.log.push(format!(
                    "shed t={now:.3} id={id} reason=deadline_infeasible"
                ));
                observe_burn(&mut burn, &mut out, now, true);
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serve_bench table shape: t(m) = 480 + 20m (sub-linear/sample).
    fn base_table() -> Vec<(usize, f64)> {
        [1usize, 2, 4, 8, 16, 32]
            .into_iter()
            .map(|m| (m, 480.0 + 20.0 * m as f64))
            .collect()
    }

    /// 1 worker at 20k rps / 20ms SLO: healthy pre-drift (~28.5k rps
    /// capacity), overloaded after a 2× slowdown (~14.3k rps).
    fn cfg(reopt: Option<ReoptConfig>) -> ReoptSimConfig {
        ReoptSimConfig {
            seed: 2018,
            slo_us: 20_000.0,
            queue_cap: 256,
            workers: 1,
            max_batch: 32,
            arrival_rate_rps: 20_000.0,
            requests: 4_000,
            base_table: base_table(),
            perturb: Perturbation::new(50_000.0, 2.0),
            reopt,
            rebench_latency_us: 5_000.0,
            burn: None,
        }
    }

    /// A burn config sized for the sim's 200 ms horizon: a 20 ms fast
    /// window and a 100 ms slow window over a 1% budget.
    fn burn_cfg() -> BurnConfig {
        BurnConfig {
            budget: 0.01,
            fast_us: 20_000.0,
            slow_us: 100_000.0,
            threshold: 1.0,
        }
    }

    #[test]
    fn same_seed_gives_a_byte_identical_log() {
        let c = cfg(Some(ReoptConfig::default()));
        let a = run_reopt_sim(&c);
        let b = run_reopt_sim(&c);
        assert_eq!(a.log, b.log);
        assert_eq!(a.swaps, b.swaps);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn frozen_plan_degrades_where_reopt_reconverges() {
        let frozen = run_reopt_sim(&cfg(None));
        let reopt = run_reopt_sim(&cfg(Some(ReoptConfig::default())));
        // The frozen baseline never notices the device halved.
        assert_eq!(frozen.swaps, 0);
        assert_eq!(frozen.final_version, 1);
        assert!(
            frozen.shed.total() > 0,
            "a 2x-slower device under a 20k rps load must shed on a frozen plan"
        );
        // The re-optimized lane detects, swaps, and serves clean after.
        assert!(reopt.stale_detections >= 1, "drift must be detected");
        assert!(reopt.swaps >= 1, "a re-benchmark must land");
        assert_eq!(reopt.final_version, 1 + reopt.swaps);
        let (detect, swap) = (reopt.detect_time_us.unwrap(), reopt.swap_time_us.unwrap());
        assert!(detect >= 50_000.0, "no detection before the drift exists");
        assert!(swap >= detect + 5_000.0, "the re-benchmark takes time");
        assert_eq!(
            reopt.violations_post_swap, 0,
            "after re-convergence the plan and the device agree exactly"
        );
        // Accounting balances in both lanes.
        for o in [&frozen, &reopt] {
            assert_eq!(o.completed + o.shed.total(), 4_000);
        }
    }

    #[test]
    fn no_drift_means_no_detections_and_no_swaps() {
        for seed in [1u64, 7, 2018] {
            let mut c = cfg(Some(ReoptConfig::default()));
            c.seed = seed;
            c.perturb = Perturbation::new(f64::INFINITY, 2.0); // never fires
            let out = run_reopt_sim(&c);
            assert_eq!(out.stale_detections, 0, "seed {seed}: false positive");
            assert_eq!(out.swaps, 0);
            assert_eq!(out.violations, 0);
            assert_eq!(out.final_version, 1);
        }
    }

    #[test]
    fn the_frozen_lane_fires_a_burn_alert_at_a_reproducible_virtual_time() {
        let mut c = cfg(None);
        c.burn = Some(burn_cfg());
        let a = run_reopt_sim(&c);
        let b = run_reopt_sim(&c);
        // A 2×-slower device under a frozen plan sheds hard: the burn
        // monitor must page, and at the same virtual microsecond every run.
        assert!(a.slo_alerts >= 1, "sustained sheds must trip the alert");
        let first = a.first_alert_us.expect("an alert fired");
        assert!(first >= 50_000.0, "no alert before the drift exists");
        assert_eq!(a.first_alert_us, b.first_alert_us, "byte-reproducible");
        assert_eq!(a.log, b.log);
        assert!(
            a.log.iter().any(|l| l.starts_with("slo_alert t=")),
            "the alert is in the deterministic log"
        );
    }

    #[test]
    fn a_clean_run_fires_no_burn_alert_on_any_seed() {
        for seed in [1u64, 7, 2018] {
            let mut c = cfg(Some(ReoptConfig::default()));
            c.seed = seed;
            c.perturb = Perturbation::new(f64::INFINITY, 2.0); // never fires
            c.burn = Some(burn_cfg());
            let out = run_reopt_sim(&c);
            assert_eq!(out.slo_alerts, 0, "seed {seed}: false page");
            assert_eq!(out.first_alert_us, None);
        }
    }

    #[test]
    fn the_burn_monitor_is_pure_observation() {
        let plain = run_reopt_sim(&cfg(None));
        let mut c = cfg(None);
        c.burn = Some(burn_cfg());
        let watched = run_reopt_sim(&c);
        // Identical serving decisions; the watched log only gains lines.
        assert_eq!(plain.completed, watched.completed);
        assert_eq!(plain.shed, watched.shed);
        assert_eq!(plain.violations, watched.violations);
        assert_eq!(plain.batch_sizes, watched.batch_sizes);
        let stripped: Vec<&String> = watched
            .log
            .iter()
            .filter(|l| !l.starts_with("slo_alert "))
            .collect();
        assert_eq!(stripped, plain.log.iter().collect::<Vec<_>>());
    }

    #[test]
    fn the_reopt_lane_with_no_drift_matches_the_frozen_lane() {
        let mut frozen = cfg(None);
        let mut reopt = cfg(Some(ReoptConfig::default()));
        frozen.perturb = Perturbation::new(f64::INFINITY, 2.0);
        reopt.perturb = Perturbation::new(f64::INFINITY, 2.0);
        let a = run_reopt_sim(&frozen);
        let b = run_reopt_sim(&reopt);
        // The detector is pure observation: absent drift it perturbs nothing.
        assert_eq!(a.log, b.log);
    }
}
