//! ucudnn-serve: an in-process inference server with SLO-aware dynamic
//! micro-batching (DESIGN.md §12).
//!
//! Training amortizes μ-cuDNN's micro-batch economics over a fixed batch;
//! serving has to *discover* its batch online. This crate closes the loop:
//!
//! * [`scheduler`] — the fire/wait/shed decision on top of
//!   [`ucudnn::plan_batch`], the latency-aware repurposing of the WR dynamic
//!   program (deadline budget instead of a workspace limit, throughput
//!   objective instead of time);
//! * [`server`] — bounded queue, worker pool, per-request tickets, graceful
//!   drain; execution goes through [`ucudnn_framework::RealExecutor`] over a
//!   [`ucudnn::UcudnnHandle`], hitting the batch-normalized execution-plan
//!   cache and the fault-injection/retry machinery;
//! * [`sim`] — the deterministic discrete-event twin (seeded LCG arrivals,
//!   virtual clock) behind the reproducible SLO/throughput claims in
//!   `BENCH_serve.json`;
//! * [`reopt`] + [`sim_reopt`] — online re-optimization (DESIGN.md §13):
//!   windowed-percentile drift detection against the plan's latency table,
//!   background re-benchmarking, and atomic epoch-pointer plan hot-swaps,
//!   with a deterministic drift-and-recover simulation;
//! * [`metrics`] — queue depth, batch occupancy, shed/degradation counters,
//!   latency percentiles — typed instruments in a `ucudnn::telemetry`
//!   registry, exported as JSON and as a Prometheus-style exposition;
//! * [`slo_monitor`] — deterministic multi-window (fast/slow) SLO
//!   error-budget burn-rate alerting over the shed/violation outcomes;
//! * [`tcp`] + [`reactor`] — the newline-delimited-JSON TCP front-end
//!   (with a `STATS` verb serving the live exposition), carried by a
//!   readiness-driven epoll/poll event-loop reactor (DESIGN.md §15):
//!   C10k-scale connection multiplexing on a fixed thread pool, explicit
//!   admission/write backpressure, and connection telemetry;
//! * [`sys`] — libc-free epoll/ppoll syscall shims (the sync-shim
//!   discipline applied to readiness multiplexing) behind a
//!   backend-neutral poller;
//! * [`sim_ingress`] — the deterministic connection-churn + fan-in twin
//!   behind the `ingress` section of `BENCH_serve.json`;
//! * [`fleet`] + [`sim_fleet`] — the fleet tier (DESIGN.md §16):
//!   SLO-aware feasibility-first routing across heterogeneous device
//!   replicas (each with its own per-device latency table), a
//!   least-loaded baseline to beat, replica drain/failure handling with
//!   zero ticket loss, closed-vocabulary per-replica instruments, and the
//!   deterministic fleet twin behind the `fleet` section of
//!   `BENCH_serve.json`.

pub mod fleet;
pub mod metrics;
pub mod reactor;
pub mod reopt;
pub mod request;
pub mod scheduler;
pub mod server;
pub mod sim;
pub mod sim_fleet;
pub mod sim_ingress;
pub mod sim_reopt;
pub mod slo_monitor;
pub mod sys;
pub mod tcp;

pub use fleet::{replica_rate_per_us, FleetMetrics, ReplicaSnapshot, RouteDecision, Router};
pub use metrics::ServeMetrics;
pub use reactor::Reactor;
pub use reopt::{DriftDetector, DriftReport, ReoptConfig};
pub use request::{RequestId, Response, ShedReason};
pub use scheduler::{Action, BatchPolicy, Scheduler};
pub use server::{BatchRunner, PlanState, RealModelRunner, Server, Ticket};
pub use sim::{poisson_arrivals, run_sim, Lcg, ShedCounts, SimConfig, SimOutcome};
pub use sim_fleet::{
    run_fleet_sim, FleetOutcome, FleetReplicaConfig, FleetSimConfig, ReplicaFailure, ReplicaOutcome,
};
pub use sim_ingress::{run_ingress_sim, IngressOutcome, IngressSimConfig};
pub use sim_reopt::{run_reopt_sim, ReoptOutcome, ReoptSimConfig};
pub use slo_monitor::{BurnAlert, BurnConfig, BurnMonitor};
pub use tcp::TcpFrontend;
