//! Request identity and verdicts.

/// A request's identity, minted at admission and threaded through
/// queue → batch → micro-batch execution → response. The id is stamped
/// into every trace event about the request (`req{n}` keys), into shed
/// and degradation events, and into the latency histogram's exemplar, so
/// `ucudnn-report --request <n>` can reconstruct one request's full
/// timeline from a JSONL trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The trace key spelling (`req{n}`) shared by submit, shed, and
    /// complete events.
    pub fn trace_key(&self) -> String {
        format!("req{}", self.0)
    }
}

impl core::fmt::Display for RequestId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Why the server refused to run (or finish) a request — the serving face
/// of the degradation ladder (DESIGN.md §9/§12): each reason is one rung,
/// and every rung keeps the server alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// Admission control: the bounded queue is full (backpressure).
    QueueFull,
    /// The scheduler proved the request cannot meet its deadline even as a
    /// batch of one — executing it would burn capacity on a guaranteed SLO
    /// violation.
    DeadlineInfeasible,
    /// The coalesced batch hit a permanent execution fault; the batch is
    /// shed, the server stays up.
    ExecFailed,
    /// The server is draining and no longer admits work.
    Draining,
}

impl ShedReason {
    /// Stable wire/metrics spelling.
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineInfeasible => "deadline_infeasible",
            ShedReason::ExecFailed => "exec_failed",
            ShedReason::Draining => "draining",
        }
    }
}

impl core::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A completed inference.
#[derive(Debug, Clone)]
pub struct Response {
    /// Request id (submission order), as minted at admission.
    pub id: RequestId,
    /// Raw model output (logits).
    pub output: Vec<f32>,
    /// End-to-end latency: submit → batch completion, microseconds.
    pub latency_us: f64,
    /// Size of the coalesced batch this request rode in.
    pub batch: usize,
    /// Which plan generation scheduled this request (see
    /// `Server::plan_version`): in-flight batches finish on the plan version
    /// they were fired under, even if a hot-swap lands mid-execution.
    pub plan_version: u64,
}
