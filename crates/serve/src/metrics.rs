//! Serving metrics: typed telemetry instruments plus a latency histogram,
//! exported as one JSON object and as a Prometheus-style exposition.
//!
//! Every counter and gauge here is a handle into a
//! [`ucudnn::telemetry::Registry`] — the same registry the TCP `STATS` verb
//! scrapes — so the JSON snapshot ([`ServeMetrics::to_json`]) and the live
//! exposition are two views of one set of instruments, not parallel
//! tallies. The shed ladder is a labeled counter family with the
//! [`ShedReason`] names as its fixed vocabulary.

use crate::request::ShedReason;
use ucudnn::json::{self, Value};
use ucudnn::telemetry::{Counter, Gauge, Histogram, Registry};

/// Shared instruments for one server instance. All counters are monotone;
/// `queue_depth` is a gauge maintained by the admission/worker paths.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    /// Requests offered to `submit`.
    pub submitted: Counter,
    /// Requests completed successfully.
    pub completed: Counter,
    /// Sheds: admission-control rejections.
    pub shed_queue_full: Counter,
    /// Sheds: scheduler-proven deadline misses.
    pub shed_deadline: Counter,
    /// Sheds: permanent execution faults.
    pub shed_exec_failed: Counter,
    /// Sheds: refused during drain.
    pub shed_draining: Counter,
    /// Batches that degraded (faulted, retried, or shed) but left the
    /// server running — the serving face of the graceful-degradation
    /// counter in the optimizer.
    pub degradations: Counter,
    /// Fired batches.
    pub batches: Counter,
    /// Requests carried by those batches (mean occupancy =
    /// `batched_requests / batches`).
    pub batched_requests: Counter,
    /// Current queue depth (gauge).
    pub queue_depth: Gauge,
    /// High-water mark of the queue depth.
    pub queue_depth_max: Gauge,
    /// Completions whose end-to-end latency exceeded the SLO (the burn
    /// monitor's "bad event" feed, alongside sheds).
    pub violations: Counter,
    /// Re-optimization: windows the drift detector flagged as stale.
    pub stale_detections: Counter,
    /// Re-optimization: successful atomic plan hot-swaps.
    pub plan_swaps: Counter,
    /// Re-optimization: re-benchmarks that failed (empty table or runner
    /// error) — the old plan stayed live (DESIGN §9: degrade, never crash).
    pub reopt_failed: Counter,
    /// Current plan generation (gauge; mirrors `Server::plan_version`).
    pub plan_version: Gauge,
    /// SLO burn-rate alerts fired (inactive→active transitions).
    pub slo_alerts: Counter,
    /// 1 while a burn-rate alert is active, 0 otherwise.
    pub slo_alert_active: Gauge,
    /// Error-budget burn rate over the fast window (gauge).
    pub burn_fast: Gauge,
    /// Error-budget burn rate over the slow window (gauge).
    pub burn_slow: Gauge,
    /// End-to-end latency of completed requests (summary + exemplar).
    pub latency: Histogram,
    /// Ingress: connections accepted by the reactor.
    pub conn_accepted: Counter,
    /// Ingress: connections refused at the listener by the
    /// `UCUDNN_SERVE_MAX_CONNS` cap.
    pub conn_rejected: Counter,
    /// Ingress: connections torn down on a read error (not clean EOF).
    pub conn_read_err: Counter,
    /// Ingress: client write failures (reset/broken pipe while responding).
    pub conn_write_err: Counter,
    /// Ingress: times a connection's read interest was parked because its
    /// outbound buffer crossed the high-water mark (slow reader).
    pub conn_write_backpressure: Counter,
    /// Ingress: times read interest was parked because the admission queue
    /// was full — kernel socket buffers absorb the burst before the shed
    /// ladder fires.
    pub conn_admission_pause: Counter,
    /// Ingress: currently open connections (gauge).
    pub conn_active: Gauge,
    /// Ingress: high-water mark of open connections.
    pub conn_active_max: Gauge,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh, zeroed instruments in a fresh registry (default ring size).
    pub fn new() -> Self {
        Self::with_registry(Registry::new())
    }

    /// Fresh instruments in a caller-supplied registry (e.g. one sized by
    /// `UCUDNN_TELEMETRY_RING`).
    pub fn with_registry(registry: Registry) -> Self {
        let shed = registry.counter_vec(
            "ucudnn_serve_shed_total",
            "Requests shed, by ladder rung.",
            "reason",
            &[
                "queue_full",
                "deadline_infeasible",
                "exec_failed",
                "draining",
            ],
        );
        let rung = |key: &str| shed.with(key).expect("shed reason in vocabulary");
        Self {
            submitted: registry.counter(
                "ucudnn_serve_submitted_total",
                "Requests offered to admission control.",
            ),
            completed: registry.counter(
                "ucudnn_serve_completed_total",
                "Requests completed successfully.",
            ),
            shed_queue_full: rung("queue_full"),
            shed_deadline: rung("deadline_infeasible"),
            shed_exec_failed: rung("exec_failed"),
            shed_draining: rung("draining"),
            degradations: registry.counter(
                "ucudnn_serve_degradations_total",
                "Batches that degraded but left the server running.",
            ),
            batches: registry.counter(
                "ucudnn_serve_batches_total",
                "Batches fired by the workers.",
            ),
            batched_requests: registry.counter(
                "ucudnn_serve_batched_requests_total",
                "Requests carried by fired batches.",
            ),
            queue_depth: registry
                .gauge("ucudnn_serve_queue_depth", "Current admission-queue depth."),
            queue_depth_max: registry.gauge(
                "ucudnn_serve_queue_depth_max",
                "High-water mark of the admission-queue depth.",
            ),
            violations: registry.counter(
                "ucudnn_serve_violations_total",
                "Completions whose latency exceeded the SLO.",
            ),
            stale_detections: registry.counter(
                "ucudnn_serve_stale_detections_total",
                "Windows the drift detector flagged as stale.",
            ),
            plan_swaps: registry.counter(
                "ucudnn_serve_plan_swaps_total",
                "Successful atomic plan hot-swaps.",
            ),
            reopt_failed: registry.counter(
                "ucudnn_serve_reopt_failed_total",
                "Re-benchmarks that failed; the old plan stayed live.",
            ),
            plan_version: registry.gauge("ucudnn_serve_plan_version", "Current plan generation."),
            slo_alerts: registry.counter("ucudnn_slo_alerts_total", "SLO burn-rate alerts fired."),
            slo_alert_active: registry.gauge(
                "ucudnn_slo_alert_active",
                "1 while a burn-rate alert is active.",
            ),
            burn_fast: registry.gauge(
                "ucudnn_slo_burn_rate_fast",
                "Error-budget burn rate over the fast window.",
            ),
            burn_slow: registry.gauge(
                "ucudnn_slo_burn_rate_slow",
                "Error-budget burn rate over the slow window.",
            ),
            latency: registry.histogram(
                "ucudnn_serve_latency_us",
                "End-to-end latency of completed requests, microseconds.",
            ),
            conn_accepted: registry.counter(
                "ucudnn_serve_conn_accepted_total",
                "Connections accepted by the ingress reactor.",
            ),
            conn_rejected: registry.counter(
                "ucudnn_serve_conn_rejected_total",
                "Connections refused at the listener by the connection cap.",
            ),
            conn_read_err: registry.counter(
                "ucudnn_serve_conn_read_err_total",
                "Connections torn down on a read error (not clean EOF).",
            ),
            conn_write_err: registry.counter(
                "ucudnn_serve_conn_write_err_total",
                "Client write failures while delivering responses.",
            ),
            conn_write_backpressure: registry.counter(
                "ucudnn_serve_conn_write_backpressure_total",
                "Read-interest parks due to a slow reader's full write buffer.",
            ),
            conn_admission_pause: registry.counter(
                "ucudnn_serve_conn_admission_pause_total",
                "Read-interest parks while the admission queue was full.",
            ),
            conn_active: registry.gauge(
                "ucudnn_serve_conn_active",
                "Currently open ingress connections.",
            ),
            conn_active_max: registry.gauge(
                "ucudnn_serve_conn_active_max",
                "High-water mark of open ingress connections.",
            ),
            registry,
        }
    }

    /// Count one accepted connection and move the active-connections gauge.
    pub fn conn_opened(&self, active: u64) {
        self.conn_accepted.inc();
        self.set_conn_active(active);
    }

    /// Move the active-connections gauge and maintain its high-water mark.
    pub fn set_conn_active(&self, active: u64) {
        self.conn_active.set(active as f64);
        self.conn_active_max.set_max(active as f64);
    }

    /// The registry behind these instruments; clone it to scrape or to
    /// push ring snapshots.
    pub fn registry(&self) -> Registry {
        self.registry.clone()
    }

    /// Count one shed for `reason`.
    pub fn shed(&self, reason: ShedReason) {
        let c = match reason {
            ShedReason::QueueFull => &self.shed_queue_full,
            ShedReason::DeadlineInfeasible => &self.shed_deadline,
            ShedReason::ExecFailed => &self.shed_exec_failed,
            ShedReason::Draining => &self.shed_draining,
        };
        c.inc();
    }

    /// Total sheds across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full.get()
            + self.shed_deadline.get()
            + self.shed_exec_failed.get()
            + self.shed_draining.get()
    }

    /// Move the queue-depth gauge and maintain its high-water mark.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.set(depth as f64);
        self.queue_depth_max.set_max(depth as f64);
    }

    /// Record one completed request.
    pub fn complete(&self, latency_us: f64) {
        self.completed.inc();
        self.latency.record(latency_us);
    }

    /// Record one completed request correlated with its `RequestId`; the
    /// id lands as the latency histogram's exemplar.
    pub fn complete_for(&self, latency_us: f64, request_id: u64) {
        self.completed.inc();
        self.latency.record_with_exemplar(latency_us, request_id);
    }

    /// Record one fired batch of `n` requests.
    pub fn fired(&self, n: usize) {
        self.batches.inc();
        self.batched_requests.add(n as u64);
    }

    /// Snapshot as a JSON object.
    ///
    /// Percentiles use the histogram's optional accessors, so a server that
    /// has completed nothing reports `null` — not a fake 0µs tail.
    ///
    /// `latency_window_us` reports the percentiles of the completions *since
    /// the previous snapshot* and consumes that window: each scrape sees only
    /// its own interval, which is what makes late drift visible instead of
    /// being averaged into the cumulative view.
    pub fn to_json(&self) -> Value {
        let n = |c: &Counter| json::num(c.get() as f64);
        let g = |c: &Gauge| json::num(c.get());
        let batches = self.batches.get();
        let occupancy = if batches == 0 {
            Value::Null
        } else {
            json::num(self.batched_requests.get() as f64 / batches as f64)
        };
        let window = self.latency.take_window();
        let opt = |q: Option<f64>| q.map_or(Value::Null, json::num);
        let cum = self.latency.cumulative();
        let mean = if cum.count == 0 {
            Value::Null
        } else {
            json::num(cum.mean())
        };
        json::obj([
            ("submitted", n(&self.submitted)),
            ("completed", n(&self.completed)),
            (
                "shed",
                json::obj([
                    ("queue_full", n(&self.shed_queue_full)),
                    ("deadline_infeasible", n(&self.shed_deadline)),
                    ("exec_failed", n(&self.shed_exec_failed)),
                    ("draining", n(&self.shed_draining)),
                    ("total", json::num(self.shed_total() as f64)),
                ]),
            ),
            ("degradations", n(&self.degradations)),
            ("batches", n(&self.batches)),
            ("batch_occupancy", occupancy),
            ("queue_depth", g(&self.queue_depth)),
            ("queue_depth_max", g(&self.queue_depth_max)),
            (
                "reopt",
                json::obj([
                    ("stale_detections", n(&self.stale_detections)),
                    ("plan_swaps", n(&self.plan_swaps)),
                    ("reopt_failed", n(&self.reopt_failed)),
                    ("plan_version", g(&self.plan_version)),
                ]),
            ),
            (
                "latency_us",
                json::obj([
                    ("p50", opt(cum.p50_us)),
                    ("p95", opt(cum.p95_us)),
                    ("p99", opt(cum.p99_us)),
                    ("mean", mean),
                    ("count", json::num(cum.count as f64)),
                ]),
            ),
            (
                "latency_window_us",
                json::obj([
                    ("p50", opt(window.p50_us)),
                    ("p95", opt(window.p95_us)),
                    ("p99", opt(window.p99_us)),
                    ("count", json::num(window.count as f64)),
                ]),
            ),
            (
                "ingress",
                json::obj([
                    ("accepted", n(&self.conn_accepted)),
                    ("rejected", n(&self.conn_rejected)),
                    ("read_err", n(&self.conn_read_err)),
                    ("write_err", n(&self.conn_write_err)),
                    ("write_backpressure", n(&self.conn_write_backpressure)),
                    ("admission_pause", n(&self.conn_admission_pause)),
                    ("active", g(&self.conn_active)),
                    ("active_max", g(&self.conn_active_max)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_metrics_report_null_percentiles() {
        let m = ServeMetrics::new();
        let j = m.to_json();
        let lat = j.get("latency_us").unwrap();
        assert_eq!(lat.get("p99"), Some(&Value::Null));
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("batch_occupancy"), Some(&Value::Null));
        // And the document is valid JSON even with nulls.
        assert!(Value::parse(&j.to_json()).is_some());
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = ServeMetrics::new();
        m.submitted.add(5);
        m.set_queue_depth(3);
        m.set_queue_depth(1);
        m.shed(ShedReason::QueueFull);
        m.shed(ShedReason::ExecFailed);
        m.fired(4);
        for _ in 0..4 {
            m.complete(250.0);
        }
        let j = m.to_json();
        assert_eq!(j.get("submitted").unwrap().as_u64(), Some(5));
        assert_eq!(j.get("completed").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("queue_depth").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("queue_depth_max").unwrap().as_u64(), Some(3));
        let shed = j.get("shed").unwrap();
        assert_eq!(shed.get("queue_full").unwrap().as_u64(), Some(1));
        assert_eq!(shed.get("exec_failed").unwrap().as_u64(), Some(1));
        assert_eq!(shed.get("total").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("batch_occupancy").unwrap().as_f64(), Some(4.0));
        let lat = j.get("latency_us").unwrap();
        assert_eq!(lat.get("p50").unwrap().as_f64(), Some(250.0));
    }

    #[test]
    fn the_latency_window_resets_per_snapshot() {
        let m = ServeMetrics::new();
        for _ in 0..4 {
            m.complete(100.0);
        }
        let w1 = m.to_json();
        let w1 = w1.get("latency_window_us").unwrap();
        assert_eq!(w1.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(w1.get("p50").unwrap().as_f64(), Some(100.0));
        // A drifted interval dominates its own window even though the
        // cumulative histogram still remembers the fast past.
        for _ in 0..2 {
            m.complete(400.0);
        }
        let j2 = m.to_json();
        let w2 = j2.get("latency_window_us").unwrap();
        assert_eq!(w2.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(w2.get("p50").unwrap().as_f64(), Some(400.0));
        let cum = j2.get("latency_us").unwrap();
        assert_eq!(cum.get("count").unwrap().as_u64(), Some(6));
        // And a quiet interval is an empty window, not a stale echo.
        let w3 = m.to_json();
        let w3 = w3.get("latency_window_us").unwrap();
        assert_eq!(w3.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(w3.get("p50"), Some(&Value::Null));
    }

    #[test]
    fn reopt_counters_are_exported() {
        let m = ServeMetrics::new();
        m.stale_detections.add(3);
        m.plan_swaps.add(2);
        m.reopt_failed.inc();
        m.plan_version.set(3.0);
        let j = m.to_json();
        let r = j.get("reopt").unwrap();
        assert_eq!(r.get("stale_detections").unwrap().as_u64(), Some(3));
        assert_eq!(r.get("plan_swaps").unwrap().as_u64(), Some(2));
        assert_eq!(r.get("reopt_failed").unwrap().as_u64(), Some(1));
        assert_eq!(r.get("plan_version").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn ingress_counters_are_exported_in_both_views() {
        let m = ServeMetrics::new();
        m.conn_opened(1);
        m.conn_opened(2);
        m.set_conn_active(1);
        m.conn_rejected.inc();
        m.conn_write_err.inc();
        m.conn_write_backpressure.add(3);
        m.conn_admission_pause.add(2);
        let j = m.to_json();
        let ing = j.get("ingress").unwrap();
        assert_eq!(ing.get("accepted").unwrap().as_u64(), Some(2));
        assert_eq!(ing.get("rejected").unwrap().as_u64(), Some(1));
        assert_eq!(ing.get("read_err").unwrap().as_u64(), Some(0));
        assert_eq!(ing.get("write_err").unwrap().as_u64(), Some(1));
        assert_eq!(ing.get("write_backpressure").unwrap().as_u64(), Some(3));
        assert_eq!(ing.get("admission_pause").unwrap().as_u64(), Some(2));
        assert_eq!(ing.get("active").unwrap().as_u64(), Some(1));
        assert_eq!(ing.get("active_max").unwrap().as_u64(), Some(2));
        let text = m.registry().expose();
        for line in [
            "ucudnn_serve_conn_accepted_total 2",
            "ucudnn_serve_conn_rejected_total 1",
            "ucudnn_serve_conn_write_err_total 1",
            "ucudnn_serve_conn_write_backpressure_total 3",
            "ucudnn_serve_conn_admission_pause_total 2",
            "ucudnn_serve_conn_active 1",
            "ucudnn_serve_conn_active_max 2",
        ] {
            assert!(text.contains(line), "exposition missing {line:?}:\n{text}");
        }
    }

    #[test]
    fn the_json_snapshot_and_the_exposition_share_instruments() {
        // Satellite: no hand-copied keys — both views read the registry.
        let m = ServeMetrics::new();
        m.submitted.add(7);
        m.shed(ShedReason::DeadlineInfeasible);
        m.complete_for(812.5, 42);
        let text = m.registry().expose();
        for line in [
            "ucudnn_serve_submitted_total 7",
            "ucudnn_serve_shed_total{reason=\"deadline_infeasible\"} 1",
            "ucudnn_serve_completed_total 1",
            "# EXEMPLAR ucudnn_serve_latency_us request_id=\"42\" value=812.5",
        ] {
            assert!(text.contains(line), "exposition missing {line:?}:\n{text}");
        }
        assert_eq!(
            m.to_json().get("submitted").unwrap().as_u64(),
            Some(7),
            "same instrument backs the JSON view"
        );
    }
}
