//! Serving metrics: lock-free counters plus a latency histogram, exported
//! as one JSON object alongside `UcudnnHandle::metrics_json`.

use crate::request::ShedReason;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use ucudnn::json::{self, Value};
use ucudnn_framework::StreamingHistogram;

/// Shared counters for one server instance. All counters are monotone;
/// `queue_depth` is a gauge maintained by the admission/worker paths.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests offered to `submit`.
    pub submitted: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Sheds: admission-control rejections.
    pub shed_queue_full: AtomicU64,
    /// Sheds: scheduler-proven deadline misses.
    pub shed_deadline: AtomicU64,
    /// Sheds: permanent execution faults.
    pub shed_exec_failed: AtomicU64,
    /// Sheds: refused during drain.
    pub shed_draining: AtomicU64,
    /// Batches that degraded (faulted, retried, or shed) but left the
    /// server running — the serving face of the graceful-degradation
    /// counter in the optimizer.
    pub degradations: AtomicU64,
    /// Fired batches.
    pub batches: AtomicU64,
    /// Requests carried by those batches (mean occupancy =
    /// `batched_requests / batches`).
    pub batched_requests: AtomicU64,
    /// Current queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// High-water mark of the queue depth.
    pub queue_depth_max: AtomicU64,
    /// End-to-end latency of completed requests.
    pub latency: Mutex<StreamingHistogram>,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one shed for `reason`.
    pub fn shed(&self, reason: ShedReason) {
        let c = match reason {
            ShedReason::QueueFull => &self.shed_queue_full,
            ShedReason::DeadlineInfeasible => &self.shed_deadline,
            ShedReason::ExecFailed => &self.shed_exec_failed,
            ShedReason::Draining => &self.shed_draining,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Total sheds across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full.load(Ordering::Relaxed)
            + self.shed_deadline.load(Ordering::Relaxed)
            + self.shed_exec_failed.load(Ordering::Relaxed)
            + self.shed_draining.load(Ordering::Relaxed)
    }

    /// Move the queue-depth gauge and maintain its high-water mark.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one completed request.
    pub fn complete(&self, latency_us: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.lock().record(latency_us);
    }

    /// Record one fired batch of `n` requests.
    pub fn fired(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Snapshot as a JSON object.
    ///
    /// Percentiles use the histogram's `try_` accessors, so a server that
    /// has completed nothing reports `null` — not a fake 0µs tail.
    pub fn to_json(&self) -> Value {
        let n = |a: &AtomicU64| json::num(a.load(Ordering::Relaxed) as f64);
        let batches = self.batches.load(Ordering::Relaxed);
        let occupancy = if batches == 0 {
            Value::Null
        } else {
            json::num(self.batched_requests.load(Ordering::Relaxed) as f64 / batches as f64)
        };
        let hist = self.latency.lock();
        let (p50, p95, p99, mean) = match hist.try_percentiles() {
            Some(p) => (
                json::num(p.p50_us),
                json::num(p.p95_us),
                json::num(p.p99_us),
                json::num(hist.mean()),
            ),
            None => (Value::Null, Value::Null, Value::Null, Value::Null),
        };
        json::obj([
            ("submitted", n(&self.submitted)),
            ("completed", n(&self.completed)),
            (
                "shed",
                json::obj([
                    ("queue_full", n(&self.shed_queue_full)),
                    ("deadline_infeasible", n(&self.shed_deadline)),
                    ("exec_failed", n(&self.shed_exec_failed)),
                    ("draining", n(&self.shed_draining)),
                    ("total", json::num(self.shed_total() as f64)),
                ]),
            ),
            ("degradations", n(&self.degradations)),
            ("batches", n(&self.batches)),
            ("batch_occupancy", occupancy),
            ("queue_depth", n(&self.queue_depth)),
            ("queue_depth_max", n(&self.queue_depth_max)),
            (
                "latency_us",
                json::obj([
                    ("p50", p50),
                    ("p95", p95),
                    ("p99", p99),
                    ("mean", mean),
                    ("count", json::num(hist.count() as f64)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_metrics_report_null_percentiles() {
        let m = ServeMetrics::new();
        let j = m.to_json();
        let lat = j.get("latency_us").unwrap();
        assert_eq!(lat.get("p99"), Some(&Value::Null));
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("batch_occupancy"), Some(&Value::Null));
        // And the document is valid JSON even with nulls.
        assert!(Value::parse(&j.to_json()).is_some());
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = ServeMetrics::new();
        m.submitted.fetch_add(5, Ordering::Relaxed);
        m.set_queue_depth(3);
        m.set_queue_depth(1);
        m.shed(ShedReason::QueueFull);
        m.shed(ShedReason::ExecFailed);
        m.fired(4);
        for _ in 0..4 {
            m.complete(250.0);
        }
        let j = m.to_json();
        assert_eq!(j.get("submitted").unwrap().as_u64(), Some(5));
        assert_eq!(j.get("completed").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("queue_depth").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("queue_depth_max").unwrap().as_u64(), Some(3));
        let shed = j.get("shed").unwrap();
        assert_eq!(shed.get("queue_full").unwrap().as_u64(), Some(1));
        assert_eq!(shed.get("exec_failed").unwrap().as_u64(), Some(1));
        assert_eq!(shed.get("total").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("batch_occupancy").unwrap().as_f64(), Some(4.0));
        let lat = j.get("latency_us").unwrap();
        assert_eq!(lat.get("p50").unwrap().as_f64(), Some(250.0));
    }
}
