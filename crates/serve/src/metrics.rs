//! Serving metrics: lock-free counters plus a latency histogram, exported
//! as one JSON object alongside `UcudnnHandle::metrics_json`.

use crate::request::ShedReason;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use ucudnn::json::{self, Value};
use ucudnn_framework::StreamingHistogram;

/// Shared counters for one server instance. All counters are monotone;
/// `queue_depth` is a gauge maintained by the admission/worker paths.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests offered to `submit`.
    pub submitted: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Sheds: admission-control rejections.
    pub shed_queue_full: AtomicU64,
    /// Sheds: scheduler-proven deadline misses.
    pub shed_deadline: AtomicU64,
    /// Sheds: permanent execution faults.
    pub shed_exec_failed: AtomicU64,
    /// Sheds: refused during drain.
    pub shed_draining: AtomicU64,
    /// Batches that degraded (faulted, retried, or shed) but left the
    /// server running — the serving face of the graceful-degradation
    /// counter in the optimizer.
    pub degradations: AtomicU64,
    /// Fired batches.
    pub batches: AtomicU64,
    /// Requests carried by those batches (mean occupancy =
    /// `batched_requests / batches`).
    pub batched_requests: AtomicU64,
    /// Current queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// High-water mark of the queue depth.
    pub queue_depth_max: AtomicU64,
    /// Re-optimization: windows the drift detector flagged as stale.
    pub stale_detections: AtomicU64,
    /// Re-optimization: successful atomic plan hot-swaps.
    pub plan_swaps: AtomicU64,
    /// Re-optimization: re-benchmarks that failed (empty table or runner
    /// error) — the old plan stayed live (DESIGN §9: degrade, never crash).
    pub reopt_failed: AtomicU64,
    /// Current plan generation (gauge; mirrors `Server::plan_version`).
    pub plan_version: AtomicU64,
    /// End-to-end latency of completed requests.
    pub latency: Mutex<StreamingHistogram>,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one shed for `reason`.
    pub fn shed(&self, reason: ShedReason) {
        let c = match reason {
            ShedReason::QueueFull => &self.shed_queue_full,
            ShedReason::DeadlineInfeasible => &self.shed_deadline,
            ShedReason::ExecFailed => &self.shed_exec_failed,
            ShedReason::Draining => &self.shed_draining,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Total sheds across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full.load(Ordering::Relaxed)
            + self.shed_deadline.load(Ordering::Relaxed)
            + self.shed_exec_failed.load(Ordering::Relaxed)
            + self.shed_draining.load(Ordering::Relaxed)
    }

    /// Move the queue-depth gauge and maintain its high-water mark.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one completed request.
    pub fn complete(&self, latency_us: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.lock().record(latency_us);
    }

    /// Record one fired batch of `n` requests.
    pub fn fired(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Snapshot as a JSON object.
    ///
    /// Percentiles use the histogram's `try_` accessors, so a server that
    /// has completed nothing reports `null` — not a fake 0µs tail.
    ///
    /// `latency_window_us` reports the percentiles of the completions *since
    /// the previous snapshot* and consumes that window: each scrape sees only
    /// its own interval, which is what makes late drift visible instead of
    /// being averaged into the cumulative view.
    pub fn to_json(&self) -> Value {
        let n = |a: &AtomicU64| json::num(a.load(Ordering::Relaxed) as f64);
        let batches = self.batches.load(Ordering::Relaxed);
        let occupancy = if batches == 0 {
            Value::Null
        } else {
            json::num(self.batched_requests.load(Ordering::Relaxed) as f64 / batches as f64)
        };
        let mut hist = self.latency.lock();
        let window = hist.take_window();
        let (wp50, wp95, wp99) = match window.try_percentiles() {
            Some(p) => (
                json::num(p.p50_us),
                json::num(p.p95_us),
                json::num(p.p99_us),
            ),
            None => (Value::Null, Value::Null, Value::Null),
        };
        let (p50, p95, p99, mean) = match hist.try_percentiles() {
            Some(p) => (
                json::num(p.p50_us),
                json::num(p.p95_us),
                json::num(p.p99_us),
                json::num(hist.mean()),
            ),
            None => (Value::Null, Value::Null, Value::Null, Value::Null),
        };
        json::obj([
            ("submitted", n(&self.submitted)),
            ("completed", n(&self.completed)),
            (
                "shed",
                json::obj([
                    ("queue_full", n(&self.shed_queue_full)),
                    ("deadline_infeasible", n(&self.shed_deadline)),
                    ("exec_failed", n(&self.shed_exec_failed)),
                    ("draining", n(&self.shed_draining)),
                    ("total", json::num(self.shed_total() as f64)),
                ]),
            ),
            ("degradations", n(&self.degradations)),
            ("batches", n(&self.batches)),
            ("batch_occupancy", occupancy),
            ("queue_depth", n(&self.queue_depth)),
            ("queue_depth_max", n(&self.queue_depth_max)),
            (
                "reopt",
                json::obj([
                    ("stale_detections", n(&self.stale_detections)),
                    ("plan_swaps", n(&self.plan_swaps)),
                    ("reopt_failed", n(&self.reopt_failed)),
                    ("plan_version", n(&self.plan_version)),
                ]),
            ),
            (
                "latency_us",
                json::obj([
                    ("p50", p50),
                    ("p95", p95),
                    ("p99", p99),
                    ("mean", mean),
                    ("count", json::num(hist.count() as f64)),
                ]),
            ),
            (
                "latency_window_us",
                json::obj([
                    ("p50", wp50),
                    ("p95", wp95),
                    ("p99", wp99),
                    ("count", json::num(window.count() as f64)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_metrics_report_null_percentiles() {
        let m = ServeMetrics::new();
        let j = m.to_json();
        let lat = j.get("latency_us").unwrap();
        assert_eq!(lat.get("p99"), Some(&Value::Null));
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("batch_occupancy"), Some(&Value::Null));
        // And the document is valid JSON even with nulls.
        assert!(Value::parse(&j.to_json()).is_some());
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = ServeMetrics::new();
        m.submitted.fetch_add(5, Ordering::Relaxed);
        m.set_queue_depth(3);
        m.set_queue_depth(1);
        m.shed(ShedReason::QueueFull);
        m.shed(ShedReason::ExecFailed);
        m.fired(4);
        for _ in 0..4 {
            m.complete(250.0);
        }
        let j = m.to_json();
        assert_eq!(j.get("submitted").unwrap().as_u64(), Some(5));
        assert_eq!(j.get("completed").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("queue_depth").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("queue_depth_max").unwrap().as_u64(), Some(3));
        let shed = j.get("shed").unwrap();
        assert_eq!(shed.get("queue_full").unwrap().as_u64(), Some(1));
        assert_eq!(shed.get("exec_failed").unwrap().as_u64(), Some(1));
        assert_eq!(shed.get("total").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("batch_occupancy").unwrap().as_f64(), Some(4.0));
        let lat = j.get("latency_us").unwrap();
        assert_eq!(lat.get("p50").unwrap().as_f64(), Some(250.0));
    }

    #[test]
    fn the_latency_window_resets_per_snapshot() {
        let m = ServeMetrics::new();
        for _ in 0..4 {
            m.complete(100.0);
        }
        let w1 = m.to_json();
        let w1 = w1.get("latency_window_us").unwrap();
        assert_eq!(w1.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(w1.get("p50").unwrap().as_f64(), Some(100.0));
        // A drifted interval dominates its own window even though the
        // cumulative histogram still remembers the fast past.
        for _ in 0..2 {
            m.complete(400.0);
        }
        let j2 = m.to_json();
        let w2 = j2.get("latency_window_us").unwrap();
        assert_eq!(w2.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(w2.get("p50").unwrap().as_f64(), Some(400.0));
        let cum = j2.get("latency_us").unwrap();
        assert_eq!(cum.get("count").unwrap().as_u64(), Some(6));
        // And a quiet interval is an empty window, not a stale echo.
        let w3 = m.to_json();
        let w3 = w3.get("latency_window_us").unwrap();
        assert_eq!(w3.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(w3.get("p50"), Some(&Value::Null));
    }

    #[test]
    fn reopt_counters_are_exported() {
        let m = ServeMetrics::new();
        m.stale_detections.fetch_add(3, Ordering::Relaxed);
        m.plan_swaps.fetch_add(2, Ordering::Relaxed);
        m.reopt_failed.fetch_add(1, Ordering::Relaxed);
        m.plan_version.store(3, Ordering::Relaxed);
        let j = m.to_json();
        let r = j.get("reopt").unwrap();
        assert_eq!(r.get("stale_detections").unwrap().as_u64(), Some(3));
        assert_eq!(r.get("plan_swaps").unwrap().as_u64(), Some(2));
        assert_eq!(r.get("reopt_failed").unwrap().as_u64(), Some(1));
        assert_eq!(r.get("plan_version").unwrap().as_u64(), Some(3));
    }
}
