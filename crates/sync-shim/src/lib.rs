//! A std-only stand-in for the `parking_lot` synchronization API.
//!
//! The workspace builds fully offline, so the real `parking_lot` crate is
//! replaced (via Cargo dependency renaming) with this thin wrapper over
//! `std::sync`. It exposes the subset of the API the workspace uses —
//! [`Mutex`], [`RwLock`] and [`Condvar`] with non-poisoning, guard-returning
//! `lock`/`read`/`write` — and keeps `parking_lot`'s semantics of treating a
//! poisoned lock as still usable (a panicked kernel benchmark must not wedge
//! every other optimizer thread).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

mod epoch;
pub use epoch::{Epoch, Versioned};

/// A mutual-exclusion primitive with `parking_lot`'s infallible `lock()`.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`]. Holds an `Option` internally so
/// [`Condvar::wait`] can temporarily take ownership of the std guard.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. Unlike `std`, a
    /// poisoned mutex is not an error: the data is returned anyway.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock with `parking_lot`'s infallible `read()`/`write()`.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII write guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(sync::TryLockError::Poisoned(p)) => {
                f.debug_tuple("RwLock").field(&&*p.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`MutexGuard`], `parking_lot`-style
/// (waits on `&mut guard` instead of consuming it).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(42);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 84);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiters() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        std::thread::scope(|s| {
            let p = Arc::clone(&pair);
            s.spawn(move || {
                let (m, cv) = &*p;
                *m.lock() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            assert!(*ready);
        });
    }

    #[test]
    fn poisoned_mutex_stays_usable() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
