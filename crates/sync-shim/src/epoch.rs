//! An `ArcSwap`-style versioned epoch pointer for hot-swappable plans.
//!
//! The serving re-optimization loop needs to replace a scheduler's plan
//! while worker threads keep reading it: readers must never block (they sit
//! on the request hot path), a reader must never observe a torn value, and
//! an in-flight batch must finish on the plan version it started with.
//!
//! [`Epoch<T>`] provides exactly that with std-only primitives. The current
//! value lives behind an `AtomicPtr` into a [`Versioned<T>`] allocation;
//! [`Epoch::load`] is one atomic load (wait-free), and the version number is
//! stored *inside* the pointed-to allocation, so value and version are read
//! together — there is no pointer/version pairing race. Writers go through
//! [`Epoch::store`], which keeps every value ever published alive in an
//! append-only history guarded by a mutex (writers serialize; readers never
//! touch it). Old versions are retired only when the `Epoch` itself drops,
//! so a reference obtained from `load` stays valid for as long as the
//! `Epoch` is borrowed — the memory cost is one allocation per swap, which
//! for plan swaps (a handful per process lifetime) is noise next to a
//! deferred-reclamation scheme.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

/// A value published through an [`Epoch`], tagged with the monotonically
/// increasing version it was published as (the first value is version 1).
#[derive(Debug)]
pub struct Versioned<T> {
    version: u64,
    value: T,
}

impl<T> Versioned<T> {
    /// The publication version (1 for the initial value, +1 per swap).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The published value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::Deref for Versioned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

/// A wait-free-readable, versioned swap cell. See the module docs for the
/// reclamation contract.
#[derive(Debug)]
pub struct Epoch<T> {
    current: AtomicPtr<Versioned<T>>,
    /// Every value ever published, in publication order. Append-only while
    /// the `Epoch` lives; this is what keeps `load`'s references valid.
    history: StdMutex<Vec<Arc<Versioned<T>>>>,
}

// Readers hand out `&Versioned<T>` across threads and writers move `T` in.
unsafe impl<T: Send + Sync> Sync for Epoch<T> {}
unsafe impl<T: Send> Send for Epoch<T> {}

impl<T> Epoch<T> {
    /// Publish `value` as version 1.
    pub fn new(value: T) -> Self {
        let first = Arc::new(Versioned { version: 1, value });
        let ptr = Arc::as_ptr(&first) as *mut Versioned<T>;
        Self {
            current: AtomicPtr::new(ptr),
            history: StdMutex::new(vec![first]),
        }
    }

    /// The current value and its version — one atomic load, never blocks.
    ///
    /// The reference stays valid for the borrow of `self`: published values
    /// are only dropped when the `Epoch` itself is, so a reader holding a
    /// plan while a writer swaps keeps reading its (old) version intact.
    pub fn load(&self) -> &Versioned<T> {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` came from `Arc::as_ptr` of an entry in `history`,
        // which is append-only and outlives every `&self` borrow.
        unsafe { &*ptr }
    }

    /// The current version without touching the value.
    pub fn version(&self) -> u64 {
        self.load().version()
    }

    /// Publish a new value, returning the version it was published as.
    /// Readers switch over atomically; anyone still holding the previous
    /// version keeps it until they re-`load`.
    pub fn store(&self, value: T) -> u64 {
        let mut history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        let version = history.last().expect("epoch is never empty").version + 1;
        let next = Arc::new(Versioned { version, value });
        let ptr = Arc::as_ptr(&next) as *mut Versioned<T>;
        // Append BEFORE the swap: the pointer must never be observable
        // without its backing allocation being owned by the history.
        history.push(next);
        self.current.store(ptr, Ordering::Release);
        version
    }

    /// How many values have been published (initial value included).
    pub fn published(&self) -> usize {
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sees_the_initial_version() {
        let e = Epoch::new(42u64);
        let v = e.load();
        assert_eq!(v.version(), 1);
        assert_eq!(*v.value(), 42);
        assert_eq!(e.version(), 1);
        assert_eq!(e.published(), 1);
    }

    #[test]
    fn store_bumps_the_version_monotonically() {
        let e = Epoch::new(0u64);
        assert_eq!(e.store(10), 2);
        assert_eq!(e.store(20), 3);
        let v = e.load();
        assert_eq!((v.version(), *v.value()), (3, 20));
        assert_eq!(e.published(), 3);
    }

    #[test]
    fn old_references_survive_a_swap() {
        let e = Epoch::new(vec![1, 2, 3]);
        let old = e.load();
        e.store(vec![9]);
        // The pre-swap reference still reads its own version, un-torn.
        assert_eq!(old.version(), 1);
        assert_eq!(old.value(), &[1, 2, 3]);
        assert_eq!(e.load().version(), 2);
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_pair() {
        // Every published value is (v, v): a reader that ever observes a
        // mismatched pair, or a version going backwards, caught a tear.
        let e = std::sync::Arc::new(Epoch::new((0u64, 0u64)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = std::sync::Arc::clone(&e);
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..20_000 {
                        let v = e.load();
                        let (a, b) = *v.value();
                        assert_eq!(a, b, "torn value");
                        assert_eq!(a + 1, v.version(), "value/version mismatch");
                        assert!(v.version() >= last, "version went backwards");
                        last = v.version();
                    }
                });
            }
            for i in 1..=500u64 {
                e.store((i, i));
            }
        });
        assert_eq!(e.version(), 501);
    }

    #[test]
    fn writers_serialize_but_all_versions_land() {
        let e = std::sync::Arc::new(Epoch::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let e = std::sync::Arc::clone(&e);
                s.spawn(move || {
                    for _ in 0..100 {
                        e.store(7);
                    }
                });
            }
        });
        assert_eq!(e.version(), 801, "every store got a distinct version");
        assert_eq!(e.published(), 801);
    }
}
