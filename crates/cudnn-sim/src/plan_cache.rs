//! Geometry-keyed execution-plan cache.
//!
//! The CPU engines can derive call-invariant state once per
//! (engine, op, geometry) — packed filter panels, FFT twiddle/bit-reversal
//! tables and filter spectra, Winograd-transformed filters — and reuse it
//! on every subsequent call ([`ucudnn_conv::EnginePlan`]). This cache owns
//! those plans for a [`crate::CudnnHandle`], so `convolution_forward` /
//! `convolution_backward_*` stop re-deriving per-call state across
//! micro-batches and training iterations.
//!
//! Keys normalize the batch dimension to 1: a layer split into micro-batches
//! of different sizes shares one plan (the cached state is batch-independent
//! by construction — exactly why the paper's WR scheme can share one
//! workspace across a layer's micro-batches).
//!
//! Capacity is byte-capped (`UCUDNN_EXEC_CACHE_BYTES`, binary suffixes,
//! default 64 MiB, `0` disables) with LRU eviction. Plans never change
//! numerical results, so caching — and eviction, and a disabled cache — are
//! all invisible to outputs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use ucudnn_conv::{ConvOp, EngineKind, EnginePlan};
use ucudnn_tensor::ConvGeometry;

/// Default byte capacity when `UCUDNN_EXEC_CACHE_BYTES` is unset.
pub const DEFAULT_EXEC_CACHE_BYTES: usize = 64 << 20;

/// Cache key: engine, operation, and the batch-1 geometry (micro-batches of
/// one layer collapse onto the same entry).
pub type PlanKey = (EngineKind, ConvOp, ConvGeometry);

/// Build the cache key for a call on geometry `g`.
pub fn plan_key(engine: EngineKind, op: ConvOp, g: &ConvGeometry) -> PlanKey {
    (engine, op, g.with_batch(1))
}

/// Counters exposed in `metrics_json` under `exec_cache`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCacheStats {
    /// Calls that found a warm plan.
    pub hits: u64,
    /// Calls that built a fresh plan (including cache-disabled calls).
    pub misses: u64,
    /// Plans dropped to respect the byte cap.
    pub evictions: u64,
    /// Bytes currently held by cached plans.
    pub bytes: u64,
}

struct Entry {
    plan: EnginePlan,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<PlanKey, Entry>,
    bytes: usize,
    tick: u64,
}

/// Byte-capped LRU cache of [`EnginePlan`]s. Thread-safe: entries are
/// checked out under a mutex and executed outside it, so concurrent calls on
/// one handle never serialize behind a running kernel (a second caller on
/// the same key simply takes a miss).
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &s)
            .finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` bytes of plan state (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Capacity from `UCUDNN_EXEC_CACHE_BYTES` (binary suffixes accepted),
    /// defaulting to [`DEFAULT_EXEC_CACHE_BYTES`]; malformed values fall
    /// back to the default rather than silently disabling the cache.
    pub fn from_env() -> Self {
        let cap = std::env::var("UCUDNN_EXEC_CACHE_BYTES")
            .ok()
            .and_then(|v| parse_bytes(&v))
            .unwrap_or(DEFAULT_EXEC_CACHE_BYTES);
        Self::new(cap)
    }

    /// Configured byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ExecCacheStats {
        ExecCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.inner.lock().unwrap().bytes as u64,
        }
    }

    /// Run `body` with the plan cached under `key`, creating an empty plan
    /// for `engine` on a miss, and return the plan to the cache afterwards
    /// (LRU-evicting to the byte cap).
    ///
    /// `alloc_ok(bytes)` is consulted before retaining a grown plan; a
    /// `false` (e.g. an injected allocation fault) degrades that call to
    /// uncached execution — the result is still produced, the plan is just
    /// not kept. Cached execution is bit-identical to uncached execution, so
    /// none of this is observable in outputs.
    pub fn with_plan<R>(
        &self,
        key: PlanKey,
        engine: EngineKind,
        alloc_ok: impl Fn(usize) -> bool,
        body: impl FnOnce(&mut EnginePlan) -> R,
    ) -> R {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return body(&mut EnginePlan::for_engine(engine));
        }
        // Check the plan out so the lock is not held while kernels run.
        let checked_out = {
            let mut inner = self.inner.lock().unwrap();
            inner.map.remove(&key).map(|e| {
                inner.bytes -= e.bytes;
                e.plan
            })
        };
        let mut plan = match checked_out {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                p
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                EnginePlan::for_engine(engine)
            }
        };
        let r = body(&mut plan);
        let bytes = plan.bytes();
        if bytes > self.capacity || !alloc_ok(bytes) {
            // Too big to ever fit, or the allocation was vetoed: degrade to
            // uncached execution by dropping the plan.
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return r;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        // A concurrent call may have reinserted this key; replace (the
        // newer plan is at least as fresh) without double-counting bytes.
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                plan,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.bytes > self.capacity {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            let e = inner.map.remove(&victim).unwrap();
            inner.bytes -= e.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.bytes = 0;
    }
}

/// Parse a byte size with optional binary suffix (`"64M"` → 64 MiB); local
/// duplicate of `ucudnn::env::parse_bytes` because the substrate crate sits
/// below the core crate in the dependency graph.
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult): (&str, usize) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits.trim().parse::<usize>().ok().map(|v| v * mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_tensor::{FilterShape, Shape4};

    fn key(n: usize, k: usize) -> PlanKey {
        let g =
            ConvGeometry::with_square(Shape4::new(n, 3, 8, 8), FilterShape::new(k, 3, 3, 3), 1, 1);
        plan_key(EngineKind::Gemm, ConvOp::Forward, &g)
    }

    /// Touch the plan so it holds some bytes, mimicking an engine call.
    fn warm(plan: &mut EnginePlan, k: usize) {
        if let EnginePlan::Gemm(p) = plan {
            let w = vec![1.0f32; k * 27];
            ucudnn_conv::im2col_gemm::forward_with_plan(
                &ConvGeometry::with_square(
                    Shape4::new(1, 3, 8, 8),
                    FilterShape::new(k, 3, 3, 3),
                    1,
                    1,
                ),
                &vec![0.0; 3 * 64],
                &w,
                &mut vec![0.0; k * 64],
                1.0,
                0.0,
                &mut vec![0.0; 27 * 64],
                p,
            );
        }
    }

    #[test]
    fn hit_after_first_call() {
        let cache = PlanCache::new(1 << 20);
        for round in 0..3 {
            cache.with_plan(key(4, 4), EngineKind::Gemm, |_| true, |p| warm(p, 4));
            let s = cache.stats();
            assert_eq!(s.misses, 1, "round {round}");
            assert_eq!(s.hits, round);
        }
        assert!(cache.stats().bytes > 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn micro_batches_share_an_entry() {
        assert_eq!(key(64, 4), key(1, 4));
        assert_ne!(key(1, 4), key(1, 8));
        let cache = PlanCache::new(1 << 20);
        for n in [64, 32, 16, 1] {
            cache.with_plan(key(n, 4), EngineKind::Gemm, |_| true, |p| warm(p, 4));
        }
        let s = cache.stats();
        assert_eq!((s.misses, s.hits), (1, 3));
    }

    #[test]
    fn lru_evicts_at_byte_cap() {
        let cache = PlanCache::new(1 << 20);
        // Measure one entry's footprint, then cap the cache to two of them.
        cache.with_plan(key(1, 4), EngineKind::Gemm, |_| true, |p| warm(p, 4));
        let one = cache.stats().bytes as usize;
        assert!(one > 0);
        let cache = PlanCache::new(2 * one + one / 2);
        for k in [4, 5, 6] {
            cache.with_plan(key(1, k), EngineKind::Gemm, |_| true, |p| warm(p, k));
        }
        let s = cache.stats();
        assert!(s.evictions >= 1, "third entry must evict the LRU one");
        assert!(s.bytes as usize <= 2 * one + one / 2);
        // k=4 was least recently used; k=6 must still be warm.
        cache.with_plan(key(1, 6), EngineKind::Gemm, |_| true, |p| warm(p, 6));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn alloc_veto_degrades_to_uncached() {
        let cache = PlanCache::new(1 << 20);
        let r = cache.with_plan(
            key(1, 4),
            EngineKind::Gemm,
            |_| false, // every retention allocation fails
            |p| {
                warm(p, 4);
                42
            },
        );
        assert_eq!(r, 42, "execution result must survive the degradation");
        assert_eq!(cache.len(), 0, "vetoed plan must not be retained");
        let s = cache.stats();
        assert_eq!((s.misses, s.bytes), (1, 0));
    }

    #[test]
    fn concurrent_checkout_keeps_accounting_consistent() {
        // Serving workers share one handle, so several threads check the
        // same key out simultaneously. Checkout semantics mean a caller
        // that finds the plan gone takes a miss instead of blocking behind
        // the running kernel; the counters must still balance, byte
        // accounting must not drift, and one key converges to one entry.
        let cache = std::sync::Arc::new(PlanCache::new(1 << 20));
        let threads = 4;
        let rounds = 25u64;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..rounds {
                        cache.with_plan(key(4, 4), EngineKind::Gemm, |_| true, |p| warm(p, 4));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, threads as u64 * rounds);
        assert!(s.hits > 0, "steady state must reuse the plan");
        assert_eq!(cache.len(), 1, "one key converges to one entry");
        // Bytes held must equal exactly one warm plan's footprint — the
        // replace-on-reinsert path must not double-count under races.
        let single = PlanCache::new(1 << 20);
        single.with_plan(key(4, 4), EngineKind::Gemm, |_| true, |p| warm(p, 4));
        assert_eq!(s.bytes, single.stats().bytes, "byte accounting drifted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        for _ in 0..3 {
            cache.with_plan(key(1, 4), EngineKind::Gemm, |_| true, |p| warm(p, 4));
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.bytes), (0, 3, 0));
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("64M"), Some(64 << 20));
        assert_eq!(parse_bytes(" 2 G"), Some(2 << 30));
        assert_eq!(parse_bytes("123"), Some(123));
        assert_eq!(parse_bytes("0"), Some(0));
        assert_eq!(parse_bytes("nope"), None);
    }
}
