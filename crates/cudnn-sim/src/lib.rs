//! A cuDNN-style convolution API with two interchangeable engines.
//!
//! This crate is the substrate the μ-cuDNN reproduction wraps, standing in
//! for NVIDIA cuDNN (DESIGN.md §2). It exposes the same call structure a
//! deep learning framework uses:
//!
//! 1. create a [`CudnnHandle`],
//! 2. describe tensors/filters/convolutions with descriptors,
//! 3. select an algorithm with [`CudnnHandle::get_algorithm`] or
//!    [`CudnnHandle::find_algorithms`],
//! 4. query [`CudnnHandle::get_workspace_size`] and allocate,
//! 5. launch `convolution_forward` / `convolution_backward_data` /
//!    `convolution_backward_filter` with `alpha`/`beta` output scaling.
//!
//! The [`handle::Engine::Simulated`] engine prices kernels with the
//! deterministic GPU performance model (`ucudnn-gpu-model`) and advances a
//! virtual clock; the [`handle::Engine::RealCpu`] engine computes real
//! numerics with `ucudnn-conv`. Timing experiments use the former,
//! correctness tests the latter.

pub mod descriptor;
pub mod error;
pub mod exec;
pub mod fault;
pub mod find;
pub mod handle;
pub mod map;
pub mod observe;
pub mod ops;
pub mod plan_cache;

pub use descriptor::{ConvolutionDescriptor, FilterDescriptor, TensorDescriptor};
pub use error::{CudnnError, Result};
pub use fault::{FaultPlan, FaultRecord, FaultSite, FaultTarget};
pub use find::{AlgoPerf, AlgoPreference, AlgoStatus};
pub use handle::{CudnnHandle, Engine};
pub use map::{cpu_engine_for, supported_on, workspace_bytes_on};
pub use observe::{set_call_observer, CallEvent, CallObserver, CallSite};
pub use ops::{
    ActivationDescriptor, ActivationMode, PoolingDescriptor, PoolingMode, BN_MIN_EPSILON,
};
pub use plan_cache::{ExecCacheStats, PlanCache, DEFAULT_EXEC_CACHE_BYTES};

// Re-export the vocabulary types callers need alongside the API.
pub use ucudnn_conv::ConvOp;
pub use ucudnn_gpu_model::{ConvAlgo, Perturbation};
