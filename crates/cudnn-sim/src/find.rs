//! Algorithm selection: `cudnnGetConvolution*Algorithm`,
//! `cudnnFindConvolution*Algorithm` and workspace-size queries.

use crate::descriptor::{ConvolutionDescriptor, FilterDescriptor, TensorDescriptor};
use crate::error::{CudnnError, Result};
use crate::handle::{CudnnHandle, Engine};
use crate::map::{cpu_engine_for, supported_on, workspace_bytes_on};
use ucudnn_conv::ConvOp;
use ucudnn_gpu_model::{enumerate, ConvAlgo};
use ucudnn_tensor::{ConvGeometry, Tensor};

/// One row of a `Find` benchmark result (`cudnnConvolution*AlgoPerf_t`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoPerf {
    /// The algorithm.
    pub algo: ConvAlgo,
    /// Benchmarked (or modeled) execution time in microseconds.
    pub time_us: f64,
    /// Workspace requirement in bytes.
    pub memory_bytes: usize,
}

/// Algorithm-selection preference (`cudnnConvolutionFwdPreference_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoPreference {
    /// `PREFER_FASTEST`: ignore workspace size.
    PreferFastest,
    /// `SPECIFY_WORKSPACE_LIMIT`: fastest algorithm fitting the limit.
    SpecifyWorkspaceLimit(usize),
    /// `NO_WORKSPACE`: only zero-workspace algorithms.
    NoWorkspace,
}

impl CudnnHandle {
    /// Benchmark every supported algorithm for `op` on the described
    /// geometry and return them sorted fastest-first
    /// (`cudnnFindConvolution*Algorithm`).
    ///
    /// On the simulated engine this queries the performance model; on the
    /// CPU engine it actually executes each algorithm on deterministic
    /// synthetic data and measures wall time — the honest equivalent of
    /// cuDNN's exhaustive auto-tuner.
    pub fn find_algorithms(
        &self,
        op: ConvOp,
        x: &TensorDescriptor,
        w: &FilterDescriptor,
        conv: &ConvolutionDescriptor,
    ) -> Result<Vec<AlgoPerf>> {
        let g = conv.geometry(x, w)?;
        match self.engine() {
            Engine::Simulated(d) => Ok(enumerate(d, op, &g)
                .into_iter()
                .map(|p| AlgoPerf {
                    algo: p.algo,
                    time_us: p.time_us,
                    memory_bytes: p.workspace_bytes,
                })
                .collect()),
            Engine::RealCpu => {
                let mut perfs: Vec<AlgoPerf> = ConvAlgo::ALL
                    .iter()
                    .filter(|&&a| supported_on(self.engine(), a, op, &g))
                    .map(|&a| {
                        let mem = workspace_bytes_on(self.engine(), a, op, &g).unwrap_or(0);
                        let time_us = bench_cpu(a, op, &g, mem);
                        AlgoPerf {
                            algo: a,
                            time_us,
                            memory_bytes: mem,
                        }
                    })
                    .collect();
                perfs.sort_by(|a, b| a.time_us.total_cmp(&b.time_us));
                Ok(perfs)
            }
        }
    }

    /// `cudnnGetConvolution*Algorithm`: pick one algorithm under a
    /// workspace preference.
    pub fn get_algorithm(
        &self,
        op: ConvOp,
        x: &TensorDescriptor,
        w: &FilterDescriptor,
        conv: &ConvolutionDescriptor,
        pref: AlgoPreference,
    ) -> Result<ConvAlgo> {
        let perfs = self.find_algorithms(op, x, w, conv)?;
        let limit = match pref {
            AlgoPreference::PreferFastest => usize::MAX,
            AlgoPreference::SpecifyWorkspaceLimit(b) => b,
            AlgoPreference::NoWorkspace => 0,
        };
        perfs
            .into_iter()
            .find(|p| p.memory_bytes <= limit)
            .map(|p| p.algo)
            .ok_or_else(|| CudnnError::NotSupported("no algorithm fits the workspace limit".into()))
    }

    /// `cudnnGetConvolution*WorkspaceSize`: bytes required by `algo`.
    pub fn get_workspace_size(
        &self,
        op: ConvOp,
        x: &TensorDescriptor,
        w: &FilterDescriptor,
        conv: &ConvolutionDescriptor,
        algo: ConvAlgo,
    ) -> Result<usize> {
        let g = conv.geometry(x, w)?;
        workspace_bytes_on(self.engine(), algo, op, &g)
            .ok_or_else(|| CudnnError::NotSupported(format!("{algo} cannot run {op} on {g}")))
    }
}

/// Execute one CPU kernel on synthetic data and return wall microseconds.
fn bench_cpu(algo: ConvAlgo, op: ConvOp, g: &ConvGeometry, ws_bytes: usize) -> f64 {
    let kind = cpu_engine_for(algo).expect("checked supported");
    let x = Tensor::random(g.input, 0x5eed);
    let w = Tensor::random(g.filter.as_shape4(), 0x5eed + 1);
    let dy = Tensor::random(g.output(), 0x5eed + 2);
    let (a, b, mut out) = match op {
        ConvOp::Forward => (x.as_slice(), w.as_slice(), Tensor::zeros(g.output())),
        ConvOp::BackwardData => (dy.as_slice(), w.as_slice(), Tensor::zeros(g.input)),
        ConvOp::BackwardFilter => (
            x.as_slice(),
            dy.as_slice(),
            Tensor::zeros(g.filter.as_shape4()),
        ),
    };
    let mut ws = vec![0.0f32; ws_bytes.div_ceil(4)];
    let start = std::time::Instant::now();
    ucudnn_conv::exec(kind, op, g, a, b, out.as_mut_slice(), 1.0, 0.0, &mut ws)
        .expect("benchmark kernel failed on a supported combination");
    start.elapsed().as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;

    fn descs(n: usize) -> (TensorDescriptor, FilterDescriptor, ConvolutionDescriptor) {
        (
            TensorDescriptor::new_4d(n, 8, 16, 16).unwrap(),
            FilterDescriptor::new_4d(8, 8, 3, 3).unwrap(),
            ConvolutionDescriptor::new_2d(1, 1, 1, 1).unwrap(),
        )
    }

    #[test]
    fn simulated_find_is_sorted_and_deterministic() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (x, w, c) = descs(32);
        let a = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        let b = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|p| p[0].time_us <= p[1].time_us));
        assert!(!a.is_empty());
    }

    #[test]
    fn real_cpu_find_runs_every_supported_algorithm() {
        let h = CudnnHandle::real_cpu();
        let (x, w, c) = descs(2);
        let perfs = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        // Direct, Gemm-family, FFT-family and Winograd-family all apply.
        assert!(perfs.len() >= 4);
        assert!(perfs.iter().all(|p| p.time_us > 0.0));
    }

    #[test]
    fn get_algorithm_respects_workspace_limits() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (x, w, c) = descs(32);
        let free = h
            .get_algorithm(ConvOp::Forward, &x, &w, &c, AlgoPreference::NoWorkspace)
            .unwrap();
        assert_eq!(
            h.get_workspace_size(ConvOp::Forward, &x, &w, &c, free)
                .unwrap(),
            0,
            "NO_WORKSPACE must return a zero-workspace algorithm"
        );
        let fastest = h
            .get_algorithm(ConvOp::Forward, &x, &w, &c, AlgoPreference::PreferFastest)
            .unwrap();
        let perfs = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        assert_eq!(fastest, perfs[0].algo);
    }

    #[test]
    fn specify_limit_falls_back_to_slower_algorithm() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (x, w, c) = descs(64);
        let perfs = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        let best = perfs[0];
        if best.memory_bytes > 0 {
            let algo = h
                .get_algorithm(
                    ConvOp::Forward,
                    &x,
                    &w,
                    &c,
                    AlgoPreference::SpecifyWorkspaceLimit(best.memory_bytes - 1),
                )
                .unwrap();
            assert_ne!(algo, best.algo);
        }
    }

    #[test]
    fn workspace_size_query_rejects_unsupported() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (x, w, c) = descs(4);
        assert!(matches!(
            h.get_workspace_size(ConvOp::Forward, &x, &w, &c, ConvAlgo::Direct),
            Err(CudnnError::NotSupported(_))
        ));
    }
}
