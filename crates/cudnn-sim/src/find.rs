//! Algorithm selection: `cudnnGetConvolution*Algorithm`,
//! `cudnnFindConvolution*Algorithm` and workspace-size queries.

use crate::descriptor::{ConvolutionDescriptor, FilterDescriptor, TensorDescriptor};
use crate::error::{CudnnError, Result};
use crate::handle::{CudnnHandle, Engine};
use crate::map::{cpu_engine_for, supported_on, workspace_bytes_on};
use ucudnn_conv::ConvOp;
use ucudnn_gpu_model::{enumerate, ConvAlgo};
use ucudnn_tensor::{ConvGeometry, Tensor};

/// Per-algorithm outcome of a `Find` benchmark, mirroring the `status`
/// field of `cudnnConvolution*AlgoPerf_t`: real auto-tuners report the
/// kernels that crashed or could not get memory alongside the ones they
/// measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoStatus {
    /// The algorithm ran and `time_us` is a valid measurement.
    Success,
    /// The kernel failed while benchmarking; `time_us` is meaningless.
    ExecutionFailed,
    /// The benchmark could not obtain the algorithm's workspace.
    AllocFailed,
}

/// One row of a `Find` benchmark result (`cudnnConvolution*AlgoPerf_t`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoPerf {
    /// The algorithm.
    pub algo: ConvAlgo,
    /// Benchmarked (or modeled) execution time in microseconds. Only
    /// meaningful when `status` is [`AlgoStatus::Success`].
    pub time_us: f64,
    /// Workspace requirement in bytes.
    pub memory_bytes: usize,
    /// Whether the benchmark succeeded for this algorithm.
    pub status: AlgoStatus,
}

/// Algorithm-selection preference (`cudnnConvolutionFwdPreference_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoPreference {
    /// `PREFER_FASTEST`: ignore workspace size.
    PreferFastest,
    /// `SPECIFY_WORKSPACE_LIMIT`: fastest algorithm fitting the limit.
    SpecifyWorkspaceLimit(usize),
    /// `NO_WORKSPACE`: only zero-workspace algorithms.
    NoWorkspace,
}

impl CudnnHandle {
    /// Benchmark every supported algorithm for `op` on the described
    /// geometry and return them sorted fastest-first
    /// (`cudnnFindConvolution*Algorithm`).
    ///
    /// On the simulated engine this queries the performance model; on the
    /// CPU engine it actually executes each algorithm on deterministic
    /// synthetic data and measures wall time — the honest equivalent of
    /// cuDNN's exhaustive auto-tuner.
    pub fn find_algorithms(
        &self,
        op: ConvOp,
        x: &TensorDescriptor,
        w: &FilterDescriptor,
        conv: &ConvolutionDescriptor,
    ) -> Result<Vec<AlgoPerf>> {
        let g = conv.geometry(x, w)?;
        let mut perfs: Vec<AlgoPerf> = match self.engine() {
            Engine::Simulated(d) => {
                // Benchmarks observe the device as it is *now*: a perturbed
                // latency curve re-measures slower, which is exactly what a
                // re-benchmark after drift must see.
                let factor = self.perturb_factor_now();
                enumerate(d, op, &g)
                    .into_iter()
                    .map(|p| AlgoPerf {
                        algo: p.algo,
                        time_us: p.time_us * factor,
                        memory_bytes: p.workspace_bytes,
                        status: self.bench_status(op, p.algo, g.input.n, p.workspace_bytes),
                    })
                    .collect()
            }
            Engine::RealCpu => ConvAlgo::ALL
                .iter()
                .filter(|&&a| supported_on(self.engine(), a, op, &g))
                .map(|&a| {
                    let mem = workspace_bytes_on(self.engine(), a, op, &g).unwrap_or(0);
                    match self.bench_status(op, a, g.input.n, mem) {
                        AlgoStatus::Success => match bench_cpu(a, op, &g, mem) {
                            Ok(time_us) => AlgoPerf {
                                algo: a,
                                time_us,
                                memory_bytes: mem,
                                status: AlgoStatus::Success,
                            },
                            // A kernel that dies mid-benchmark is a failed
                            // row, not a process abort — exactly how the
                            // real auto-tuner reports it.
                            Err(_) => AlgoPerf {
                                algo: a,
                                time_us: 0.0,
                                memory_bytes: mem,
                                status: AlgoStatus::ExecutionFailed,
                            },
                        },
                        status => AlgoPerf {
                            algo: a,
                            time_us: 0.0,
                            memory_bytes: mem,
                            status,
                        },
                    }
                })
                .collect(),
        };
        // Successful rows first, fastest-first; failed rows trail.
        perfs.sort_by(|a, b| {
            (a.status != AlgoStatus::Success)
                .cmp(&(b.status != AlgoStatus::Success))
                .then(a.time_us.total_cmp(&b.time_us))
        });
        crate::observe::emit_with(|| crate::observe::CallEvent {
            site: crate::observe::CallSite::Find,
            op,
            algo: None,
            micro_batch: g.input.n,
            geometry: format!("{g}"),
            rows: perfs.len(),
            modeled_us: 0.0,
        });
        Ok(perfs)
    }

    /// Fault-plan verdict for benchmarking one algorithm: injected
    /// allocation failures (workspace above the plan's threshold) win over
    /// injected execution failures; no plan means success.
    fn bench_status(&self, op: ConvOp, algo: ConvAlgo, n: usize, mem: usize) -> AlgoStatus {
        if self.fault_check_alloc(mem).is_err() {
            AlgoStatus::AllocFailed
        } else if self.fault_bench(op, algo, n) {
            AlgoStatus::ExecutionFailed
        } else {
            AlgoStatus::Success
        }
    }

    /// `cudnnGetConvolution*Algorithm`: pick one algorithm under a
    /// workspace preference.
    pub fn get_algorithm(
        &self,
        op: ConvOp,
        x: &TensorDescriptor,
        w: &FilterDescriptor,
        conv: &ConvolutionDescriptor,
        pref: AlgoPreference,
    ) -> Result<ConvAlgo> {
        let perfs = self.find_algorithms(op, x, w, conv)?;
        let limit = match pref {
            AlgoPreference::PreferFastest => usize::MAX,
            AlgoPreference::SpecifyWorkspaceLimit(b) => b,
            AlgoPreference::NoWorkspace => 0,
        };
        perfs
            .into_iter()
            .find(|p| p.status == AlgoStatus::Success && p.memory_bytes <= limit)
            .map(|p| p.algo)
            .ok_or_else(|| CudnnError::NotSupported("no algorithm fits the workspace limit".into()))
    }

    /// `cudnnGetConvolution*WorkspaceSize`: bytes required by `algo`.
    pub fn get_workspace_size(
        &self,
        op: ConvOp,
        x: &TensorDescriptor,
        w: &FilterDescriptor,
        conv: &ConvolutionDescriptor,
        algo: ConvAlgo,
    ) -> Result<usize> {
        let g = conv.geometry(x, w)?;
        let bytes = workspace_bytes_on(self.engine(), algo, op, &g)
            .ok_or_else(|| CudnnError::NotSupported(format!("{algo} cannot run {op} on {g}")))?;
        // The fault plan can fail workspace *queries* above its threshold,
        // modeling cudnnGetConvolution*WorkspaceSize returning ALLOC_FAILED.
        self.fault_check_alloc(bytes)?;
        Ok(bytes)
    }
}

/// Execute one CPU kernel on synthetic data and return wall microseconds,
/// or the kernel's own failure — benchmarking must never abort the process.
fn bench_cpu(algo: ConvAlgo, op: ConvOp, g: &ConvGeometry, ws_bytes: usize) -> Result<f64> {
    let kind = cpu_engine_for(algo)
        .ok_or_else(|| CudnnError::NotSupported(format!("{algo} has no CPU kernel")))?;
    let x = Tensor::random(g.input, 0x5eed);
    let w = Tensor::random(g.filter.as_shape4(), 0x5eed + 1);
    let dy = Tensor::random(g.output(), 0x5eed + 2);
    let (a, b, mut out) = match op {
        ConvOp::Forward => (x.as_slice(), w.as_slice(), Tensor::zeros(g.output())),
        ConvOp::BackwardData => (dy.as_slice(), w.as_slice(), Tensor::zeros(g.input)),
        ConvOp::BackwardFilter => (
            x.as_slice(),
            dy.as_slice(),
            Tensor::zeros(g.filter.as_shape4()),
        ),
    };
    let mut ws = vec![0.0f32; ws_bytes.div_ceil(4)];
    let start = std::time::Instant::now();
    ucudnn_conv::exec(kind, op, g, a, b, out.as_mut_slice(), 1.0, 0.0, &mut ws)
        .map_err(|e| CudnnError::ExecutionFailed(e.to_string()))?;
    Ok(start.elapsed().as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;

    fn descs(n: usize) -> (TensorDescriptor, FilterDescriptor, ConvolutionDescriptor) {
        (
            TensorDescriptor::new_4d(n, 8, 16, 16).unwrap(),
            FilterDescriptor::new_4d(8, 8, 3, 3).unwrap(),
            ConvolutionDescriptor::new_2d(1, 1, 1, 1).unwrap(),
        )
    }

    #[test]
    fn simulated_find_is_sorted_and_deterministic() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (x, w, c) = descs(32);
        let a = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        let b = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|p| p[0].time_us <= p[1].time_us));
        assert!(!a.is_empty());
    }

    #[test]
    fn real_cpu_find_runs_every_supported_algorithm() {
        let h = CudnnHandle::real_cpu();
        let (x, w, c) = descs(2);
        let perfs = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        // Direct, Gemm-family, FFT-family and Winograd-family all apply.
        assert!(perfs.len() >= 4);
        assert!(perfs.iter().all(|p| p.time_us > 0.0));
    }

    #[test]
    fn get_algorithm_respects_workspace_limits() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (x, w, c) = descs(32);
        let free = h
            .get_algorithm(ConvOp::Forward, &x, &w, &c, AlgoPreference::NoWorkspace)
            .unwrap();
        assert_eq!(
            h.get_workspace_size(ConvOp::Forward, &x, &w, &c, free)
                .unwrap(),
            0,
            "NO_WORKSPACE must return a zero-workspace algorithm"
        );
        let fastest = h
            .get_algorithm(ConvOp::Forward, &x, &w, &c, AlgoPreference::PreferFastest)
            .unwrap();
        let perfs = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        assert_eq!(fastest, perfs[0].algo);
    }

    #[test]
    fn specify_limit_falls_back_to_slower_algorithm() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (x, w, c) = descs(64);
        let perfs = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        let best = perfs[0];
        if best.memory_bytes > 0 {
            let algo = h
                .get_algorithm(
                    ConvOp::Forward,
                    &x,
                    &w,
                    &c,
                    AlgoPreference::SpecifyWorkspaceLimit(best.memory_bytes - 1),
                )
                .unwrap();
            assert_ne!(algo, best.algo);
        }
    }

    #[test]
    fn faulted_benchmarks_report_failed_rows_instead_of_dying() {
        use crate::fault::{FaultPlan, FaultTarget};
        let plan = FaultPlan {
            targets: vec![
                FaultTarget::algo(ConvAlgo::Fft),
                FaultTarget::algo(ConvAlgo::FftTiling),
            ],
            ..FaultPlan::default()
        };
        let (x, w, c) = descs(32);
        for h in [
            CudnnHandle::simulated(p100_sxm2()).with_faults(plan.clone()),
            CudnnHandle::real_cpu().with_faults(plan),
        ] {
            let perfs = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
            let (ok, failed): (Vec<&AlgoPerf>, Vec<&AlgoPerf>) =
                perfs.iter().partition(|p| p.status == AlgoStatus::Success);
            assert!(!ok.is_empty(), "non-targeted algorithms still succeed");
            assert_eq!(failed.len(), 2, "both FFT variants must be failed rows");
            assert!(failed
                .iter()
                .all(|p| matches!(p.algo, ConvAlgo::Fft | ConvAlgo::FftTiling)));
            // Failed rows sort after every successful row.
            let first_failed = perfs
                .iter()
                .position(|p| p.status != AlgoStatus::Success)
                .unwrap();
            assert_eq!(first_failed, ok.len());
            // get_algorithm never selects a failed row.
            let fastest = h
                .get_algorithm(ConvOp::Forward, &x, &w, &c, AlgoPreference::PreferFastest)
                .unwrap();
            assert!(!matches!(fastest, ConvAlgo::Fft | ConvAlgo::FftTiling));
            assert!(h.faults_injected() > 0);
            assert!(!h.fault_log().is_empty());
        }
    }

    #[test]
    fn alloc_threshold_faults_workspace_queries() {
        use crate::fault::FaultPlan;
        let h = CudnnHandle::simulated(p100_sxm2()).with_faults(FaultPlan {
            alloc_fail_above: Some(0),
            ..FaultPlan::default()
        });
        let (x, w, c) = descs(32);
        // Zero-workspace queries still succeed; any positive request fails.
        assert_eq!(
            h.get_workspace_size(ConvOp::Forward, &x, &w, &c, ConvAlgo::ImplicitGemm)
                .unwrap(),
            0
        );
        assert!(matches!(
            h.get_workspace_size(ConvOp::Forward, &x, &w, &c, ConvAlgo::WinogradNonfused),
            Err(CudnnError::AllocFailed { .. })
        ));
        // find_algorithms keeps only what fits: everything above the
        // threshold is an AllocFailed row.
        let perfs = h.find_algorithms(ConvOp::Forward, &x, &w, &c).unwrap();
        assert!(perfs
            .iter()
            .all(|p| (p.status == AlgoStatus::Success) == (p.memory_bytes == 0)));
    }

    #[test]
    fn workspace_size_query_rejects_unsupported() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (x, w, c) = descs(4);
        assert!(matches!(
            h.get_workspace_size(ConvOp::Forward, &x, &w, &c, ConvAlgo::Direct),
            Err(CudnnError::NotSupported(_))
        ));
    }
}
