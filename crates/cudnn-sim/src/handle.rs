//! The library handle and its execution engines.

use crate::error::{CudnnError, Result};
use crate::fault::{FaultInjector, FaultPlan, FaultRecord, FaultSite};
use crate::plan_cache::{ExecCacheStats, PlanCache};
use std::sync::atomic::{AtomicU64, Ordering};
use ucudnn_conv::ConvOp;
use ucudnn_gpu_model::{ConvAlgo, DeviceSpec, Perturbation};

/// Which substrate executes kernels issued through a [`CudnnHandle`].
#[derive(Debug, Clone)]
pub enum Engine {
    /// Deterministic GPU performance model: kernels advance a virtual clock
    /// by their modeled time and never touch data buffers. This is the
    /// engine behind every timing experiment (DESIGN.md §2).
    Simulated(DeviceSpec),
    /// Real CPU execution: kernels compute actual results with the
    /// `ucudnn-conv` engines and advance the clock by measured wall time.
    /// This is the engine behind every numerical-semantics test.
    RealCpu,
}

/// The cuDNN-style library handle (`cudnnHandle_t`).
///
/// A handle owns an execution engine and a monotonically accumulating clock
/// measuring total kernel time issued through it (microseconds — virtual for
/// the simulated engine, wall time for the CPU engine).
///
/// The clock is lock-free (atomics), so a handle can be shared by reference
/// across benchmark threads: concurrent `Find` calls from the parallel
/// optimizer never serialize behind a clock mutex. The time accumulator
/// stores `f64` bits in an `AtomicU64` with a compare-exchange add;
/// accumulation order across threads is unspecified, but timing consumers
/// always bracket a single-threaded measured region with
/// [`CudnnHandle::reset_clock`].
#[derive(Debug)]
pub struct CudnnHandle {
    engine: Engine,
    clock_us_bits: AtomicU64,
    kernels_launched: AtomicU64,
    faults: Option<FaultInjector>,
    perturb: Option<Perturbation>,
    plan_cache: PlanCache,
}

impl CudnnHandle {
    /// Create a handle backed by the GPU performance model for `device`.
    pub fn simulated(device: DeviceSpec) -> Self {
        Self {
            engine: Engine::Simulated(device),
            clock_us_bits: AtomicU64::new(0f64.to_bits()),
            kernels_launched: AtomicU64::new(0),
            faults: None,
            perturb: None,
            plan_cache: PlanCache::from_env(),
        }
    }

    /// Create a handle backed by real CPU execution.
    pub fn real_cpu() -> Self {
        Self {
            engine: Engine::RealCpu,
            clock_us_bits: AtomicU64::new(0f64.to_bits()),
            kernels_launched: AtomicU64::new(0),
            faults: None,
            perturb: None,
            plan_cache: PlanCache::from_env(),
        }
    }

    /// Replace the execution-plan cache with one of `capacity` bytes
    /// (builder-style; 0 disables caching). The default capacity comes from
    /// `UCUDNN_EXEC_CACHE_BYTES`.
    pub fn with_exec_cache_bytes(mut self, capacity: usize) -> Self {
        self.plan_cache = PlanCache::new(capacity);
        self
    }

    /// The execution-plan cache backing the CPU engine.
    pub(crate) fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Counter snapshot of the execution-plan cache.
    pub fn exec_cache_stats(&self) -> ExecCacheStats {
        self.plan_cache.stats()
    }

    /// Attach a deterministic [`FaultPlan`] (builder-style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultInjector::new(plan));
        self
    }

    /// Attach the fault plan described by `UCUDNN_FAULT_*` environment
    /// variables, if any are set ([`FaultPlan::from_env`]).
    pub fn with_env_faults(self) -> Self {
        match FaultPlan::from_env() {
            Some(plan) => self.with_faults(plan),
            None => self,
        }
    }

    /// Attach a deterministic latency [`Perturbation`] (builder-style):
    /// every simulated kernel time is multiplied by the perturbation's
    /// factor once the virtual clock passes its timestamp. The CPU engine
    /// measures real wall time and is unaffected.
    pub fn with_perturbation(mut self, p: Perturbation) -> Self {
        self.perturb = Some(p);
        self
    }

    /// Attach the perturbation described by `UCUDNN_PERTURB_*` environment
    /// variables, if any are set ([`Perturbation::from_env`]).
    pub fn with_env_perturbation(self) -> Self {
        match Perturbation::from_env() {
            Some(p) => self.with_perturbation(p),
            None => self,
        }
    }

    /// The attached perturbation, if any.
    pub fn perturbation(&self) -> Option<&Perturbation> {
        self.perturb.as_ref()
    }

    /// The latency multiplier in effect at the current virtual-clock time
    /// (1.0 without a perturbation).
    pub fn perturb_factor_now(&self) -> f64 {
        self.perturb
            .as_ref()
            .map_or(1.0, |p| p.factor_at(self.elapsed_us()))
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Total number of faults injected through this handle.
    pub fn faults_injected(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.injected())
    }

    /// The recorded fault log (capped; the counter is not).
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        self.faults.as_ref().map_or_else(Vec::new, |f| f.log())
    }

    /// How many retries a caller should budget for transient faults:
    /// the plan's `transient_tries`, or 0 without a plan.
    pub fn fault_retry_budget(&self) -> u32 {
        self.faults.as_ref().map_or(0, |f| f.plan().transient_tries)
    }

    /// Fail if the fault plan rejects an allocation of `bytes`
    /// (`CUDNN_STATUS_ALLOC_FAILED`). The wrapper calls this before every
    /// workspace arena allocation; a plan-less handle always succeeds.
    pub fn fault_check_alloc(&self, bytes: usize) -> Result<()> {
        match &self.faults {
            Some(f) if f.should_fail_alloc(bytes) => {
                Err(CudnnError::AllocFailed { requested: bytes })
            }
            _ => Ok(()),
        }
    }

    /// Whether benchmarking `algo` for (`op`, micro-batch) should fail now.
    pub(crate) fn fault_bench(&self, op: ConvOp, algo: ConvAlgo, micro_batch: usize) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.should_fail(FaultSite::Benchmark, op, algo, micro_batch))
    }

    /// Fail if the fault plan injects an execution failure for this call.
    pub(crate) fn fault_exec(&self, op: ConvOp, algo: ConvAlgo, micro_batch: usize) -> Result<()> {
        match &self.faults {
            Some(f) if f.should_fail(FaultSite::Execution, op, algo, micro_batch) => Err(
                CudnnError::ExecutionFailed(format!("injected fault: {op} {algo} n={micro_batch}")),
            ),
            _ => Ok(()),
        }
    }

    /// The execution engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The modeled device, when simulated.
    pub fn device(&self) -> Option<&DeviceSpec> {
        match &self.engine {
            Engine::Simulated(d) => Some(d),
            Engine::RealCpu => None,
        }
    }

    /// Total kernel time issued through this handle, in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        f64::from_bits(self.clock_us_bits.load(Ordering::Relaxed))
    }

    /// Number of kernels issued through this handle.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched.load(Ordering::Relaxed)
    }

    /// Reset the clock and kernel counter (start of a timed region).
    pub fn reset_clock(&self) {
        self.clock_us_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.kernels_launched.store(0, Ordering::Relaxed);
    }

    /// Record one kernel execution of `us` microseconds.
    pub(crate) fn advance(&self, us: f64) {
        let mut cur = self.clock_us_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + us).to_bits();
            match self.clock_us_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.kernels_launched.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;

    #[test]
    fn clock_accumulates_and_resets() {
        let h = CudnnHandle::simulated(p100_sxm2());
        assert_eq!(h.elapsed_us(), 0.0);
        h.advance(10.5);
        h.advance(4.5);
        assert_eq!(h.elapsed_us(), 15.0);
        assert_eq!(h.kernels_launched(), 2);
        h.reset_clock();
        assert_eq!(h.elapsed_us(), 0.0);
        assert_eq!(h.kernels_launched(), 0);
    }

    #[test]
    fn concurrent_advances_lose_no_kernels() {
        let h = CudnnHandle::simulated(p100_sxm2());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        h.advance(1.0);
                    }
                });
            }
        });
        assert_eq!(h.kernels_launched(), 4000);
        // 1.0 sums exactly in f64 at this magnitude, so the CAS loop must
        // account for every advance.
        assert_eq!(h.elapsed_us(), 4000.0);
    }

    #[test]
    fn perturbation_steps_the_latency_multiplier_with_the_clock() {
        let h =
            CudnnHandle::simulated(p100_sxm2()).with_perturbation(Perturbation::new(100.0, 2.0));
        assert_eq!(h.perturb_factor_now(), 1.0);
        h.advance(99.0);
        assert_eq!(h.perturb_factor_now(), 1.0);
        h.advance(1.0);
        assert_eq!(h.perturb_factor_now(), 2.0);
        // Unperturbed handles always answer 1.0.
        assert_eq!(
            CudnnHandle::simulated(p100_sxm2()).perturb_factor_now(),
            1.0
        );
    }

    #[test]
    fn device_accessor() {
        let h = CudnnHandle::simulated(p100_sxm2());
        assert_eq!(h.device().unwrap().name, "P100-SXM2");
        assert!(CudnnHandle::real_cpu().device().is_none());
    }
}
