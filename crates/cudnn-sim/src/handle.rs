//! The library handle and its execution engines.

use std::sync::atomic::{AtomicU64, Ordering};
use ucudnn_gpu_model::DeviceSpec;

/// Which substrate executes kernels issued through a [`CudnnHandle`].
#[derive(Debug, Clone)]
pub enum Engine {
    /// Deterministic GPU performance model: kernels advance a virtual clock
    /// by their modeled time and never touch data buffers. This is the
    /// engine behind every timing experiment (DESIGN.md §2).
    Simulated(DeviceSpec),
    /// Real CPU execution: kernels compute actual results with the
    /// `ucudnn-conv` engines and advance the clock by measured wall time.
    /// This is the engine behind every numerical-semantics test.
    RealCpu,
}

/// The cuDNN-style library handle (`cudnnHandle_t`).
///
/// A handle owns an execution engine and a monotonically accumulating clock
/// measuring total kernel time issued through it (microseconds — virtual for
/// the simulated engine, wall time for the CPU engine).
///
/// The clock is lock-free (atomics), so a handle can be shared by reference
/// across benchmark threads: concurrent `Find` calls from the parallel
/// optimizer never serialize behind a clock mutex. The time accumulator
/// stores `f64` bits in an `AtomicU64` with a compare-exchange add;
/// accumulation order across threads is unspecified, but timing consumers
/// always bracket a single-threaded measured region with
/// [`CudnnHandle::reset_clock`].
#[derive(Debug)]
pub struct CudnnHandle {
    engine: Engine,
    clock_us_bits: AtomicU64,
    kernels_launched: AtomicU64,
}

impl CudnnHandle {
    /// Create a handle backed by the GPU performance model for `device`.
    pub fn simulated(device: DeviceSpec) -> Self {
        Self {
            engine: Engine::Simulated(device),
            clock_us_bits: AtomicU64::new(0f64.to_bits()),
            kernels_launched: AtomicU64::new(0),
        }
    }

    /// Create a handle backed by real CPU execution.
    pub fn real_cpu() -> Self {
        Self {
            engine: Engine::RealCpu,
            clock_us_bits: AtomicU64::new(0f64.to_bits()),
            kernels_launched: AtomicU64::new(0),
        }
    }

    /// The execution engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The modeled device, when simulated.
    pub fn device(&self) -> Option<&DeviceSpec> {
        match &self.engine {
            Engine::Simulated(d) => Some(d),
            Engine::RealCpu => None,
        }
    }

    /// Total kernel time issued through this handle, in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        f64::from_bits(self.clock_us_bits.load(Ordering::Relaxed))
    }

    /// Number of kernels issued through this handle.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched.load(Ordering::Relaxed)
    }

    /// Reset the clock and kernel counter (start of a timed region).
    pub fn reset_clock(&self) {
        self.clock_us_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.kernels_launched.store(0, Ordering::Relaxed);
    }

    /// Record one kernel execution of `us` microseconds.
    pub(crate) fn advance(&self, us: f64) {
        let mut cur = self.clock_us_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + us).to_bits();
            match self.clock_us_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.kernels_launched.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;

    #[test]
    fn clock_accumulates_and_resets() {
        let h = CudnnHandle::simulated(p100_sxm2());
        assert_eq!(h.elapsed_us(), 0.0);
        h.advance(10.5);
        h.advance(4.5);
        assert_eq!(h.elapsed_us(), 15.0);
        assert_eq!(h.kernels_launched(), 2);
        h.reset_clock();
        assert_eq!(h.elapsed_us(), 0.0);
        assert_eq!(h.kernels_launched(), 0);
    }

    #[test]
    fn concurrent_advances_lose_no_kernels() {
        let h = CudnnHandle::simulated(p100_sxm2());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        h.advance(1.0);
                    }
                });
            }
        });
        assert_eq!(h.kernels_launched(), 4000);
        // 1.0 sums exactly in f64 at this magnitude, so the CAS loop must
        // account for every advance.
        assert_eq!(h.elapsed_us(), 4000.0);
    }

    #[test]
    fn device_accessor() {
        let h = CudnnHandle::simulated(p100_sxm2());
        assert_eq!(h.device().unwrap().name, "P100-SXM2");
        assert!(CudnnHandle::real_cpu().device().is_none());
    }
}
