//! The library handle and its execution engines.

use parking_lot::Mutex;
use ucudnn_gpu_model::DeviceSpec;

/// Which substrate executes kernels issued through a [`CudnnHandle`].
#[derive(Debug, Clone)]
pub enum Engine {
    /// Deterministic GPU performance model: kernels advance a virtual clock
    /// by their modeled time and never touch data buffers. This is the
    /// engine behind every timing experiment (DESIGN.md §2).
    Simulated(DeviceSpec),
    /// Real CPU execution: kernels compute actual results with the
    /// `ucudnn-conv` engines and advance the clock by measured wall time.
    /// This is the engine behind every numerical-semantics test.
    RealCpu,
}

/// The cuDNN-style library handle (`cudnnHandle_t`).
///
/// A handle owns an execution engine and a monotonically accumulating clock
/// measuring total kernel time issued through it (microseconds — virtual for
/// the simulated engine, wall time for the CPU engine).
#[derive(Debug)]
pub struct CudnnHandle {
    engine: Engine,
    clock_us: Mutex<f64>,
    kernels_launched: Mutex<u64>,
}

impl CudnnHandle {
    /// Create a handle backed by the GPU performance model for `device`.
    pub fn simulated(device: DeviceSpec) -> Self {
        Self { engine: Engine::Simulated(device), clock_us: Mutex::new(0.0), kernels_launched: Mutex::new(0) }
    }

    /// Create a handle backed by real CPU execution.
    pub fn real_cpu() -> Self {
        Self { engine: Engine::RealCpu, clock_us: Mutex::new(0.0), kernels_launched: Mutex::new(0) }
    }

    /// The execution engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The modeled device, when simulated.
    pub fn device(&self) -> Option<&DeviceSpec> {
        match &self.engine {
            Engine::Simulated(d) => Some(d),
            Engine::RealCpu => None,
        }
    }

    /// Total kernel time issued through this handle, in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        *self.clock_us.lock()
    }

    /// Number of kernels issued through this handle.
    pub fn kernels_launched(&self) -> u64 {
        *self.kernels_launched.lock()
    }

    /// Reset the clock and kernel counter (start of a timed region).
    pub fn reset_clock(&self) {
        *self.clock_us.lock() = 0.0;
        *self.kernels_launched.lock() = 0;
    }

    /// Record one kernel execution of `us` microseconds.
    pub(crate) fn advance(&self, us: f64) {
        *self.clock_us.lock() += us;
        *self.kernels_launched.lock() += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;

    #[test]
    fn clock_accumulates_and_resets() {
        let h = CudnnHandle::simulated(p100_sxm2());
        assert_eq!(h.elapsed_us(), 0.0);
        h.advance(10.5);
        h.advance(4.5);
        assert_eq!(h.elapsed_us(), 15.0);
        assert_eq!(h.kernels_launched(), 2);
        h.reset_clock();
        assert_eq!(h.elapsed_us(), 0.0);
        assert_eq!(h.kernels_launched(), 0);
    }

    #[test]
    fn device_accessor() {
        let h = CudnnHandle::simulated(p100_sxm2());
        assert_eq!(h.device().unwrap().name, "P100-SXM2");
        assert!(CudnnHandle::real_cpu().device().is_none());
    }
}
