//! Deterministic fault injection for the substrate.
//!
//! A [`FaultPlan`] attached to a [`crate::CudnnHandle`] injects failures at
//! three sites:
//!
//! * **Benchmark** — `find_algorithms` marks matching algorithms as failed
//!   ([`crate::find::AlgoStatus`]) instead of returning a measurement, the
//!   way a real auto-tuner reports kernels that crashed or ran out of
//!   memory mid-search.
//! * **Execution** — `convolution_*` calls return
//!   `CUDNN_STATUS_EXECUTION_FAILED` for matching (op, algo, micro-batch)
//!   triples.
//! * **Allocation** — workspace queries and wrapper-side arena allocations
//!   above a byte threshold fail with `CUDNN_STATUS_ALLOC_FAILED`.
//!
//! Every decision is a pure function of the plan and the call's own key
//! (site, op, algo, micro-batch, bytes) — never of wall clock, call order
//! across keys, or thread schedule. That is what keeps the optimizer's
//! plan-determinism guarantee intact under injected faults: N worker
//! threads see exactly the same failures as one.
//!
//! Transient faults are the one stateful exception, and they are keyed so
//! the state stays schedule-independent: each distinct fault key carries
//! its own attempt counter, and the first `transient_tries` attempts fail
//! before the key succeeds forever after. The benchmark cache single-flights
//! each key and execution replays are serial, so the counter for a given
//! key is only ever advanced by one logical caller.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use ucudnn_conv::ConvOp;
use ucudnn_gpu_model::ConvAlgo;

/// Where a fault was (or may be) injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Algorithm benchmarking (`find_algorithms`).
    Benchmark,
    /// Kernel execution (`convolution_*`).
    Execution,
    /// Workspace query / allocation.
    Allocation,
}

impl core::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            FaultSite::Benchmark => "bench",
            FaultSite::Execution => "exec",
            FaultSite::Allocation => "alloc",
        })
    }
}

/// One (op, algo, micro-batch) pattern that triggers injected failures.
/// `None` fields are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTarget {
    /// Restrict to one site (`None`: both benchmark and execution).
    pub site: Option<FaultSite>,
    /// Convolution operation, or any.
    pub op: Option<ConvOp>,
    /// Algorithm, or any.
    pub algo: Option<ConvAlgo>,
    /// Micro-batch size, or any.
    pub micro_batch: Option<usize>,
}

impl FaultTarget {
    /// A target matching every (op, algo, micro-batch) at both sites.
    pub fn any() -> Self {
        Self {
            site: None,
            op: None,
            algo: None,
            micro_batch: None,
        }
    }

    /// A target matching one algorithm everywhere.
    pub fn algo(algo: ConvAlgo) -> Self {
        Self {
            algo: Some(algo),
            ..Self::any()
        }
    }

    fn matches(&self, site: FaultSite, op: ConvOp, algo: ConvAlgo, micro_batch: usize) -> bool {
        self.site
            .map_or(site != FaultSite::Allocation, |s| s == site)
            && self.op.is_none_or(|o| o == op)
            && self.algo.is_none_or(|a| a == algo)
            && self.micro_batch.is_none_or(|m| m == micro_batch)
    }
}

/// A declarative, deterministic fault schedule. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the rate-based injector ([`FaultPlan::exec_rate`]).
    pub seed: u64,
    /// Workspace queries/allocations strictly above this many bytes fail
    /// with `CUDNN_STATUS_ALLOC_FAILED`.
    pub alloc_fail_above: Option<usize>,
    /// Explicit (op, algo, micro-batch) patterns that fail.
    pub targets: Vec<FaultTarget>,
    /// Probability in `[0, 1]` that any given (site, op, algo, micro-batch)
    /// key fails, decided by hashing the key with [`FaultPlan::seed`].
    pub exec_rate: f64,
    /// If nonzero, matched faults are transient: each distinct fault key
    /// fails this many times, then succeeds on every later attempt.
    pub transient_tries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            alloc_fail_above: None,
            targets: Vec::new(),
            exec_rate: 0.0,
            transient_tries: 0,
        }
    }
}

impl FaultPlan {
    /// Build a plan from `UCUDNN_FAULT_*` environment variables, or `None`
    /// when no fault variable is set:
    ///
    /// * `UCUDNN_FAULT_SEED` — seed for rate-based injection (default 0).
    /// * `UCUDNN_FAULT_ALLOC_ABOVE` — byte threshold (`K`/`M`/`G` suffixes).
    /// * `UCUDNN_FAULT_EXEC` — comma-separated `[site@]op:algo:batch`
    ///   patterns, `*` wildcards: e.g. `fwd:FFT:*`, `*:WINOGRAD:64`,
    ///   `bench@*:FFT_TILING:*`. `site` is `bench` or `exec`; `op` is
    ///   `fwd`, `bwd_data`, `bwd_filter` or `*`; `algo` is a short name
    ///   (`FFT`) or numeric id.
    /// * `UCUDNN_FAULT_EXEC_RATE` — probability in `[0, 1]`.
    /// * `UCUDNN_FAULT_TRANSIENT` — number of failures before a transient
    ///   fault key starts succeeding (0 = faults are permanent).
    pub fn from_env() -> Option<Self> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`FaultPlan::from_env`] with an injectable variable source (tests).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Option<Self> {
        let seed = lookup("UCUDNN_FAULT_SEED");
        let alloc = lookup("UCUDNN_FAULT_ALLOC_ABOVE");
        let exec = lookup("UCUDNN_FAULT_EXEC");
        let rate = lookup("UCUDNN_FAULT_EXEC_RATE");
        let transient = lookup("UCUDNN_FAULT_TRANSIENT");
        if seed.is_none()
            && alloc.is_none()
            && exec.is_none()
            && rate.is_none()
            && transient.is_none()
        {
            return None;
        }
        Some(Self {
            seed: seed.and_then(|s| s.trim().parse().ok()).unwrap_or(0),
            alloc_fail_above: alloc.as_deref().and_then(parse_bytes),
            targets: exec
                .as_deref()
                .map(|s| {
                    s.split(',')
                        .filter(|p| !p.trim().is_empty())
                        .filter_map(parse_target)
                        .collect()
                })
                .unwrap_or_default(),
            exec_rate: rate
                .and_then(|s| s.trim().parse::<f64>().ok())
                .map(|r| r.clamp(0.0, 1.0))
                .unwrap_or(0.0),
            transient_tries: transient.and_then(|s| s.trim().parse().ok()).unwrap_or(0),
        })
    }

    /// Whether any injection is configured at all.
    pub fn is_active(&self) -> bool {
        self.alloc_fail_above.is_some() || !self.targets.is_empty() || self.exec_rate > 0.0
    }
}

/// Parse `123`, `64K`, `8M`, `1G` (case-insensitive) into bytes.
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1usize << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.trim().parse::<usize>().ok().map(|n| n * mult)
}

/// Parse one `[site@]op:algo:batch` pattern.
fn parse_target(s: &str) -> Option<FaultTarget> {
    let s = s.trim();
    let (site, rest) = match s.split_once('@') {
        Some((site, rest)) => {
            let site = match site.trim() {
                "bench" => FaultSite::Benchmark,
                "exec" => FaultSite::Execution,
                _ => return None,
            };
            (Some(site), rest)
        }
        None => (None, s),
    };
    let mut parts = rest.split(':');
    let (op, algo, batch) = (parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() {
        return None;
    }
    let op = match op.trim() {
        "*" => None,
        "fwd" => Some(ConvOp::Forward),
        "bwd_data" => Some(ConvOp::BackwardData),
        "bwd_filter" => Some(ConvOp::BackwardFilter),
        _ => return None,
    };
    let algo = match algo.trim() {
        "*" => None,
        name => Some(
            ConvAlgo::ALL
                .into_iter()
                .find(|a| a.short_name() == name || a.id().to_string() == name)?,
        ),
    };
    let micro_batch = match batch.trim() {
        "*" => None,
        n => Some(n.parse().ok()?),
    };
    Some(FaultTarget {
        site,
        op,
        algo,
        micro_batch,
    })
}

/// One injected fault, as recorded in the handle's fault log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Where the fault fired.
    pub site: FaultSite,
    /// Human-readable description of the faulted call.
    pub detail: String,
}

/// Cap on retained [`FaultRecord`]s; the injected *counter* is unbounded.
const FAULT_LOG_CAP: usize = 1024;

/// A plan plus the mutable bookkeeping that makes transients and the log
/// work. Owned by the handle.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    /// Attempt counts per fault key (site, op, algo, micro-batch).
    attempts: Mutex<HashMap<(FaultSite, u8, u8, usize), u32>>,
    log: Mutex<Vec<FaultRecord>>,
    injected: AtomicU64,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            attempts: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
            injected: AtomicU64::new(0),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    pub(crate) fn log(&self) -> Vec<FaultRecord> {
        self.log.lock().unwrap().clone()
    }

    fn record(&self, site: FaultSite, detail: String) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        let mut log = self.log.lock().unwrap();
        if log.len() < FAULT_LOG_CAP {
            log.push(FaultRecord { site, detail });
        }
    }

    /// Whether the key matches the plan (ignoring transient state).
    fn matched(&self, site: FaultSite, op: ConvOp, algo: ConvAlgo, micro_batch: usize) -> bool {
        if self
            .plan
            .targets
            .iter()
            .any(|t| t.matches(site, op, algo, micro_batch))
        {
            return true;
        }
        if self.plan.exec_rate > 0.0 && site != FaultSite::Allocation {
            // Hash the key, not the call: both sites see the same verdict
            // for a triple, and repeated calls agree.
            let h = mix(self.plan.seed ^ key_bits(op, algo, micro_batch));
            return ((h % 10_000) as f64) < self.plan.exec_rate * 10_000.0;
        }
        false
    }

    /// Decide (and record) whether this attempt of `key` fails. Advances
    /// the transient attempt counter for matched keys.
    pub(crate) fn should_fail(
        &self,
        site: FaultSite,
        op: ConvOp,
        algo: ConvAlgo,
        micro_batch: usize,
    ) -> bool {
        if !self.matched(site, op, algo, micro_batch) {
            return false;
        }
        if self.plan.transient_tries > 0 {
            let key = (site, op_id(op), algo.id(), micro_batch);
            let mut attempts = self.attempts.lock().unwrap();
            let n = attempts.entry(key).or_insert(0);
            *n += 1;
            if *n > self.plan.transient_tries {
                return false;
            }
        }
        self.record(
            site,
            format!("{site}: {op} {algo} micro-batch {micro_batch}"),
        );
        true
    }

    /// Decide (and record) whether an allocation of `bytes` fails.
    pub(crate) fn should_fail_alloc(&self, bytes: usize) -> bool {
        match self.plan.alloc_fail_above {
            Some(limit) if bytes > limit => {
                self.record(
                    FaultSite::Allocation,
                    format!("alloc: {bytes} bytes > threshold {limit}"),
                );
                true
            }
            _ => false,
        }
    }
}

fn op_id(op: ConvOp) -> u8 {
    match op {
        ConvOp::Forward => 0,
        ConvOp::BackwardData => 1,
        ConvOp::BackwardFilter => 2,
    }
}

fn key_bits(op: ConvOp, algo: ConvAlgo, micro_batch: usize) -> u64 {
    (op_id(op) as u64) << 56 | (algo.id() as u64) << 48 | micro_batch as u64
}

/// SplitMix64 finalizer: cheap, well-distributed, dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lookup_returns_none_without_fault_vars() {
        assert_eq!(FaultPlan::from_lookup(|_| None), None);
    }

    #[test]
    fn from_lookup_parses_every_variable() {
        let plan = FaultPlan::from_lookup(|k| {
            Some(
                match k {
                    "UCUDNN_FAULT_SEED" => "42",
                    "UCUDNN_FAULT_ALLOC_ABOVE" => "8M",
                    "UCUDNN_FAULT_EXEC" => "fwd:FFT:*, bench@*:WINOGRAD:64",
                    "UCUDNN_FAULT_EXEC_RATE" => "0.25",
                    "UCUDNN_FAULT_TRANSIENT" => "2",
                    _ => return None,
                }
                .to_string(),
            )
        })
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.alloc_fail_above, Some(8 << 20));
        assert_eq!(plan.exec_rate, 0.25);
        assert_eq!(plan.transient_tries, 2);
        assert_eq!(
            plan.targets,
            vec![
                FaultTarget {
                    site: None,
                    op: Some(ConvOp::Forward),
                    algo: Some(ConvAlgo::Fft),
                    micro_batch: None,
                },
                FaultTarget {
                    site: Some(FaultSite::Benchmark),
                    op: None,
                    algo: Some(ConvAlgo::Winograd),
                    micro_batch: Some(64),
                },
            ]
        );
        assert!(plan.is_active());
    }

    #[test]
    fn malformed_targets_are_dropped() {
        let plan = FaultPlan::from_lookup(|k| {
            (k == "UCUDNN_FAULT_EXEC").then(|| "bogus, fwd:FFT:*, a:b:c:d, x@*:*:*".to_string())
        })
        .unwrap();
        assert_eq!(plan.targets.len(), 1);
        assert_eq!(plan.targets[0].algo, Some(ConvAlgo::Fft));
    }

    #[test]
    fn targets_match_with_wildcards() {
        let t = FaultTarget::algo(ConvAlgo::Fft);
        assert!(t.matches(FaultSite::Benchmark, ConvOp::Forward, ConvAlgo::Fft, 4));
        assert!(t.matches(
            FaultSite::Execution,
            ConvOp::BackwardData,
            ConvAlgo::Fft,
            99
        ));
        assert!(!t.matches(FaultSite::Benchmark, ConvOp::Forward, ConvAlgo::Gemm, 4));
        // Targets never match the allocation site unless explicitly sited.
        assert!(!t.matches(FaultSite::Allocation, ConvOp::Forward, ConvAlgo::Fft, 4));
    }

    #[test]
    fn site_restriction_is_honored() {
        let t = FaultTarget {
            site: Some(FaultSite::Benchmark),
            ..FaultTarget::any()
        };
        assert!(t.matches(FaultSite::Benchmark, ConvOp::Forward, ConvAlgo::Gemm, 1));
        assert!(!t.matches(FaultSite::Execution, ConvOp::Forward, ConvAlgo::Gemm, 1));
    }

    #[test]
    fn permanent_faults_fail_every_attempt() {
        let inj = FaultInjector::new(FaultPlan {
            targets: vec![FaultTarget::algo(ConvAlgo::Fft)],
            ..FaultPlan::default()
        });
        for _ in 0..3 {
            assert!(inj.should_fail(FaultSite::Benchmark, ConvOp::Forward, ConvAlgo::Fft, 8));
        }
        assert!(!inj.should_fail(FaultSite::Benchmark, ConvOp::Forward, ConvAlgo::Gemm, 8));
        assert_eq!(inj.injected(), 3);
        assert_eq!(inj.log().len(), 3);
    }

    #[test]
    fn transient_faults_succeed_after_budgeted_failures() {
        let inj = FaultInjector::new(FaultPlan {
            targets: vec![FaultTarget::algo(ConvAlgo::Fft)],
            transient_tries: 2,
            ..FaultPlan::default()
        });
        // Each distinct key gets its own budget.
        for batch in [8usize, 16] {
            assert!(inj.should_fail(FaultSite::Execution, ConvOp::Forward, ConvAlgo::Fft, batch));
            assert!(inj.should_fail(FaultSite::Execution, ConvOp::Forward, ConvAlgo::Fft, batch));
            assert!(!inj.should_fail(FaultSite::Execution, ConvOp::Forward, ConvAlgo::Fft, batch));
            assert!(!inj.should_fail(FaultSite::Execution, ConvOp::Forward, ConvAlgo::Fft, batch));
        }
        assert_eq!(inj.injected(), 4);
    }

    #[test]
    fn alloc_threshold_fails_only_above() {
        let inj = FaultInjector::new(FaultPlan {
            alloc_fail_above: Some(1 << 20),
            ..FaultPlan::default()
        });
        assert!(!inj.should_fail_alloc(1 << 20));
        assert!(inj.should_fail_alloc((1 << 20) + 1));
        assert!(!inj.should_fail_alloc(0));
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn rate_injection_is_deterministic_and_seed_sensitive() {
        let plan_a = FaultPlan {
            exec_rate: 0.5,
            seed: 1,
            ..FaultPlan::default()
        };
        let verdicts = |plan: &FaultPlan| -> Vec<bool> {
            let inj = FaultInjector::new(plan.clone());
            (0..64)
                .map(|b| inj.should_fail(FaultSite::Benchmark, ConvOp::Forward, ConvAlgo::Gemm, b))
                .collect()
        };
        let a1 = verdicts(&plan_a);
        let a2 = verdicts(&plan_a);
        assert_eq!(a1, a2, "same plan must produce identical verdicts");
        assert!(a1.iter().any(|&v| v) && a1.iter().any(|&v| !v));
        let b = verdicts(&FaultPlan {
            seed: 2,
            ..plan_a.clone()
        });
        assert_ne!(a1, b, "different seeds must change the schedule");
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("123"), Some(123));
        assert_eq!(parse_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_bytes("8m"), Some(8 << 20));
        assert_eq!(parse_bytes("1G"), Some(1 << 30));
        assert_eq!(parse_bytes("junk"), None);
    }

    #[test]
    fn log_is_capped_but_counter_is_not() {
        let inj = FaultInjector::new(FaultPlan {
            targets: vec![FaultTarget::any()],
            ..FaultPlan::default()
        });
        for b in 0..(FAULT_LOG_CAP + 10) {
            inj.should_fail(FaultSite::Execution, ConvOp::Forward, ConvAlgo::Gemm, b);
        }
        assert_eq!(inj.log().len(), FAULT_LOG_CAP);
        assert_eq!(inj.injected() as usize, FAULT_LOG_CAP + 10);
    }
}
