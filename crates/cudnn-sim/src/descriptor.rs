//! Opaque descriptor types, mirroring `cudnnTensorDescriptor_t`,
//! `cudnnFilterDescriptor_t` and `cudnnConvolutionDescriptor_t`.
//!
//! Only the configuration the paper evaluates is supported: dense NCHW
//! single-precision tensors and 2-D cross-correlation (the mode every
//! framework uses).

use crate::error::{CudnnError, Result};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

/// A 4-D NCHW `f32` tensor descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorDescriptor {
    shape: Shape4,
}

impl TensorDescriptor {
    /// `cudnnSetTensor4dDescriptor(NCHW, FLOAT, n, c, h, w)`.
    pub fn new_4d(n: usize, c: usize, h: usize, w: usize) -> Result<Self> {
        if n == 0 || c == 0 || h == 0 || w == 0 {
            return Err(CudnnError::BadParam(format!(
                "zero tensor dimension {n}x{c}x{h}x{w}"
            )));
        }
        Ok(Self {
            shape: Shape4::new(n, c, h, w),
        })
    }

    /// Build from a shape directly.
    pub fn from_shape(shape: Shape4) -> Result<Self> {
        Self::new_4d(shape.n, shape.c, shape.h, shape.w)
    }

    /// The described shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// True when the tensor holds no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }
}

/// A KCRS `f32` filter descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FilterDescriptor {
    shape: FilterShape,
}

impl FilterDescriptor {
    /// `cudnnSetFilter4dDescriptor(FLOAT, NCHW, k, c, r, s)`.
    pub fn new_4d(k: usize, c: usize, r: usize, s: usize) -> Result<Self> {
        if k == 0 || c == 0 || r == 0 || s == 0 {
            return Err(CudnnError::BadParam(format!(
                "zero filter dimension {k}x{c}x{r}x{s}"
            )));
        }
        Ok(Self {
            shape: FilterShape::new(k, c, r, s),
        })
    }

    /// Build from a shape directly.
    pub fn from_shape(shape: FilterShape) -> Result<Self> {
        Self::new_4d(shape.k, shape.c, shape.r, shape.s)
    }

    /// The described filter shape.
    pub fn shape(&self) -> FilterShape {
        self.shape
    }
}

/// A 2-D cross-correlation descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvolutionDescriptor {
    /// Height padding.
    pub pad_h: usize,
    /// Width padding.
    pub pad_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
}

impl ConvolutionDescriptor {
    /// `cudnnSetConvolution2dDescriptor(pad, pad, stride, stride, 1, 1,
    /// CROSS_CORRELATION, FLOAT)`. Dilation is not supported (dilation 1).
    pub fn new_2d(pad_h: usize, pad_w: usize, stride_h: usize, stride_w: usize) -> Result<Self> {
        if stride_h == 0 || stride_w == 0 {
            return Err(CudnnError::BadParam(
                "convolution stride must be positive".into(),
            ));
        }
        Ok(Self {
            pad_h,
            pad_w,
            stride_h,
            stride_w,
        })
    }

    /// Assemble the full geometry, validating descriptor compatibility —
    /// the checks cuDNN performs at call time.
    pub fn geometry(&self, x: &TensorDescriptor, w: &FilterDescriptor) -> Result<ConvGeometry> {
        let xs = x.shape();
        let ws = w.shape();
        if xs.c != ws.c {
            return Err(CudnnError::BadParam(format!(
                "input channels {} != filter channels {}",
                xs.c, ws.c
            )));
        }
        if xs.h + 2 * self.pad_h < ws.r || xs.w + 2 * self.pad_w < ws.s {
            return Err(CudnnError::BadParam(format!(
                "padded input {}x{} smaller than filter {}x{}",
                xs.h + 2 * self.pad_h,
                xs.w + 2 * self.pad_w,
                ws.r,
                ws.s
            )));
        }
        Ok(ConvGeometry::new(
            xs,
            ws,
            self.pad_h,
            self.pad_w,
            self.stride_h,
            self.stride_w,
        ))
    }

    /// `cudnnGetConvolution2dForwardOutputDim`.
    pub fn forward_output_dim(&self, x: &TensorDescriptor, w: &FilterDescriptor) -> Result<Shape4> {
        Ok(self.geometry(x, w)?.output())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_descriptor_validates() {
        assert!(TensorDescriptor::new_4d(1, 3, 224, 224).is_ok());
        assert!(TensorDescriptor::new_4d(0, 3, 224, 224).is_err());
    }

    #[test]
    fn filter_descriptor_validates() {
        assert!(FilterDescriptor::new_4d(64, 3, 11, 11).is_ok());
        assert!(FilterDescriptor::new_4d(64, 3, 0, 11).is_err());
    }

    #[test]
    fn convolution_descriptor_rejects_zero_stride() {
        assert!(ConvolutionDescriptor::new_2d(1, 1, 0, 1).is_err());
    }

    #[test]
    fn geometry_assembly_and_output_dims() {
        let x = TensorDescriptor::new_4d(128, 3, 224, 224).unwrap();
        let w = FilterDescriptor::new_4d(64, 3, 11, 11).unwrap();
        let c = ConvolutionDescriptor::new_2d(2, 2, 4, 4).unwrap();
        let out = c.forward_output_dim(&x, &w).unwrap();
        assert_eq!(out, Shape4::new(128, 64, 55, 55));
    }

    #[test]
    fn geometry_rejects_channel_mismatch() {
        let x = TensorDescriptor::new_4d(1, 3, 8, 8).unwrap();
        let w = FilterDescriptor::new_4d(4, 5, 3, 3).unwrap();
        let c = ConvolutionDescriptor::new_2d(1, 1, 1, 1).unwrap();
        assert!(matches!(c.geometry(&x, &w), Err(CudnnError::BadParam(_))));
    }

    #[test]
    fn geometry_rejects_filter_larger_than_input() {
        let x = TensorDescriptor::new_4d(1, 1, 2, 2).unwrap();
        let w = FilterDescriptor::new_4d(1, 1, 5, 5).unwrap();
        let c = ConvolutionDescriptor::new_2d(0, 0, 1, 1).unwrap();
        assert!(c.geometry(&x, &w).is_err());
    }
}
