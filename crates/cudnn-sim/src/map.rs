//! Mapping between cuDNN-level algorithms and the CPU compute engines, and
//! engine-specific support / workspace queries.

use crate::handle::Engine;
use ucudnn_conv::{ConvOp, EngineKind};
use ucudnn_gpu_model::{algo_supported, workspace_bytes, ConvAlgo};
use ucudnn_tensor::ConvGeometry;

/// The CPU engine that executes a given cuDNN-level algorithm, or `None`
/// when the algorithm has no kernel at all (`DIRECT`, as in cuDNN).
pub fn cpu_engine_for(algo: ConvAlgo) -> Option<EngineKind> {
    match algo {
        ConvAlgo::ImplicitGemm => Some(EngineKind::Direct),
        ConvAlgo::ImplicitPrecompGemm | ConvAlgo::Gemm => Some(EngineKind::Gemm),
        ConvAlgo::Direct => None,
        ConvAlgo::Fft | ConvAlgo::FftTiling => Some(EngineKind::Fft),
        ConvAlgo::Winograd => Some(EngineKind::Winograd),
        ConvAlgo::WinogradNonfused => Some(EngineKind::WinogradF4),
    }
}

/// Whether `algo` can execute `op` on `g` under the given engine. The
/// simulated engine follows the GPU model's constraint table; the CPU engine
/// follows the actual compute-engine constraints.
pub fn supported_on(engine: &Engine, algo: ConvAlgo, op: ConvOp, g: &ConvGeometry) -> bool {
    match engine {
        Engine::Simulated(_) => algo_supported(algo, op, g),
        Engine::RealCpu => match cpu_engine_for(algo) {
            Some(k) => ucudnn_conv::supports(k, op, g),
            None => false,
        },
    }
}

/// Workspace requirement in bytes under the given engine, or `None` when
/// unsupported.
pub fn workspace_bytes_on(
    engine: &Engine,
    algo: ConvAlgo,
    op: ConvOp,
    g: &ConvGeometry,
) -> Option<usize> {
    if !supported_on(engine, algo, op, g) {
        return None;
    }
    match engine {
        Engine::Simulated(_) => workspace_bytes(algo, op, g),
        Engine::RealCpu => {
            let k = cpu_engine_for(algo)?;
            Some(4 * ucudnn_conv::workspace_floats(k, op, g))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{FilterShape, Shape4};

    fn g33() -> ConvGeometry {
        ConvGeometry::with_square(
            Shape4::new(4, 8, 16, 16),
            FilterShape::new(8, 8, 3, 3),
            1,
            1,
        )
    }

    #[test]
    fn direct_has_no_kernel_anywhere() {
        assert!(cpu_engine_for(ConvAlgo::Direct).is_none());
        for engine in [Engine::Simulated(p100_sxm2()), Engine::RealCpu] {
            assert!(!supported_on(
                &engine,
                ConvAlgo::Direct,
                ConvOp::Forward,
                &g33()
            ));
        }
    }

    #[test]
    fn implicit_gemm_is_free_on_both_engines() {
        for engine in [Engine::Simulated(p100_sxm2()), Engine::RealCpu] {
            assert_eq!(
                workspace_bytes_on(&engine, ConvAlgo::ImplicitGemm, ConvOp::Forward, &g33()),
                Some(0)
            );
        }
    }

    #[test]
    fn cpu_engine_workspace_is_engine_specific() {
        // On the CPU engine, GEMM workspace is the real column buffer of the
        // im2col engine, not the GPU model's figure.
        let g = g33();
        let cpu =
            workspace_bytes_on(&Engine::RealCpu, ConvAlgo::Gemm, ConvOp::Forward, &g).unwrap();
        assert_eq!(cpu, 4 * ucudnn_conv::im2col_gemm::workspace_floats(&g));
    }

    #[test]
    fn winograd_nonfused_backward_filter_differs_by_engine() {
        // The GPU model supports it; the CPU Winograd engine does not
        // implement backward-filter (documented substitution).
        let g = g33();
        assert!(supported_on(
            &Engine::Simulated(p100_sxm2()),
            ConvAlgo::WinogradNonfused,
            ConvOp::BackwardFilter,
            &g
        ));
        assert!(!supported_on(
            &Engine::RealCpu,
            ConvAlgo::WinogradNonfused,
            ConvOp::BackwardFilter,
            &g
        ));
    }
}
