//! Kernel execution: `cudnnConvolutionForward`,
//! `cudnnConvolutionBackwardData`, `cudnnConvolutionBackwardFilter`.
//!
//! Data-buffer contract by engine:
//!
//! * **Simulated** — all data slices must be *empty* (`&[]`). The call
//!   validates descriptors, algorithm support and workspace capacity, then
//!   advances the virtual clock by the modeled kernel time. Passing real
//!   data to a performance model would silently produce garbage, so it is a
//!   `BAD_PARAM` instead.
//! * **RealCpu** — all data slices must match their descriptors exactly; the
//!   kernel computes real results and the clock advances by wall time.

use crate::descriptor::{ConvolutionDescriptor, FilterDescriptor, TensorDescriptor};
use crate::error::{CudnnError, Result};
use crate::handle::{CudnnHandle, Engine};
use crate::map::{cpu_engine_for, supported_on, workspace_bytes_on};
use ucudnn_conv::ConvOp;
use ucudnn_gpu_model::{kernel_time_us, ConvAlgo};
use ucudnn_tensor::ConvGeometry;

/// Arguments common to the three convolution calls.
struct CallCtx<'a> {
    op: ConvOp,
    g: ConvGeometry,
    algo: ConvAlgo,
    alpha: f32,
    beta: f32,
    ws: &'a mut [f32],
}

impl CudnnHandle {
    fn run(&self, ctx: CallCtx<'_>, a: &[f32], b: &[f32], out: &mut [f32]) -> Result<()> {
        let CallCtx {
            op,
            g,
            algo,
            alpha,
            beta,
            ws,
        } = ctx;
        if !supported_on(self.engine(), algo, op, &g) {
            return Err(CudnnError::NotSupported(format!(
                "{algo} cannot run {op} on {g}"
            )));
        }
        let need = workspace_bytes_on(self.engine(), algo, op, &g).unwrap_or(0);
        let got = 4 * ws.len();
        if got < need {
            return Err(CudnnError::WorkspaceTooSmall { need, got });
        }
        // Injected execution faults fire after validation, before the
        // kernel: a faulted call never advances the clock, like a real
        // kernel that aborts at launch.
        self.fault_exec(op, algo, g.input.n)?;
        match self.engine() {
            Engine::Simulated(d) => {
                if !a.is_empty() || !b.is_empty() || !out.is_empty() {
                    return Err(CudnnError::BadParam(
                        "the simulated engine takes empty data slices; use RealCpu for numerics"
                            .into(),
                    ));
                }
                let t = kernel_time_us(d, algo, op, &g).ok_or_else(|| {
                    CudnnError::NotSupported(format!("{algo} unsupported on {g}"))
                })? * self.perturb_factor_now();
                self.advance(t);
                crate::observe::emit_with(|| crate::observe::CallEvent {
                    site: crate::observe::CallSite::Exec,
                    op,
                    algo: Some(algo),
                    micro_batch: g.input.n,
                    geometry: format!("{g}"),
                    rows: 1,
                    modeled_us: t,
                });
                Ok(())
            }
            Engine::RealCpu => {
                let (a_len, b_len, out_len) = match op {
                    ConvOp::Forward => (g.input.len(), g.filter.len(), g.output().len()),
                    ConvOp::BackwardData => (g.output().len(), g.filter.len(), g.input.len()),
                    ConvOp::BackwardFilter => (g.input.len(), g.output().len(), g.filter.len()),
                };
                if a.len() != a_len || b.len() != b_len || out.len() != out_len {
                    return Err(CudnnError::BadParam(format!(
                        "data buffer sizes ({}, {}, {}) do not match descriptors ({a_len}, {b_len}, {out_len})",
                        a.len(),
                        b.len(),
                        out.len()
                    )));
                }
                let kind = cpu_engine_for(algo)
                    .ok_or_else(|| CudnnError::NotSupported(format!("{algo} has no kernel")))?;
                let start = std::time::Instant::now();
                // Execute through the plan cache: call-invariant state
                // (packed filter panels, FFT tables and filter spectra,
                // Winograd-transformed filters) is derived once per
                // (engine, op, batch-1 geometry) and reused across the
                // micro-batches and iterations that follow. Cached and
                // uncached execution are bit-identical, so the cache — and
                // an injected allocation fault degrading a call to uncached
                // execution — never changes results.
                self.plan_cache()
                    .with_plan(
                        crate::plan_cache::plan_key(kind, op, &g),
                        kind,
                        |bytes| self.fault_check_alloc(bytes).is_ok(),
                        |plan| {
                            ucudnn_conv::exec_with_plan(
                                kind, op, &g, a, b, out, alpha, beta, ws, plan,
                            )
                        },
                    )
                    .map_err(|e| CudnnError::ExecutionFailed(e.to_string()))?;
                self.advance(start.elapsed().as_secs_f64() * 1e6);
                crate::observe::emit_with(|| crate::observe::CallEvent {
                    site: crate::observe::CallSite::Exec,
                    op,
                    algo: Some(algo),
                    micro_batch: g.input.n,
                    geometry: format!("{g}"),
                    rows: 1,
                    // Wall-priced: the CPU engine has no model. Consumers
                    // must not treat this as a deterministic quantity.
                    modeled_us: 0.0,
                });
                Ok(())
            }
        }
    }

    /// `cudnnConvolutionForward`: `y = alpha * conv(x, w) + beta * y`.
    #[allow(clippy::too_many_arguments)]
    pub fn convolution_forward(
        &self,
        alpha: f32,
        x_desc: &TensorDescriptor,
        x: &[f32],
        w_desc: &FilterDescriptor,
        w: &[f32],
        conv: &ConvolutionDescriptor,
        algo: ConvAlgo,
        ws: &mut [f32],
        beta: f32,
        y_desc: &TensorDescriptor,
        y: &mut [f32],
    ) -> Result<()> {
        let g = conv.geometry(x_desc, w_desc)?;
        if y_desc.shape() != g.output() {
            return Err(CudnnError::BadParam(format!(
                "output descriptor {} does not match computed {}",
                y_desc.shape(),
                g.output()
            )));
        }
        self.run(
            CallCtx {
                op: ConvOp::Forward,
                g,
                algo,
                alpha,
                beta,
                ws,
            },
            x,
            w,
            y,
        )
    }

    /// `cudnnConvolutionBackwardData`: `dx = alpha * grad_x + beta * dx`.
    #[allow(clippy::too_many_arguments)]
    pub fn convolution_backward_data(
        &self,
        alpha: f32,
        w_desc: &FilterDescriptor,
        w: &[f32],
        dy_desc: &TensorDescriptor,
        dy: &[f32],
        conv: &ConvolutionDescriptor,
        algo: ConvAlgo,
        ws: &mut [f32],
        beta: f32,
        dx_desc: &TensorDescriptor,
        dx: &mut [f32],
    ) -> Result<()> {
        let g = conv.geometry(dx_desc, w_desc)?;
        if dy_desc.shape() != g.output() {
            return Err(CudnnError::BadParam(format!(
                "gradient descriptor {} does not match computed {}",
                dy_desc.shape(),
                g.output()
            )));
        }
        self.run(
            CallCtx {
                op: ConvOp::BackwardData,
                g,
                algo,
                alpha,
                beta,
                ws,
            },
            dy,
            w,
            dx,
        )
    }

    /// `cudnnConvolutionBackwardFilter`: `dw = alpha * grad_w + beta * dw`.
    /// With `beta = 1` this accumulates — the property μ-cuDNN uses to split
    /// BackwardFilter across micro-batches.
    #[allow(clippy::too_many_arguments)]
    pub fn convolution_backward_filter(
        &self,
        alpha: f32,
        x_desc: &TensorDescriptor,
        x: &[f32],
        dy_desc: &TensorDescriptor,
        dy: &[f32],
        conv: &ConvolutionDescriptor,
        algo: ConvAlgo,
        ws: &mut [f32],
        beta: f32,
        dw_desc: &FilterDescriptor,
        dw: &mut [f32],
    ) -> Result<()> {
        let g = conv.geometry(x_desc, dw_desc)?;
        if dy_desc.shape() != g.output() {
            return Err(CudnnError::BadParam(format!(
                "gradient descriptor {} does not match computed {}",
                dy_desc.shape(),
                g.output()
            )));
        }
        self.run(
            CallCtx {
                op: ConvOp::BackwardFilter,
                g,
                algo,
                alpha,
                beta,
                ws,
            },
            x,
            dy,
            dw,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{assert_all_close, Shape4, Tensor};

    fn descs(
        n: usize,
    ) -> (
        TensorDescriptor,
        FilterDescriptor,
        ConvolutionDescriptor,
        TensorDescriptor,
    ) {
        let x = TensorDescriptor::new_4d(n, 3, 8, 8).unwrap();
        let w = FilterDescriptor::new_4d(4, 3, 3, 3).unwrap();
        let c = ConvolutionDescriptor::new_2d(1, 1, 1, 1).unwrap();
        let y = TensorDescriptor::from_shape(c.forward_output_dim(&x, &w).unwrap()).unwrap();
        (x, w, c, y)
    }

    #[test]
    fn simulated_forward_advances_clock_only() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (xd, wd, cd, yd) = descs(16);
        h.convolution_forward(
            1.0,
            &xd,
            &[],
            &wd,
            &[],
            &cd,
            ConvAlgo::ImplicitGemm,
            &mut [],
            0.0,
            &yd,
            &mut [],
        )
        .unwrap();
        assert!(h.elapsed_us() > 0.0);
        assert_eq!(h.kernels_launched(), 1);
    }

    #[test]
    fn simulated_rejects_real_data() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (xd, wd, cd, yd) = descs(2);
        let x = Tensor::zeros(xd.shape());
        let w = Tensor::zeros(wd.shape().as_shape4());
        let mut y = Tensor::zeros(yd.shape());
        let err = h
            .convolution_forward(
                1.0,
                &xd,
                x.as_slice(),
                &wd,
                w.as_slice(),
                &cd,
                ConvAlgo::ImplicitGemm,
                &mut [],
                0.0,
                &yd,
                y.as_mut_slice(),
            )
            .unwrap_err();
        assert!(matches!(err, CudnnError::BadParam(_)));
    }

    #[test]
    fn real_cpu_forward_computes_correct_values() {
        let h = CudnnHandle::real_cpu();
        let (xd, wd, cd, yd) = descs(3);
        let g = cd.geometry(&xd, &wd).unwrap();
        let x = Tensor::random(g.input, 1);
        let w = Tensor::random(g.filter.as_shape4(), 2);
        let mut want = Tensor::zeros(g.output());
        ucudnn_conv::direct::forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            want.as_mut_slice(),
            1.0,
            0.0,
        );

        for algo in [ConvAlgo::Gemm, ConvAlgo::Fft, ConvAlgo::Winograd] {
            let bytes = h
                .get_workspace_size(ConvOp::Forward, &xd, &wd, &cd, algo)
                .unwrap();
            let mut ws = vec![0.0f32; bytes.div_ceil(4)];
            let mut y = Tensor::zeros(g.output());
            h.convolution_forward(
                1.0,
                &xd,
                x.as_slice(),
                &wd,
                w.as_slice(),
                &cd,
                algo,
                &mut ws,
                0.0,
                &yd,
                y.as_mut_slice(),
            )
            .unwrap();
            assert_all_close(&want, &y, 5e-3);
        }
        assert!(h.elapsed_us() > 0.0);
    }

    /// Repeated RealCpu calls hit the plan cache, micro-batches of one layer
    /// share the entry, and warm results are bit-identical to cold ones.
    #[test]
    fn real_cpu_exec_warms_plan_cache_bit_identically() {
        let h = CudnnHandle::real_cpu();
        let run = |handle: &CudnnHandle, n: usize| {
            let (xd, wd, cd, yd) = descs(n);
            let g = cd.geometry(&xd, &wd).unwrap();
            let x = Tensor::random(g.input, 1);
            let w = Tensor::random(g.filter.as_shape4(), 2);
            let bytes = handle
                .get_workspace_size(ConvOp::Forward, &xd, &wd, &cd, ConvAlgo::Gemm)
                .unwrap();
            let mut ws = vec![0.0f32; bytes.div_ceil(4)];
            let mut y = Tensor::zeros(g.output());
            handle
                .convolution_forward(
                    1.0,
                    &xd,
                    x.as_slice(),
                    &wd,
                    w.as_slice(),
                    &cd,
                    ConvAlgo::Gemm,
                    &mut ws,
                    0.0,
                    &yd,
                    y.as_mut_slice(),
                )
                .unwrap();
            y
        };
        let cold = run(&h, 2);
        let stats = h.exec_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        assert!(stats.bytes > 0, "a warm plan must hold packed panels");
        for round in 1..=3 {
            let warm = run(&h, 2);
            assert!(
                cold.as_slice()
                    .iter()
                    .zip(warm.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "warm round {round} diverged from cold execution"
            );
        }
        assert_eq!(h.exec_cache_stats().hits, 3);
        // A different micro-batch size of the same layer shares the entry.
        run(&h, 7);
        assert_eq!(h.exec_cache_stats().hits, 4);
        // A cache-disabled handle computes bit-identical results.
        let uncached = CudnnHandle::real_cpu().with_exec_cache_bytes(0);
        let plain = run(&uncached, 2);
        assert!(cold
            .as_slice()
            .iter()
            .zip(plain.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(uncached.exec_cache_stats().hits, 0);
    }

    /// An injected allocation fault keeps plans out of the cache but must
    /// not fail the call or change its results (graceful degradation).
    #[test]
    fn alloc_fault_degrades_exec_to_uncached() {
        let faulty = CudnnHandle::real_cpu().with_faults(crate::fault::FaultPlan {
            alloc_fail_above: Some(0),
            ..Default::default()
        });
        let clean = CudnnHandle::real_cpu();
        let (xd, wd, cd, yd) = descs(2);
        let g = cd.geometry(&xd, &wd).unwrap();
        let x = Tensor::random(g.input, 5);
        let w = Tensor::random(g.filter.as_shape4(), 6);
        // Workspace sized via the clean handle: the faulty one rejects the
        // query itself (workspace queries share the allocation fault site).
        let bytes = clean
            .get_workspace_size(ConvOp::Forward, &xd, &wd, &cd, ConvAlgo::Gemm)
            .unwrap();
        let run = |handle: &CudnnHandle| {
            let mut ws = vec![0.0f32; bytes.div_ceil(4)];
            let mut y = Tensor::zeros(g.output());
            handle
                .convolution_forward(
                    1.0,
                    &xd,
                    x.as_slice(),
                    &wd,
                    w.as_slice(),
                    &cd,
                    ConvAlgo::Gemm,
                    &mut ws,
                    0.0,
                    &yd,
                    y.as_mut_slice(),
                )
                .unwrap();
            y
        };
        let want = run(&clean);
        for _ in 0..2 {
            let got = run(&faulty);
            assert!(want
                .as_slice()
                .iter()
                .zip(got.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        let stats = faulty.exec_cache_stats();
        assert_eq!(stats.hits, 0, "vetoed plans must never be retained");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.bytes, 0);
        assert!(faulty.faults_injected() >= 2);
    }

    #[test]
    fn real_cpu_backward_filter_accumulates_with_beta_one() {
        let h = CudnnHandle::real_cpu();
        let (xd, wd, cd, yd) = descs(4);
        let g = cd.geometry(&xd, &wd).unwrap();
        let x = Tensor::random(g.input, 3);
        let dy = Tensor::random(g.output(), 4);
        let mut dw_once = Tensor::zeros(g.filter.as_shape4());
        h.convolution_backward_filter(
            1.0,
            &xd,
            x.as_slice(),
            &yd,
            dy.as_slice(),
            &cd,
            ConvAlgo::ImplicitGemm,
            &mut [],
            0.0,
            &wd,
            dw_once.as_mut_slice(),
        )
        .unwrap();
        // Running it again with beta=1 must exactly double the gradient.
        let mut dw_twice = dw_once.clone();
        h.convolution_backward_filter(
            1.0,
            &xd,
            x.as_slice(),
            &yd,
            dy.as_slice(),
            &cd,
            ConvAlgo::ImplicitGemm,
            &mut [],
            1.0,
            &wd,
            dw_twice.as_mut_slice(),
        )
        .unwrap();
        let mut want = dw_once.clone();
        want.axpby(1.0, &dw_once, 1.0);
        assert_all_close(&want, &dw_twice, 1e-5);
    }

    #[test]
    fn workspace_too_small_is_rejected_before_execution() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (xd, wd, cd, yd) = descs(64);
        let need = h
            .get_workspace_size(ConvOp::Forward, &xd, &wd, &cd, ConvAlgo::WinogradNonfused)
            .unwrap();
        assert!(need > 0);
        let err = h
            .convolution_forward(
                1.0,
                &xd,
                &[],
                &wd,
                &[],
                &cd,
                ConvAlgo::WinogradNonfused,
                &mut [],
                0.0,
                &yd,
                &mut [],
            )
            .unwrap_err();
        assert!(matches!(err, CudnnError::WorkspaceTooSmall { .. }));
        assert_eq!(
            h.kernels_launched(),
            0,
            "failed calls must not advance the clock"
        );
    }

    #[test]
    fn mismatched_output_descriptor_is_bad_param() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (xd, wd, cd, _) = descs(2);
        let bad_y = TensorDescriptor::from_shape(Shape4::new(2, 4, 5, 5)).unwrap();
        let err = h
            .convolution_forward(
                1.0,
                &xd,
                &[],
                &wd,
                &[],
                &cd,
                ConvAlgo::ImplicitGemm,
                &mut [],
                0.0,
                &bad_y,
                &mut [],
            )
            .unwrap_err();
        assert!(matches!(err, CudnnError::BadParam(_)));
    }

    #[test]
    fn backward_data_shapes_validated() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let (xd, wd, cd, yd) = descs(2);
        // dy descriptor deliberately wrong (channels).
        let bad_dy = TensorDescriptor::new_4d(2, 3, yd.shape().h, yd.shape().w).unwrap();
        let err = h
            .convolution_backward_data(
                1.0,
                &wd,
                &[],
                &bad_dy,
                &[],
                &cd,
                ConvAlgo::ImplicitGemm,
                &mut [],
                0.0,
                &xd,
                &mut [],
            )
            .unwrap_err();
        assert!(matches!(err, CudnnError::BadParam(_)));
    }
}
