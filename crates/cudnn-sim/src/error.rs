//! Status codes, mirroring `cudnnStatus_t`.

/// Errors returned by the cuDNN-style API.
#[derive(Debug, Clone, PartialEq)]
pub enum CudnnError {
    /// An argument violated the API contract (`CUDNN_STATUS_BAD_PARAM`).
    BadParam(String),
    /// The requested algorithm cannot run on this (op, geometry, engine)
    /// combination (`CUDNN_STATUS_NOT_SUPPORTED`).
    NotSupported(String),
    /// The provided workspace is smaller than the algorithm requires.
    WorkspaceTooSmall {
        /// Bytes required.
        need: usize,
        /// Bytes provided.
        got: usize,
    },
    /// The kernel failed during execution (`CUDNN_STATUS_EXECUTION_FAILED`).
    ExecutionFailed(String),
    /// A workspace query or allocation failed
    /// (`CUDNN_STATUS_ALLOC_FAILED`).
    AllocFailed {
        /// Bytes requested.
        requested: usize,
    },
}

impl core::fmt::Display for CudnnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CudnnError::BadParam(m) => write!(f, "CUDNN_STATUS_BAD_PARAM: {m}"),
            CudnnError::NotSupported(m) => write!(f, "CUDNN_STATUS_NOT_SUPPORTED: {m}"),
            CudnnError::WorkspaceTooSmall { need, got } => {
                write!(f, "workspace too small: need {need} bytes, got {got}")
            }
            CudnnError::ExecutionFailed(m) => write!(f, "CUDNN_STATUS_EXECUTION_FAILED: {m}"),
            CudnnError::AllocFailed { requested } => {
                write!(f, "CUDNN_STATUS_ALLOC_FAILED: requested {requested} bytes")
            }
        }
    }
}

impl std::error::Error for CudnnError {}

/// Convenience alias used across the API.
pub type Result<T> = core::result::Result<T, CudnnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_status_names() {
        assert!(CudnnError::BadParam("x".into())
            .to_string()
            .contains("BAD_PARAM"));
        assert!(CudnnError::NotSupported("x".into())
            .to_string()
            .contains("NOT_SUPPORTED"));
        assert!(CudnnError::WorkspaceTooSmall { need: 2, got: 1 }
            .to_string()
            .contains("need 2"));
        assert!(CudnnError::AllocFailed { requested: 64 }
            .to_string()
            .contains("ALLOC_FAILED"));
    }
}
