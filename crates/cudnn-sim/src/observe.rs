//! Call-event hooks: a process-wide observer of substrate activity.
//!
//! The tracing layer lives above this crate (`ucudnn_core::trace`), but the
//! interesting moments — a `Find` benchmark sweep, a kernel execution —
//! happen here. Rather than invert the dependency, the substrate exposes a
//! single registration point: an observer callback invoked with a
//! [`CallEvent`] at each hook site. When no observer is registered the hook
//! is one relaxed atomic load; event construction is deferred behind that
//! check, so an untraced process pays nothing else.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use ucudnn_conv::ConvOp;
use ucudnn_gpu_model::ConvAlgo;

/// Which hook produced a [`CallEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallSite {
    /// A `find_algorithms` benchmark sweep completed.
    Find,
    /// A convolution kernel executed successfully.
    Exec,
}

/// One observed substrate call.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// The hook site.
    pub site: CallSite,
    /// The convolution operation.
    pub op: ConvOp,
    /// The executed algorithm ([`CallSite::Exec`] only).
    pub algo: Option<ConvAlgo>,
    /// Micro-batch size of the call (the geometry's `input.n`).
    pub micro_batch: usize,
    /// Rendered geometry, identifying the kernel beyond (op, batch).
    pub geometry: String,
    /// `Find`: number of measured rows. `Exec`: always 1.
    pub rows: usize,
    /// `Exec` on the simulated engine: the modeled kernel time. Zero for
    /// `Find` events and wall-clock-priced CPU executions.
    pub modeled_us: f64,
}

/// The observer callback type.
pub type CallObserver = Arc<dyn Fn(&CallEvent) + Send + Sync>;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<CallObserver>> = Mutex::new(None);

/// Install (or, with `None`, remove) the process-wide call observer.
/// The callback runs inline on the calling thread of each hook site and
/// must therefore be cheap and non-reentrant into this crate.
pub fn set_call_observer(observer: Option<CallObserver>) {
    let mut slot = OBSERVER.lock().unwrap_or_else(PoisonError::into_inner);
    ACTIVE.store(observer.is_some(), Ordering::Release);
    *slot = observer;
}

/// Invoke the observer with a lazily built event. The builder only runs
/// when an observer is installed.
pub(crate) fn emit_with(build: impl FnOnce() -> CallEvent) {
    if !ACTIVE.load(Ordering::Acquire) {
        return;
    }
    let observer = OBSERVER
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(observer) = observer {
        observer(&build());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> CallEvent {
        CallEvent {
            site: CallSite::Exec,
            op: ConvOp::Forward,
            algo: Some(ConvAlgo::Gemm),
            micro_batch: 8,
            geometry: "observe-test".into(),
            rows: 1,
            modeled_us: 1.0,
        }
    }

    // One test, not several: the observer slot is process-global, and other
    // tests in this crate exercise the find/exec hooks concurrently. The
    // callback therefore filters on a marker geometry it alone emits.
    #[test]
    fn observer_sees_events_until_removed() {
        use std::sync::atomic::AtomicUsize;
        let count = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&count);
        set_call_observer(Some(Arc::new(move |e| {
            if e.geometry == "observe-test" {
                assert_eq!(e.site, CallSite::Exec);
                seen.fetch_add(1, Ordering::Relaxed);
            }
        })));
        emit_with(event);
        emit_with(event);
        set_call_observer(None);
        emit_with(event);
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }
}
