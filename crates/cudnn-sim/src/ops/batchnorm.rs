//! `cudnnBatchNormalizationForwardTraining` / `cudnnBatchNormalizationBackward`
//! in `SPATIAL` mode (one statistic per channel over N×H×W).

use super::check_len;
use crate::descriptor::TensorDescriptor;
use crate::error::{CudnnError, Result};
use crate::handle::CudnnHandle;
use ucudnn_tensor::Shape4;

/// Minimum epsilon cuDNN accepts (`CUDNN_BN_MIN_EPSILON`).
pub const BN_MIN_EPSILON: f64 = 1e-5;

/// Per-channel statistics over (N, H, W): returns (mean, variance).
fn spatial_stats(s: Shape4, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let m = (s.n * s.h * s.w) as f32;
    let mut mean = vec![0.0f32; s.c];
    let mut var = vec![0.0f32; s.c];
    for ni in 0..s.n {
        for ci in 0..s.c {
            for hi in 0..s.h {
                for wi in 0..s.w {
                    mean[ci] += x[s.index(ni, ci, hi, wi)];
                }
            }
        }
    }
    for v in &mut mean {
        *v /= m;
    }
    for ni in 0..s.n {
        for ci in 0..s.c {
            for hi in 0..s.h {
                for wi in 0..s.w {
                    let d = x[s.index(ni, ci, hi, wi)] - mean[ci];
                    var[ci] += d * d;
                }
            }
        }
    }
    for v in &mut var {
        *v /= m;
    }
    (mean, var)
}

impl CudnnHandle {
    /// Spatial batch-norm forward (training): normalizes per channel and
    /// applies scale `gamma` / shift `beta_p`. On the real engine the
    /// per-channel `saved_mean` / `saved_inv_var` buffers are filled for the
    /// backward pass, exactly as cuDNN's `resultSaveMean` /
    /// `resultSaveInvVariance`.
    ///
    /// # Errors
    /// Shape mismatches, bad epsilon, engine-contract violations.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_norm_forward_training(
        &self,
        alpha: f32,
        beta: f32,
        x_desc: &TensorDescriptor,
        x: &[f32],
        y_desc: &TensorDescriptor,
        y: &mut [f32],
        gamma: &[f32],
        beta_p: &[f32],
        epsilon: f64,
        saved_mean: &mut [f32],
        saved_inv_var: &mut [f32],
    ) -> Result<()> {
        let s = x_desc.shape();
        if y_desc.shape() != s {
            return Err(CudnnError::BadParam("batch-norm shapes must match".into()));
        }
        if epsilon < BN_MIN_EPSILON {
            return Err(CudnnError::BadParam(format!(
                "epsilon {epsilon} < CUDNN_BN_MIN_EPSILON"
            )));
        }
        check_len("x", x.len(), s.len())?;
        check_len("y", y.len(), s.len())?;
        let any = !x.is_empty() || !y.is_empty();
        if any
            && (gamma.len() != s.c
                || beta_p.len() != s.c
                || saved_mean.len() != s.c
                || saved_inv_var.len() != s.c)
        {
            return Err(CudnnError::BadParam(
                "per-channel parameter length mismatch".into(),
            ));
        }
        // Two passes over x plus one write of y.
        let bytes = 4 * 3 * s.len();
        self.aux_op(bytes, any, || {
            let (mean, var) = spatial_stats(s, x);
            for ci in 0..s.c {
                saved_mean[ci] = mean[ci];
                saved_inv_var[ci] = 1.0 / (var[ci] + epsilon as f32).sqrt();
            }
            for ni in 0..s.n {
                for ci in 0..s.c {
                    for hi in 0..s.h {
                        for wi in 0..s.w {
                            let i = s.index(ni, ci, hi, wi);
                            let xhat = (x[i] - mean[ci]) * saved_inv_var[ci];
                            y[i] = alpha * (gamma[ci] * xhat + beta_p[ci]) + beta * y[i];
                        }
                    }
                }
            }
            Ok(())
        })
    }

    /// Spatial batch-norm backward: computes `dx`, `dgamma`, `dbeta` from
    /// the saved statistics (pass empty slices to recompute them from `x`,
    /// like passing NULL to cuDNN).
    ///
    /// # Errors
    /// Shape mismatches and engine-contract violations.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_norm_backward(
        &self,
        x_desc: &TensorDescriptor,
        x: &[f32],
        dy_desc: &TensorDescriptor,
        dy: &[f32],
        dx_desc: &TensorDescriptor,
        dx: &mut [f32],
        gamma: &[f32],
        dgamma: &mut [f32],
        dbeta: &mut [f32],
        epsilon: f64,
        saved_mean: &[f32],
        saved_inv_var: &[f32],
    ) -> Result<()> {
        let s = x_desc.shape();
        if dy_desc.shape() != s || dx_desc.shape() != s {
            return Err(CudnnError::BadParam(
                "batch-norm gradient shapes must match".into(),
            ));
        }
        check_len("x", x.len(), s.len())?;
        check_len("dy", dy.len(), s.len())?;
        check_len("dx", dx.len(), s.len())?;
        let any = !x.is_empty() || !dy.is_empty() || !dx.is_empty();
        let bytes = 4 * 4 * s.len();
        self.aux_op(bytes, any, || {
            let m = (s.n * s.h * s.w) as f32;
            let (mean, inv_std): (Vec<f32>, Vec<f32>) =
                if saved_mean.len() == s.c && saved_inv_var.len() == s.c {
                    (saved_mean.to_vec(), saved_inv_var.to_vec())
                } else {
                    let (mean, var) = spatial_stats(s, x);
                    let inv: Vec<f32> = var
                        .iter()
                        .map(|v| 1.0 / (v + epsilon as f32).sqrt())
                        .collect();
                    (mean, inv)
                };
            dgamma.iter_mut().for_each(|v| *v = 0.0);
            dbeta.iter_mut().for_each(|v| *v = 0.0);
            for ni in 0..s.n {
                for ci in 0..s.c {
                    for hi in 0..s.h {
                        for wi in 0..s.w {
                            let i = s.index(ni, ci, hi, wi);
                            let xhat = (x[i] - mean[ci]) * inv_std[ci];
                            dgamma[ci] += dy[i] * xhat;
                            dbeta[ci] += dy[i];
                        }
                    }
                }
            }
            for ni in 0..s.n {
                for ci in 0..s.c {
                    for hi in 0..s.h {
                        for wi in 0..s.w {
                            let i = s.index(ni, ci, hi, wi);
                            let xhat = (x[i] - mean[ci]) * inv_std[ci];
                            dx[i] = gamma[ci]
                                * inv_std[ci]
                                * (dy[i] - dbeta[ci] / m - xhat * dgamma[ci] / m);
                        }
                    }
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::Tensor;

    fn desc() -> TensorDescriptor {
        TensorDescriptor::from_shape(Shape4::new(4, 2, 5, 5)).unwrap()
    }

    #[test]
    fn forward_normalizes_per_channel() {
        let h = CudnnHandle::real_cpu();
        let d = desc();
        let s = d.shape();
        let x = Tensor::random(s, 3);
        let mut y = Tensor::zeros(s);
        let (mut sm, mut siv) = (vec![0.0; s.c], vec![0.0; s.c]);
        h.batch_norm_forward_training(
            1.0,
            0.0,
            &d,
            x.as_slice(),
            &d,
            y.as_mut_slice(),
            &[1.0, 1.0],
            &[0.0, 0.0],
            BN_MIN_EPSILON,
            &mut sm,
            &mut siv,
        )
        .unwrap();
        let (mean, var) = spatial_stats(s, y.as_slice());
        for c in 0..s.c {
            assert!(mean[c].abs() < 1e-4);
            assert!((var[c] - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let h = CudnnHandle::real_cpu();
        let d = desc();
        let s = d.shape();
        let x = Tensor::random(s, 11);
        let dy = Tensor::random(s, 12);
        let gamma = [1.3f32, 0.7];
        let beta_p = [0.1f32, -0.2];
        let loss = |xv: &Tensor| -> f64 {
            let mut y = Tensor::zeros(s);
            let (mut sm, mut siv) = (vec![0.0; s.c], vec![0.0; s.c]);
            h.batch_norm_forward_training(
                1.0,
                0.0,
                &d,
                xv.as_slice(),
                &d,
                y.as_mut_slice(),
                &gamma,
                &beta_p,
                BN_MIN_EPSILON,
                &mut sm,
                &mut siv,
            )
            .unwrap();
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum()
        };
        let mut y = Tensor::zeros(s);
        let (mut sm, mut siv) = (vec![0.0; s.c], vec![0.0; s.c]);
        h.batch_norm_forward_training(
            1.0,
            0.0,
            &d,
            x.as_slice(),
            &d,
            y.as_mut_slice(),
            &gamma,
            &beta_p,
            BN_MIN_EPSILON,
            &mut sm,
            &mut siv,
        )
        .unwrap();
        let mut dx = Tensor::zeros(s);
        let (mut dg, mut db) = (vec![0.0; s.c], vec![0.0; s.c]);
        h.batch_norm_backward(
            &d,
            x.as_slice(),
            &d,
            dy.as_slice(),
            &d,
            dx.as_mut_slice(),
            &gamma,
            &mut dg,
            &mut db,
            BN_MIN_EPSILON,
            &sm,
            &siv,
        )
        .unwrap();
        let eps = 1e-2f32;
        for i in [0usize, 33, 101] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
            let analytic = dx.as_slice()[i] as f64;
            assert!(
                (numeric - analytic).abs() < 5e-2 * numeric.abs().max(analytic.abs()).max(1e-2),
                "dx[{i}]: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn backward_without_saved_stats_recomputes() {
        let h = CudnnHandle::real_cpu();
        let d = desc();
        let s = d.shape();
        let x = Tensor::random(s, 21);
        let dy = Tensor::random(s, 22);
        let gamma = [1.0f32, 1.0];
        let mut y = Tensor::zeros(s);
        let (mut sm, mut siv) = (vec![0.0; s.c], vec![0.0; s.c]);
        h.batch_norm_forward_training(
            1.0,
            0.0,
            &d,
            x.as_slice(),
            &d,
            y.as_mut_slice(),
            &gamma,
            &[0.0, 0.0],
            BN_MIN_EPSILON,
            &mut sm,
            &mut siv,
        )
        .unwrap();
        let run = |saved_m: &[f32], saved_iv: &[f32]| -> (Tensor, Vec<f32>) {
            let mut dx = Tensor::zeros(s);
            let (mut dg, mut db) = (vec![0.0; s.c], vec![0.0; s.c]);
            h.batch_norm_backward(
                &d,
                x.as_slice(),
                &d,
                dy.as_slice(),
                &d,
                dx.as_mut_slice(),
                &gamma,
                &mut dg,
                &mut db,
                BN_MIN_EPSILON,
                saved_m,
                saved_iv,
            )
            .unwrap();
            (dx, dg)
        };
        let (dx_saved, dg_saved) = run(&sm, &siv);
        let (dx_fresh, dg_fresh) = run(&[], &[]);
        ucudnn_tensor::assert_all_close(&dx_saved, &dx_fresh, 1e-5);
        for (a, b) in dg_saved.iter().zip(&dg_fresh) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn tiny_epsilon_is_rejected() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let d = desc();
        let err = h
            .batch_norm_forward_training(
                1.0,
                0.0,
                &d,
                &[],
                &d,
                &mut [],
                &[],
                &[],
                1e-9,
                &mut [],
                &mut [],
            )
            .unwrap_err();
        assert!(matches!(err, CudnnError::BadParam(_)));
    }

    #[test]
    fn simulated_engine_prices_bn() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let d = desc();
        h.batch_norm_forward_training(
            1.0,
            0.0,
            &d,
            &[],
            &d,
            &mut [],
            &[],
            &[],
            BN_MIN_EPSILON,
            &mut [],
            &mut [],
        )
        .unwrap();
        assert!(h.elapsed_us() > 0.0);
    }
}
