//! `cudnnPoolingForward` / `cudnnPoolingBackward`.

use super::check_len;
use crate::descriptor::TensorDescriptor;
use crate::error::{CudnnError, Result};
use crate::handle::CudnnHandle;
use ucudnn_tensor::Shape4;

/// Pooling mode (`cudnnPoolingMode_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolingMode {
    /// Maximum over the window.
    Max,
    /// Average, dividing by the full window size (includes padding), the
    /// Caffe/cuDNN `AVERAGE_COUNT_INCLUDE_PADDING` convention.
    AverageIncludePadding,
}

/// `cudnnPoolingDescriptor_t` (2-D, possibly rectangular window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolingDescriptor {
    /// Mode.
    pub mode: PoolingMode,
    /// Window height.
    pub window_h: usize,
    /// Window width.
    pub window_w: usize,
    /// Height padding.
    pub pad_h: usize,
    /// Width padding.
    pub pad_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
}

impl PoolingDescriptor {
    /// Create a descriptor; strides must be positive.
    pub fn new_2d(
        mode: PoolingMode,
        window_h: usize,
        window_w: usize,
        pad_h: usize,
        pad_w: usize,
        stride_h: usize,
        stride_w: usize,
    ) -> Result<Self> {
        if stride_h == 0 || stride_w == 0 || window_h == 0 || window_w == 0 {
            return Err(CudnnError::BadParam(
                "pooling window/stride must be positive".into(),
            ));
        }
        Ok(Self {
            mode,
            window_h,
            window_w,
            pad_h,
            pad_w,
            stride_h,
            stride_w,
        })
    }

    /// Square-window convenience constructor.
    pub fn square(mode: PoolingMode, window: usize, pad: usize, stride: usize) -> Result<Self> {
        Self::new_2d(mode, window, window, pad, pad, stride, stride)
    }

    /// Output shape (Caffe/cuDNN ceil-mode).
    pub fn output_dim(&self, x: &TensorDescriptor) -> Shape4 {
        let s = x.shape();
        let oh = (s.h + 2 * self.pad_h - self.window_h).div_ceil(self.stride_h) + 1;
        let ow = (s.w + 2 * self.pad_w - self.window_w).div_ceil(self.stride_w) + 1;
        Shape4::new(s.n, s.c, oh, ow)
    }

    /// Clipped window bounds along one axis.
    fn window(
        &self,
        p: usize,
        stride: usize,
        pad: usize,
        window: usize,
        len: usize,
    ) -> (usize, usize) {
        let start = (p * stride) as isize - pad as isize;
        let lo = start.max(0) as usize;
        let hi = ((start + window as isize).max(0) as usize).min(len);
        (lo, hi.max(lo))
    }
}

impl CudnnHandle {
    /// `y = alpha * pool(x) + beta * y`.
    ///
    /// # Errors
    /// Shape mismatches and engine-contract violations.
    #[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
    pub fn pooling_forward(
        &self,
        pool: &PoolingDescriptor,
        alpha: f32,
        x_desc: &TensorDescriptor,
        x: &[f32],
        beta: f32,
        y_desc: &TensorDescriptor,
        y: &mut [f32],
    ) -> Result<()> {
        let ys = pool.output_dim(x_desc);
        if y_desc.shape() != ys {
            return Err(CudnnError::BadParam(format!(
                "pooling output descriptor {} does not match computed {ys}",
                y_desc.shape()
            )));
        }
        check_len("x", x.len(), x_desc.len())?;
        check_len("y", y.len(), ys.len())?;
        let xs = x_desc.shape();
        let bytes = 4 * (ys.len() * pool.window_h * pool.window_w / 2 + ys.len());
        self.aux_op(bytes, !x.is_empty() || !y.is_empty(), || {
            let inv = 1.0 / (pool.window_h * pool.window_w) as f32;
            for ni in 0..ys.n {
                for ci in 0..ys.c {
                    for p in 0..ys.h {
                        let (hlo, hhi) =
                            pool.window(p, pool.stride_h, pool.pad_h, pool.window_h, xs.h);
                        for q in 0..ys.w {
                            let (wlo, whi) =
                                pool.window(q, pool.stride_w, pool.pad_w, pool.window_w, xs.w);
                            let mut acc = match pool.mode {
                                PoolingMode::Max => f32::NEG_INFINITY,
                                PoolingMode::AverageIncludePadding => 0.0,
                            };
                            for hi in hlo..hhi {
                                for wi in wlo..whi {
                                    let v = x[xs.index(ni, ci, hi, wi)];
                                    acc = match pool.mode {
                                        PoolingMode::Max => acc.max(v),
                                        PoolingMode::AverageIncludePadding => acc + v,
                                    };
                                }
                            }
                            let val = match pool.mode {
                                PoolingMode::Max => {
                                    if hlo == hhi || wlo == whi {
                                        0.0
                                    } else {
                                        acc
                                    }
                                }
                                PoolingMode::AverageIncludePadding => acc * inv,
                            };
                            let o = ys.index(ni, ci, p, q);
                            y[o] = alpha * val + beta * y[o];
                        }
                    }
                }
            }
            Ok(())
        })
    }

    /// `dx = alpha * pool'(dy) + beta * dx` (max routes to the argmax
    /// recomputed from `x`; average distributes uniformly).
    ///
    /// # Errors
    /// Shape mismatches and engine-contract violations.
    #[allow(clippy::too_many_arguments)]
    pub fn pooling_backward(
        &self,
        pool: &PoolingDescriptor,
        alpha: f32,
        y_desc: &TensorDescriptor,
        _y: &[f32],
        dy_desc: &TensorDescriptor,
        dy: &[f32],
        x_desc: &TensorDescriptor,
        x: &[f32],
        beta: f32,
        dx_desc: &TensorDescriptor,
        dx: &mut [f32],
    ) -> Result<()> {
        let ys = pool.output_dim(x_desc);
        if y_desc.shape() != ys || dy_desc.shape() != ys || dx_desc.shape() != x_desc.shape() {
            return Err(CudnnError::BadParam(
                "pooling gradient shapes must match".into(),
            ));
        }
        check_len("dy", dy.len(), ys.len())?;
        check_len("x", x.len(), x_desc.len())?;
        check_len("dx", dx.len(), x_desc.len())?;
        let xs = x_desc.shape();
        let bytes = 4 * (2 * xs.len() + 2 * ys.len());
        let any = !dy.is_empty() || !x.is_empty() || !dx.is_empty();
        self.aux_op(bytes, any, || {
            if beta != 1.0 {
                for v in dx.iter_mut() {
                    *v *= beta;
                }
            }
            let inv = 1.0 / (pool.window_h * pool.window_w) as f32;
            for ni in 0..ys.n {
                for ci in 0..ys.c {
                    for p in 0..ys.h {
                        let (hlo, hhi) =
                            pool.window(p, pool.stride_h, pool.pad_h, pool.window_h, xs.h);
                        for q in 0..ys.w {
                            let (wlo, whi) =
                                pool.window(q, pool.stride_w, pool.pad_w, pool.window_w, xs.w);
                            let g = alpha * dy[ys.index(ni, ci, p, q)];
                            match pool.mode {
                                PoolingMode::Max => {
                                    let (mut bh, mut bw, mut bv) =
                                        (usize::MAX, usize::MAX, f32::NEG_INFINITY);
                                    for hi in hlo..hhi {
                                        for wi in wlo..whi {
                                            let v = x[xs.index(ni, ci, hi, wi)];
                                            if v > bv {
                                                (bh, bw, bv) = (hi, wi, v);
                                            }
                                        }
                                    }
                                    if bh != usize::MAX {
                                        dx[xs.index(ni, ci, bh, bw)] += g;
                                    }
                                }
                                PoolingMode::AverageIncludePadding => {
                                    for hi in hlo..hhi {
                                        for wi in wlo..whi {
                                            dx[xs.index(ni, ci, hi, wi)] += g * inv;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::Tensor;

    #[test]
    fn output_dim_matches_caffe_ceil_mode() {
        let x = TensorDescriptor::new_4d(1, 1, 55, 55).unwrap();
        let p = PoolingDescriptor::square(PoolingMode::Max, 3, 0, 2).unwrap();
        assert_eq!(p.output_dim(&x), Shape4::new(1, 1, 27, 27));
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let h = CudnnHandle::real_cpu();
        let xd = TensorDescriptor::new_4d(1, 1, 2, 2).unwrap();
        let p = PoolingDescriptor::square(PoolingMode::Max, 2, 0, 2).unwrap();
        let yd = TensorDescriptor::from_shape(p.output_dim(&xd)).unwrap();
        let x = Tensor::from_vec(xd.shape(), vec![1.0, 4.0, 2.0, 3.0]);
        let mut y = Tensor::zeros(yd.shape());
        h.pooling_forward(&p, 1.0, &xd, x.as_slice(), 0.0, &yd, y.as_mut_slice())
            .unwrap();
        assert_eq!(y.as_slice(), &[4.0]);
        let dy = Tensor::full(yd.shape(), 5.0);
        let mut dx = Tensor::zeros(xd.shape());
        h.pooling_backward(
            &p,
            1.0,
            &yd,
            y.as_slice(),
            &yd,
            dy.as_slice(),
            &xd,
            x.as_slice(),
            0.0,
            &xd,
            dx.as_mut_slice(),
        )
        .unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn average_pool_is_linear_adjoint() {
        // <pool(x), dy> == <x, pool'(dy)> for the (linear) average mode.
        let h = CudnnHandle::real_cpu();
        let xd = TensorDescriptor::new_4d(2, 3, 7, 9).unwrap();
        let p = PoolingDescriptor::square(PoolingMode::AverageIncludePadding, 3, 1, 2).unwrap();
        let yd = TensorDescriptor::from_shape(p.output_dim(&xd)).unwrap();
        let x = Tensor::random(xd.shape(), 1);
        let dy = Tensor::random(yd.shape(), 2);
        let mut y = Tensor::zeros(yd.shape());
        h.pooling_forward(&p, 1.0, &xd, x.as_slice(), 0.0, &yd, y.as_mut_slice())
            .unwrap();
        let mut dx = Tensor::zeros(xd.shape());
        h.pooling_backward(
            &p,
            1.0,
            &yd,
            y.as_slice(),
            &yd,
            dy.as_slice(),
            &xd,
            x.as_slice(),
            0.0,
            &xd,
            dx.as_mut_slice(),
        )
        .unwrap();
        let lhs: f64 = y
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(dx.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn global_average_pool_via_full_window() {
        let h = CudnnHandle::real_cpu();
        let xd = TensorDescriptor::new_4d(1, 2, 4, 4).unwrap();
        let p = PoolingDescriptor::new_2d(PoolingMode::AverageIncludePadding, 4, 4, 0, 0, 4, 4)
            .unwrap();
        let yd = TensorDescriptor::from_shape(p.output_dim(&xd)).unwrap();
        assert_eq!(yd.shape(), Shape4::new(1, 2, 1, 1));
        let x = Tensor::full(xd.shape(), 3.0);
        let mut y = Tensor::zeros(yd.shape());
        h.pooling_forward(&p, 1.0, &xd, x.as_slice(), 0.0, &yd, y.as_mut_slice())
            .unwrap();
        assert_eq!(y.as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn simulated_pooling_prices_by_window_traffic() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let xd = TensorDescriptor::new_4d(64, 64, 55, 55).unwrap();
        let p = PoolingDescriptor::square(PoolingMode::Max, 3, 0, 2).unwrap();
        let yd = TensorDescriptor::from_shape(p.output_dim(&xd)).unwrap();
        h.pooling_forward(&p, 1.0, &xd, &[], 0.0, &yd, &mut [])
            .unwrap();
        assert!(h.elapsed_us() > 0.0);
    }

    #[test]
    fn wrong_output_descriptor_rejected() {
        let h = CudnnHandle::real_cpu();
        let xd = TensorDescriptor::new_4d(1, 1, 8, 8).unwrap();
        let p = PoolingDescriptor::square(PoolingMode::Max, 2, 0, 2).unwrap();
        let bad = TensorDescriptor::new_4d(1, 1, 3, 3).unwrap();
        assert!(h
            .pooling_forward(&p, 1.0, &xd, &[], 0.0, &bad, &mut [])
            .is_err());
    }
}
