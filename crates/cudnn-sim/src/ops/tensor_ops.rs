//! `cudnnAddTensor` (broadcast bias add) and
//! `cudnnConvolutionBackwardBias`.

use super::check_len;
use crate::descriptor::TensorDescriptor;
use crate::error::{CudnnError, Result};
use crate::handle::CudnnHandle;

impl CudnnHandle {
    /// `y = alpha * broadcast(b) + beta * y` where `b` is a `(1, C, 1, 1)`
    /// bias tensor broadcast over N/H/W — the add Caffe issues after each
    /// convolution.
    ///
    /// # Errors
    /// Shape mismatches and engine-contract violations.
    pub fn add_tensor(
        &self,
        alpha: f32,
        b_desc: &TensorDescriptor,
        b: &[f32],
        beta: f32,
        y_desc: &TensorDescriptor,
        y: &mut [f32],
    ) -> Result<()> {
        let bs = b_desc.shape();
        let ys = y_desc.shape();
        if bs.n != 1 || bs.h != 1 || bs.w != 1 || bs.c != ys.c {
            return Err(CudnnError::BadParam(format!(
                "add_tensor supports (1, C, 1, 1) bias broadcast; got bias {bs} for {ys}"
            )));
        }
        check_len("b", b.len(), bs.len())?;
        check_len("y", y.len(), ys.len())?;
        let bytes = 4 * 2 * ys.len();
        self.aux_op(bytes, !b.is_empty() || !y.is_empty(), || {
            let plane = ys.h * ys.w;
            for ni in 0..ys.n {
                for (ci, bias) in b.iter().enumerate() {
                    let base = (ni * ys.c + ci) * plane;
                    for v in &mut y[base..base + plane] {
                        *v = alpha * bias + beta * *v;
                    }
                }
            }
            Ok(())
        })
    }

    /// `db = alpha * Σ_{n,h,w} dy + beta * db` — the bias gradient.
    ///
    /// # Errors
    /// Shape mismatches and engine-contract violations.
    pub fn convolution_backward_bias(
        &self,
        alpha: f32,
        dy_desc: &TensorDescriptor,
        dy: &[f32],
        beta: f32,
        db_desc: &TensorDescriptor,
        db: &mut [f32],
    ) -> Result<()> {
        let ys = dy_desc.shape();
        let bs = db_desc.shape();
        if bs.n != 1 || bs.h != 1 || bs.w != 1 || bs.c != ys.c {
            return Err(CudnnError::BadParam(format!(
                "bias gradient must be (1, C, 1, 1); got {bs} for {ys}"
            )));
        }
        check_len("dy", dy.len(), ys.len())?;
        check_len("db", db.len(), bs.len())?;
        let bytes = 4 * ys.len();
        self.aux_op(bytes, !dy.is_empty() || !db.is_empty(), || {
            let plane = ys.h * ys.w;
            for (ci, dbv) in db.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for ni in 0..ys.n {
                    let base = (ni * ys.c + ci) * plane;
                    for v in &dy[base..base + plane] {
                        acc += v;
                    }
                }
                *dbv = alpha * acc + beta * *dbv;
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{Shape4, Tensor};

    #[test]
    fn add_tensor_broadcasts_bias() {
        let h = CudnnHandle::real_cpu();
        let yd = TensorDescriptor::from_shape(Shape4::new(2, 3, 2, 2)).unwrap();
        let bd = TensorDescriptor::from_shape(Shape4::new(1, 3, 1, 1)).unwrap();
        let bias = [1.0f32, 2.0, 3.0];
        let mut y = Tensor::zeros(yd.shape());
        h.add_tensor(1.0, &bd, &bias, 1.0, &yd, y.as_mut_slice())
            .unwrap();
        for ni in 0..2 {
            for (ci, b) in bias.iter().enumerate() {
                assert_eq!(y.get(ni, ci, 1, 1), *b);
            }
        }
    }

    #[test]
    fn backward_bias_is_adjoint_of_add() {
        // <broadcast(b), dy> == <b, bias_grad(dy)>.
        let h = CudnnHandle::real_cpu();
        let yd = TensorDescriptor::from_shape(Shape4::new(3, 4, 5, 5)).unwrap();
        let bd = TensorDescriptor::from_shape(Shape4::new(1, 4, 1, 1)).unwrap();
        let b = Tensor::random(bd.shape(), 1);
        let dy = Tensor::random(yd.shape(), 2);
        let mut broadcast = Tensor::zeros(yd.shape());
        h.add_tensor(1.0, &bd, b.as_slice(), 0.0, &yd, broadcast.as_mut_slice())
            .unwrap();
        let mut db = Tensor::zeros(bd.shape());
        h.convolution_backward_bias(1.0, &yd, dy.as_slice(), 0.0, &bd, db.as_mut_slice())
            .unwrap();
        let lhs: f64 = broadcast
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, c)| (*a as f64) * (*c as f64))
            .sum();
        let rhs: f64 = b
            .as_slice()
            .iter()
            .zip(db.as_slice())
            .map(|(a, c)| (*a as f64) * (*c as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn non_bias_shapes_rejected() {
        let h = CudnnHandle::real_cpu();
        let yd = TensorDescriptor::from_shape(Shape4::new(2, 3, 2, 2)).unwrap();
        let bad = TensorDescriptor::from_shape(Shape4::new(1, 2, 1, 1)).unwrap();
        assert!(h.add_tensor(1.0, &bad, &[], 0.0, &yd, &mut []).is_err());
    }

    #[test]
    fn simulated_bias_ops_price() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let yd = TensorDescriptor::from_shape(Shape4::new(64, 64, 27, 27)).unwrap();
        let bd = TensorDescriptor::from_shape(Shape4::new(1, 64, 1, 1)).unwrap();
        h.add_tensor(1.0, &bd, &[], 1.0, &yd, &mut []).unwrap();
        h.convolution_backward_bias(1.0, &yd, &[], 0.0, &bd, &mut [])
            .unwrap();
        assert_eq!(h.kernels_launched(), 2);
    }
}
