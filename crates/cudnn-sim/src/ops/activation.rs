//! `cudnnActivationForward` / `cudnnActivationBackward`.

use super::check_len;
use crate::descriptor::TensorDescriptor;
use crate::error::{CudnnError, Result};
use crate::handle::CudnnHandle;

/// Activation function (`cudnnActivationMode_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationMode {
    /// `max(0, x)`.
    Relu,
    /// `1 / (1 + e^{-x})`.
    Sigmoid,
    /// `tanh(x)`.
    Tanh,
}

/// `cudnnActivationDescriptor_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationDescriptor {
    /// Which function.
    pub mode: ActivationMode,
}

impl ActivationDescriptor {
    /// Create a descriptor.
    pub fn new(mode: ActivationMode) -> Self {
        Self { mode }
    }

    fn eval(&self, x: f32) -> f32 {
        match self.mode {
            ActivationMode::Relu => x.max(0.0),
            ActivationMode::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationMode::Tanh => x.tanh(),
        }
    }

    /// `dy/dx` expressed, as cuDNN does, through `x` and `y = f(x)`.
    fn grad(&self, x: f32, y: f32) -> f32 {
        match self.mode {
            ActivationMode::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationMode::Sigmoid => y * (1.0 - y),
            ActivationMode::Tanh => 1.0 - y * y,
        }
    }
}

impl CudnnHandle {
    /// `y = alpha * f(x) + beta * y`.
    ///
    /// # Errors
    /// Shape mismatches and engine-contract violations.
    #[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
    pub fn activation_forward(
        &self,
        act: &ActivationDescriptor,
        alpha: f32,
        x_desc: &TensorDescriptor,
        x: &[f32],
        beta: f32,
        y_desc: &TensorDescriptor,
        y: &mut [f32],
    ) -> Result<()> {
        if x_desc.shape() != y_desc.shape() {
            return Err(CudnnError::BadParam("activation shapes must match".into()));
        }
        check_len("x", x.len(), x_desc.len())?;
        check_len("y", y.len(), y_desc.len())?;
        let bytes = 2 * 4 * x_desc.len();
        self.aux_op(bytes, !x.is_empty() || !y.is_empty(), || {
            for (yo, &xi) in y.iter_mut().zip(x) {
                *yo = alpha * act.eval(xi) + beta * *yo;
            }
            Ok(())
        })
    }

    /// `dx = alpha * f'(x) ⊙ dy + beta * dx` (cuDNN signature: takes `y`,
    /// `dy` and `x`).
    ///
    /// # Errors
    /// Shape mismatches and engine-contract violations.
    #[allow(clippy::too_many_arguments)]
    pub fn activation_backward(
        &self,
        act: &ActivationDescriptor,
        alpha: f32,
        y_desc: &TensorDescriptor,
        y: &[f32],
        dy_desc: &TensorDescriptor,
        dy: &[f32],
        x_desc: &TensorDescriptor,
        x: &[f32],
        beta: f32,
        dx_desc: &TensorDescriptor,
        dx: &mut [f32],
    ) -> Result<()> {
        let s = x_desc.shape();
        if y_desc.shape() != s || dy_desc.shape() != s || dx_desc.shape() != s {
            return Err(CudnnError::BadParam(
                "activation gradient shapes must match".into(),
            ));
        }
        check_len("y", y.len(), s.len())?;
        check_len("dy", dy.len(), s.len())?;
        check_len("x", x.len(), s.len())?;
        check_len("dx", dx.len(), s.len())?;
        let bytes = 4 * 4 * s.len();
        let any = !y.is_empty() || !dy.is_empty() || !x.is_empty() || !dx.is_empty();
        self.aux_op(bytes, any, || {
            for i in 0..dx.len() {
                dx[i] = alpha * act.grad(x[i], y[i]) * dy[i] + beta * dx[i];
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{Shape4, Tensor};

    fn desc() -> TensorDescriptor {
        TensorDescriptor::from_shape(Shape4::new(2, 3, 4, 4)).unwrap()
    }

    #[test]
    fn relu_forward_clamps_negatives() {
        let h = CudnnHandle::real_cpu();
        let d = desc();
        let x = Tensor::random(d.shape(), 1);
        let mut y = Tensor::zeros(d.shape());
        let act = ActivationDescriptor::new(ActivationMode::Relu);
        h.activation_forward(&act, 1.0, &d, x.as_slice(), 0.0, &d, y.as_mut_slice())
            .unwrap();
        for (&xi, &yi) in x.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(yi, xi.max(0.0));
        }
    }

    /// Finite-difference check of every activation's backward pass.
    #[test]
    fn backward_matches_finite_differences() {
        let h = CudnnHandle::real_cpu();
        let d = desc();
        for mode in [
            ActivationMode::Relu,
            ActivationMode::Sigmoid,
            ActivationMode::Tanh,
        ] {
            let act = ActivationDescriptor::new(mode);
            let x = Tensor::random(d.shape(), 7);
            let dy = Tensor::random(d.shape(), 8);
            let mut y = Tensor::zeros(d.shape());
            h.activation_forward(&act, 1.0, &d, x.as_slice(), 0.0, &d, y.as_mut_slice())
                .unwrap();
            let mut dx = Tensor::zeros(d.shape());
            h.activation_backward(
                &act,
                1.0,
                &d,
                y.as_slice(),
                &d,
                dy.as_slice(),
                &d,
                x.as_slice(),
                0.0,
                &d,
                dx.as_mut_slice(),
            )
            .unwrap();
            // d/dx <f(x), dy> at index i equals dx[i].
            let eps = 1e-2f32;
            for i in [0usize, 10, 50] {
                let xi = x.as_slice()[i];
                if mode == ActivationMode::Relu && xi.abs() < 2.0 * eps {
                    continue; // kink
                }
                let fp = act.eval(xi + eps) * dy.as_slice()[i];
                let fm = act.eval(xi - eps) * dy.as_slice()[i];
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (dx.as_slice()[i] - numeric).abs() < 1e-2,
                    "{mode:?} at {i}: {} vs {numeric}",
                    dx.as_slice()[i]
                );
            }
        }
    }

    #[test]
    fn simulated_engine_prices_without_data() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let d = desc();
        let act = ActivationDescriptor::new(ActivationMode::Relu);
        h.activation_forward(&act, 1.0, &d, &[], 0.0, &d, &mut [])
            .unwrap();
        assert!(h.elapsed_us() > 0.0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let h = CudnnHandle::real_cpu();
        let a = desc();
        let b = TensorDescriptor::from_shape(Shape4::new(2, 3, 4, 5)).unwrap();
        let act = ActivationDescriptor::new(ActivationMode::Relu);
        assert!(h
            .activation_forward(&act, 1.0, &a, &[], 0.0, &b, &mut [])
            .is_err());
    }
}
