//! Auxiliary cuDNN primitives beyond convolution.
//!
//! Caffe's cuDNN-backed layers also call `cudnnAddTensor`,
//! `cudnnActivationForward/Backward`, `cudnnPoolingForward/Backward`,
//! `cudnnBatchNormalizationForwardTraining/Backward` and
//! `cudnnConvolutionBackwardBias`. These are outside μ-cuDNN's optimization
//! scope (the paper highlights them only as the "other" bars of its timing
//! breakdowns) but the framework substrate needs them, so they are
//! implemented here with the same two-engine contract as the convolution
//! calls: real CPU arithmetic under `Engine::RealCpu`, a memory-bandwidth
//! cost model and empty data buffers under `Engine::Simulated`.

pub mod activation;
pub mod batchnorm;
pub mod pooling;
pub mod tensor_ops;

pub use activation::{ActivationDescriptor, ActivationMode};
pub use batchnorm::BN_MIN_EPSILON;
pub use pooling::{PoolingDescriptor, PoolingMode};

use crate::error::{CudnnError, Result};
use crate::handle::{CudnnHandle, Engine};
use ucudnn_gpu_model::memory_bound_time_us;

impl CudnnHandle {
    /// Shared execution shell for auxiliary (non-convolution) kernels.
    ///
    /// * Simulated: all data slices must be empty; the virtual clock
    ///   advances by the memory-bound model for `bytes_moved`.
    /// * RealCpu: `compute` runs and the clock advances by wall time.
    pub(crate) fn aux_op(
        &self,
        bytes_moved: usize,
        any_data: bool,
        compute: impl FnOnce() -> Result<()>,
    ) -> Result<()> {
        match self.engine() {
            Engine::Simulated(d) => {
                if any_data {
                    return Err(CudnnError::BadParam(
                        "the simulated engine takes empty data slices; use RealCpu for numerics"
                            .into(),
                    ));
                }
                self.advance(memory_bound_time_us(d, bytes_moved as f64));
                Ok(())
            }
            Engine::RealCpu => {
                let start = std::time::Instant::now();
                compute()?;
                self.advance(start.elapsed().as_secs_f64() * 1e6);
                Ok(())
            }
        }
    }
}

/// Check a data slice against its descriptor length: either empty
/// (simulated) or exactly matching (real).
pub(crate) fn check_len(name: &str, got: usize, want: usize) -> Result<()> {
    if got != 0 && got != want {
        return Err(CudnnError::BadParam(format!(
            "{name} buffer has {got} elements, descriptor says {want}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::TensorDescriptor;
    use ucudnn_gpu_model::p100_sxm2;

    #[test]
    fn simulated_aux_op_prices_by_bytes() {
        let h = CudnnHandle::simulated(p100_sxm2());
        h.aux_op(1_000_000, false, || {
            unreachable!("simulated must not compute")
        })
        .unwrap();
        let small = h.elapsed_us();
        h.reset_clock();
        h.aux_op(100_000_000, false, || unreachable!()).unwrap();
        assert!(h.elapsed_us() > small);
    }

    #[test]
    fn simulated_aux_op_rejects_data() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let err = h.aux_op(10, true, || Ok(())).unwrap_err();
        assert!(matches!(err, CudnnError::BadParam(_)));
    }

    #[test]
    fn real_aux_op_computes() {
        let h = CudnnHandle::real_cpu();
        let mut ran = false;
        h.aux_op(10, true, || {
            ran = true;
            Ok(())
        })
        .unwrap();
        assert!(ran);
        assert_eq!(h.kernels_launched(), 1);
    }

    #[test]
    fn check_len_accepts_empty_and_exact() {
        let d = TensorDescriptor::new_4d(2, 3, 4, 4).unwrap();
        assert!(check_len("x", 0, d.len()).is_ok());
        assert!(check_len("x", d.len(), d.len()).is_ok());
        assert!(check_len("x", 5, d.len()).is_err());
    }
}
