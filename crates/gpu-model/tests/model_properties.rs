//! Property tests on the GPU performance model: the structural invariants
//! the μ-cuDNN optimizer relies on must hold for *every* geometry, not just
//! the paper's layers.

use proptest::prelude::*;
use ucudnn_gpu_model::{
    enumerate, fastest_within, kernel_time_us, p100_sxm2, workspace_bytes, ConvAlgo, ConvOp,
};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

fn geometries() -> impl Strategy<Value = ConvGeometry> {
    (
        2usize..=64,
        1usize..=64,
        6usize..=56,
        1usize..=128,
        1usize..=3,
        0usize..=2,
        1usize..=2,
    )
        .prop_map(|(n, c, hw, k, half_r, pad, stride)| {
            let r = 2 * half_r - 1;
            ConvGeometry::with_square(
                Shape4::new(n, c, hw.max(r), hw.max(r)),
                FilterShape::new(k, c, r, r),
                pad.min(r - 1),
                stride,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Workspace never shrinks when the batch grows (the monotonicity the
    /// WR DP depends on: a smaller micro-batch can only relax the limit).
    #[test]
    fn workspace_is_monotone_in_batch(g in geometries(), op_i in 0usize..3) {
        let op = ConvOp::ALL[op_i];
        for algo in ConvAlgo::ALL {
            let small = workspace_bytes(algo, op, &g.with_batch(g.input.n / 2 + 1));
            let large = workspace_bytes(algo, op, &g);
            if let (Some(s), Some(l)) = (small, large) {
                prop_assert!(s <= l, "{algo} {op}: ws({}) = {s} > ws({}) = {l}", g.input.n / 2 + 1, g.input.n);
            }
        }
    }

    /// Times are positive and finite, and *per-sample* time never grows
    /// with the batch: bigger batches amortize fixed costs and fill the
    /// machine better. (Absolute time need not be strictly monotone at tiny
    /// batches — real cuDNN benchmark tables aren't either — and the WR DP
    /// takes per-size minima without assuming it. The property the DP does
    /// rely on, that splitting a batch under one algorithm never pays, is
    /// checked separately below.)
    #[test]
    fn per_sample_time_never_grows_with_batch(g in geometries(), op_i in 0usize..3) {
        let op = ConvOp::ALL[op_i];
        let d = p100_sxm2();
        let small_n = g.input.n / 2 + 1;
        for algo in ConvAlgo::ALL {
            let t_small = kernel_time_us(&d, algo, op, &g.with_batch(small_n));
            let t_large = kernel_time_us(&d, algo, op, &g);
            if let (Some(s), Some(l)) = (t_small, t_large) {
                prop_assert!(s.is_finite() && s > 0.0);
                let per_small = s / small_n as f64;
                let per_large = l / g.input.n as f64;
                prop_assert!(
                    per_large <= per_small * (1.0 + 1e-9),
                    "{algo} {op}: per-sample time grew ({per_small} @ {small_n} -> {per_large} @ {})",
                    g.input.n
                );
            }
        }
    }

    /// There is always a zero-workspace fallback, so `fastest_within` is
    /// total for any limit — the property that makes cuDNN's limit API (and
    /// the WR DP's feasibility) safe.
    #[test]
    fn zero_workspace_fallback_always_exists(g in geometries(), op_i in 0usize..3) {
        let op = ConvOp::ALL[op_i];
        let d = p100_sxm2();
        let p = fastest_within(&d, op, &g, 0);
        prop_assert!(p.is_some(), "no zero-workspace algorithm for {op} on {g}");
        prop_assert_eq!(p.unwrap().workspace_bytes, 0);
    }

    /// `enumerate` is sorted and `fastest_within` is consistent with it.
    #[test]
    fn enumeration_consistency(g in geometries(), op_i in 0usize..3, limit_mib in 0usize..256) {
        let op = ConvOp::ALL[op_i];
        let d = p100_sxm2();
        let all = enumerate(&d, op, &g);
        prop_assert!(all.windows(2).all(|w| w[0].time_us <= w[1].time_us));
        let limit = limit_mib << 20;
        let fw = fastest_within(&d, op, &g, limit).unwrap();
        prop_assert!(fw.workspace_bytes <= limit);
        // Nothing in the enumeration that fits is faster.
        for p in &all {
            if p.workspace_bytes <= limit {
                prop_assert!(fw.time_us <= p.time_us + 1e-12);
                break; // first fitting entry is the answer
            }
        }
    }

    /// Splitting a batch in two never reduces total modeled time (launch
    /// overhead + lost utilization): the DP's gains must come from
    /// *algorithm changes*, not from the model rewarding splits per se.
    #[test]
    fn same_algorithm_splitting_never_pays(g in geometries(), op_i in 0usize..3) {
        let op = ConvOp::ALL[op_i];
        prop_assume!(g.input.n >= 2);
        let d = p100_sxm2();
        let half = g.input.n / 2;
        for algo in ConvAlgo::ALL {
            let full = kernel_time_us(&d, algo, op, &g);
            let a = kernel_time_us(&d, algo, op, &g.with_batch(half));
            let b = kernel_time_us(&d, algo, op, &g.with_batch(g.input.n - half));
            if let (Some(f), Some(x), Some(y)) = (full, a, b) {
                prop_assert!(x + y >= f - 1e-6, "{algo} {op}: split {x}+{y} beats whole {f}");
            }
        }
    }
}
