//! Per-algorithm execution-time model.
//!
//! Each kernel is modeled with a roofline:
//! `time = max(flops / (peak · eff · util), bytes / bandwidth) + launches · overhead`.
//!
//! * `flops` is the algorithm's real arithmetic count (FFT counts transforms
//!   plus pointwise products; Winograd counts the reduced multiplies plus
//!   transform overhead), so algorithmic advantages emerge from arithmetic,
//!   not hand-tuned constants.
//! * `eff` is a per-algorithm achievable fraction of peak.
//! * `util` is a saturating occupancy curve in the amount of parallel work —
//!   this is what makes tiny micro-batches slower per sample and gives the
//!   DP optimizer a real trade-off to navigate.
//! * the fixed launch overhead penalizes fine-grained division.
//!
//! The model is a pure function of (device, algorithm, op, geometry): fully
//! deterministic, so every experiment in this repository is reproducible
//! bit-for-bit.

use crate::algo::{algo_supported, ConvAlgo, ConvOp};
use crate::device::DeviceSpec;
use crate::workspace::workspace_bytes;
use ucudnn_tensor::ConvGeometry;

/// Achievable fraction of peak FLOP/s per algorithm family.
fn base_efficiency(algo: ConvAlgo) -> f64 {
    match algo {
        ConvAlgo::ImplicitGemm => 0.42,
        ConvAlgo::ImplicitPrecompGemm => 0.58,
        ConvAlgo::Gemm => 0.52,
        ConvAlgo::Direct => 0.0,
        ConvAlgo::Fft => 0.30,
        ConvAlgo::FftTiling => 0.32,
        ConvAlgo::Winograd => 0.62,
        ConvAlgo::WinogradNonfused => 0.58,
    }
}

/// Kernel launches per operation (FFT/Winograd-nonfused are 3-stage
/// pipelines: transform, batched product, inverse transform).
fn launches(algo: ConvAlgo) -> f64 {
    match algo {
        ConvAlgo::Fft | ConvAlgo::FftTiling | ConvAlgo::WinogradNonfused => 3.0,
        _ => 1.0,
    }
}

/// Saturating occupancy: how well the geometry fills `sm_count` SMs.
fn utilization(d: &DeviceSpec, g: &ConvGeometry) -> f64 {
    // Independent thread-block-sized work units: one per (sample, 64-filter
    // group, 256-output-pixel tile).
    let pt = g.input.n as f64
        * (g.filter.k as f64 / 64.0).ceil()
        * ((g.out_h() * g.out_w()) as f64 / 256.0).ceil();
    pt / (pt + d.sm_count as f64)
}

fn fft_edge(image: usize, kernel: usize) -> usize {
    (image + kernel - 1).max(1).next_power_of_two()
}

/// Arithmetic performed by the algorithm, in FLOPs.
fn algo_flops(algo: ConvAlgo, op: ConvOp, g: &ConvGeometry) -> f64 {
    let direct = g.flops() as f64;
    let (n, c, k) = (g.input.n as f64, g.input.c as f64, g.filter.k as f64);
    match algo {
        ConvAlgo::ImplicitGemm | ConvAlgo::ImplicitPrecompGemm | ConvAlgo::Gemm => direct,
        ConvAlgo::Direct => f64::INFINITY,
        ConvAlgo::Fft => {
            let fh = fft_edge(g.input.h, g.filter.r) as f64;
            let fw = fft_edge(g.input.w, g.filter.s) as f64;
            let grid = fh * fw;
            // Transform every plane of all three operands once.
            let planes = match op {
                ConvOp::Forward | ConvOp::BackwardData | ConvOp::BackwardFilter => {
                    n * c + k * c + n * k
                }
            };
            let transforms = 5.0 * grid * grid.log2() * planes;
            // Pointwise complex multiply-accumulate over the reduction dim.
            let pointwise = 8.0 * fh * (fw / 2.0 + 1.0) * n * k * c;
            transforms + pointwise
        }
        ConvAlgo::FftTiling => {
            let step_h = (32 - g.filter.r + 1).max(1) as f64;
            let step_w = (32 - g.filter.s + 1).max(1) as f64;
            let nt = (g.input.h as f64 / step_h).ceil() * (g.input.w as f64 / step_w).ceil();
            let grid: f64 = 32.0 * 32.0;
            let planes = nt * (n * c + n * k) + k * c;
            let transforms = 5.0 * grid * grid.log2() * planes;
            let pointwise = 8.0 * 32.0 * 17.0 * n * k * c * nt;
            transforms + pointwise
        }
        // F(2×2): 2.25× fewer multiplies, ~50% transform overhead.
        ConvAlgo::Winograd => direct / 2.25 * 1.5,
        // F(4×4): 4× fewer multiplies, ~80% transform overhead (explicit
        // global-memory staging of the transformed tiles).
        ConvAlgo::WinogradNonfused => direct / 4.0 * 1.8,
    }
}

/// Bytes moved through device memory (tensors once, workspace twice).
fn algo_bytes(algo: ConvAlgo, op: ConvOp, g: &ConvGeometry) -> f64 {
    let tensors = (g.input.bytes() + g.output().bytes() + g.filter.bytes()) as f64;
    let ws = workspace_bytes(algo, op, g).unwrap_or(0) as f64;
    match algo {
        ConvAlgo::ImplicitGemm | ConvAlgo::ImplicitPrecompGemm | ConvAlgo::Winograd => tensors,
        // N passes over the per-sample column matrix.
        ConvAlgo::Gemm => tensors + 2.0 * ws * g.input.n as f64,
        _ => tensors + 2.0 * ws,
    }
}

/// Modeled execution time in microseconds, or `None` when unsupported.
pub fn kernel_time_us(d: &DeviceSpec, algo: ConvAlgo, op: ConvOp, g: &ConvGeometry) -> Option<f64> {
    if !algo_supported(algo, op, g) || g.input.n == 0 {
        return None;
    }
    let mut eff = base_efficiency(algo) * utilization(d, g);
    // Backward-filter reduces over the batch, costing some efficiency.
    if op == ConvOp::BackwardFilter {
        eff *= 0.85;
    }
    let compute = algo_flops(algo, op, g) / (d.flops_per_us() * eff);
    let memory = algo_bytes(algo, op, g) / d.bytes_per_us();
    Some(compute.max(memory) + launches(algo) * d.launch_overhead_us)
}

/// Modeled time of a memory-bandwidth-bound auxiliary kernel (activation,
/// pooling, normalization, bias add) that moves `bytes` through device
/// memory. These layers have trivial arithmetic intensity, so a pure
/// bandwidth term plus launch overhead is the right model.
pub fn memory_bound_time_us(d: &DeviceSpec, bytes: f64) -> f64 {
    bytes / d.bytes_per_us() + d.launch_overhead_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{k80, p100_sxm2, v100_sxm2};
    use ucudnn_tensor::{FilterShape, Shape4};

    fn conv2() -> ConvGeometry {
        ConvGeometry::with_square(
            Shape4::new(256, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        )
    }

    fn resnet_3x3() -> ConvGeometry {
        ConvGeometry::with_square(
            Shape4::new(128, 64, 56, 56),
            FilterShape::new(64, 64, 3, 3),
            1,
            1,
        )
    }

    #[test]
    fn deterministic() {
        let d = p100_sxm2();
        let a = kernel_time_us(&d, ConvAlgo::Fft, ConvOp::Forward, &conv2()).unwrap();
        let b = kernel_time_us(&d, ConvAlgo::Fft, ConvOp::Forward, &conv2()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fft_beats_gemm_on_conv2_at_full_batch() {
        // The premise of Fig. 9: for 5×5 kernels the FFT algorithm is
        // substantially faster than GEMM when allowed enough workspace.
        let d = p100_sxm2();
        let gemm = kernel_time_us(&d, ConvAlgo::Gemm, ConvOp::Forward, &conv2()).unwrap();
        let fft = kernel_time_us(&d, ConvAlgo::Fft, ConvOp::Forward, &conv2()).unwrap();
        assert!(fft < gemm, "fft {fft} must beat gemm {gemm}");
        let ratio = gemm / fft;
        assert!(
            ratio > 1.5 && ratio < 6.0,
            "speedup {ratio} out of plausible range"
        );
    }

    #[test]
    fn winograd_beats_gemm_on_3x3() {
        let d = p100_sxm2();
        let gemm = kernel_time_us(&d, ConvAlgo::Gemm, ConvOp::Forward, &resnet_3x3()).unwrap();
        let wino = kernel_time_us(&d, ConvAlgo::Winograd, ConvOp::Forward, &resnet_3x3()).unwrap();
        assert!(wino < gemm);
    }

    #[test]
    fn micro_batching_has_sublinear_cost_until_overhead_dominates() {
        // 8 kernels of batch 32 must cost more than 1 kernel of batch 256
        // (launch overhead + redundant filter transforms), but not wildly
        // more — otherwise micro-batching could never win.
        let d = p100_sxm2();
        let full = kernel_time_us(&d, ConvAlgo::Fft, ConvOp::Forward, &conv2()).unwrap();
        let micro = 8.0
            * kernel_time_us(&d, ConvAlgo::Fft, ConvOp::Forward, &conv2().with_batch(32)).unwrap();
        assert!(micro > full);
        assert!(micro < 1.6 * full, "micro {micro} vs full {full}");
    }

    #[test]
    fn batch_1_is_inefficient() {
        // Per-sample time at micro-batch 1 must exceed per-sample time at
        // 256 — poor occupancy plus launch overhead.
        let d = p100_sxm2();
        let full = kernel_time_us(&d, ConvAlgo::Gemm, ConvOp::Forward, &conv2()).unwrap() / 256.0;
        let one =
            kernel_time_us(&d, ConvAlgo::Gemm, ConvOp::Forward, &conv2().with_batch(1)).unwrap();
        assert!(one > 2.0 * full, "one-sample {one} vs per-sample {full}");
    }

    #[test]
    fn newer_gpus_are_faster() {
        let g = conv2();
        let t_k80 = kernel_time_us(&k80(), ConvAlgo::Gemm, ConvOp::Forward, &g).unwrap();
        let t_p100 = kernel_time_us(&p100_sxm2(), ConvAlgo::Gemm, ConvOp::Forward, &g).unwrap();
        let t_v100 = kernel_time_us(&v100_sxm2(), ConvAlgo::Gemm, ConvOp::Forward, &g).unwrap();
        assert!(t_k80 > t_p100 && t_p100 > t_v100);
    }

    #[test]
    fn unsupported_is_none() {
        let d = p100_sxm2();
        assert!(kernel_time_us(&d, ConvAlgo::Direct, ConvOp::Forward, &conv2()).is_none());
        assert!(kernel_time_us(
            &d,
            ConvAlgo::Winograd,
            ConvOp::BackwardFilter,
            &resnet_3x3()
        )
        .is_none());
    }

    #[test]
    fn zero_batch_is_none() {
        let d = p100_sxm2();
        assert!(
            kernel_time_us(&d, ConvAlgo::Gemm, ConvOp::Forward, &conv2().with_batch(0)).is_none()
        );
    }

    #[test]
    fn time_scales_roughly_linearly_in_batch_at_scale() {
        let d = p100_sxm2();
        let t256 = kernel_time_us(&d, ConvAlgo::Gemm, ConvOp::Forward, &conv2()).unwrap();
        let t128 = kernel_time_us(
            &d,
            ConvAlgo::Gemm,
            ConvOp::Forward,
            &conv2().with_batch(128),
        )
        .unwrap();
        let ratio = t256 / t128;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }
}
