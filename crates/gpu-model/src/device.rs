//! Device cards for the GPUs in the paper's Table I.

/// Static description of a GPU used by the analytic performance model.
///
/// Values for the three built-in cards come from Table I of the paper
/// (single-precision peak, memory capacity, memory bandwidth); the
/// microarchitectural knobs (SM count, launch overhead) are taken from the
/// public specifications of the same parts.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. "P100-SXM2".
    pub name: String,
    /// Peak single-precision throughput in TFLOP/s.
    pub sp_tflops: f64,
    /// Device memory capacity in GiB.
    pub mem_gib: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Number of streaming multiprocessors (parallelism the model must fill).
    pub sm_count: usize,
    /// Fixed overhead per kernel launch in microseconds. This is what makes
    /// very fine micro-batch divisions unprofitable.
    pub launch_overhead_us: f64,
}

impl DeviceSpec {
    /// Peak single-precision throughput in FLOP/µs.
    pub fn flops_per_us(&self) -> f64 {
        self.sp_tflops * 1e12 / 1e6
    }

    /// Memory bandwidth in bytes/µs.
    pub fn bytes_per_us(&self) -> f64 {
        self.mem_bw_gbps * 1e9 / 1e6
    }

    /// Device memory capacity in bytes.
    pub fn mem_bytes(&self) -> usize {
        (self.mem_gib * 1024.0 * 1024.0 * 1024.0) as usize
    }
}

/// NVIDIA Tesla K80 (one GK210 die of the board, as frameworks see it).
/// Table I lists the dual-die board at 8.73 SP TFlop/s, 24 GiB, 480 GB/s;
/// a single CUDA device is half of that.
pub fn k80() -> DeviceSpec {
    DeviceSpec {
        name: "K80".to_string(),
        sp_tflops: 4.37,
        mem_gib: 12.0,
        mem_bw_gbps: 240.0,
        sm_count: 13,
        launch_overhead_us: 12.0,
    }
}

/// NVIDIA Tesla P100-SXM2 (Table I: 10.6 SP TFlop/s, 16 GiB HBM2, 732 GB/s).
pub fn p100_sxm2() -> DeviceSpec {
    DeviceSpec {
        name: "P100-SXM2".to_string(),
        sp_tflops: 10.6,
        mem_gib: 16.0,
        mem_bw_gbps: 732.0,
        sm_count: 56,
        launch_overhead_us: 8.0,
    }
}

/// NVIDIA Tesla V100-SXM2 (Table I: 15.7 SP TFlop/s, 16 GiB HBM2, 900 GB/s).
pub fn v100_sxm2() -> DeviceSpec {
    DeviceSpec {
        name: "V100-SXM2".to_string(),
        sp_tflops: 15.7,
        mem_gib: 16.0,
        mem_bw_gbps: 900.0,
        sm_count: 80,
        launch_overhead_us: 6.0,
    }
}

/// All three evaluation devices, in Table I order.
pub fn all_devices() -> Vec<DeviceSpec> {
    vec![k80(), p100_sxm2(), v100_sxm2()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let d = p100_sxm2();
        assert!((d.flops_per_us() - 10.6e6).abs() < 1.0);
        assert!((d.bytes_per_us() - 732e3).abs() < 1.0);
        assert_eq!(d.mem_bytes(), 16 * 1024 * 1024 * 1024);
    }

    #[test]
    fn devices_are_ordered_by_generation() {
        let ds = all_devices();
        assert_eq!(ds.len(), 3);
        assert!(ds[0].sp_tflops < ds[1].sp_tflops && ds[1].sp_tflops < ds[2].sp_tflops);
        assert!(ds[0].mem_bw_gbps < ds[1].mem_bw_gbps && ds[1].mem_bw_gbps < ds[2].mem_bw_gbps);
    }

    #[test]
    fn newer_devices_launch_faster() {
        assert!(k80().launch_overhead_us > p100_sxm2().launch_overhead_us);
        assert!(p100_sxm2().launch_overhead_us > v100_sxm2().launch_overhead_us);
    }

    /// Pin every card to the paper's Table I. The fleet tier builds its
    /// per-replica latency tables from these specs, so a silent edit here
    /// would skew the routing and arbiter results while all behavioural
    /// tests kept passing.
    #[test]
    fn k80_matches_table_i() {
        // Table I lists the dual-die K80 board: 8.73 SP TFlop/s, 24 GiB,
        // 480 GB/s. The card models the single GK210 die frameworks see,
        // i.e. half of each board figure (the die TFlop/s is rounded to
        // three significant digits: 8.73 / 2 = 4.365 ≈ 4.37).
        let d = k80();
        assert_eq!(d.name, "K80");
        assert!((2.0 * d.sp_tflops - 8.73).abs() < 0.02);
        assert!((2.0 * d.mem_gib - 24.0).abs() < 1e-9);
        assert!((2.0 * d.mem_bw_gbps - 480.0).abs() < 1e-9);
        assert_eq!(d.sm_count, 13);
    }

    #[test]
    fn p100_matches_table_i() {
        let d = p100_sxm2();
        assert_eq!(d.name, "P100-SXM2");
        assert!((d.sp_tflops - 10.6).abs() < 1e-9);
        assert!((d.mem_gib - 16.0).abs() < 1e-9);
        assert!((d.mem_bw_gbps - 732.0).abs() < 1e-9);
        assert_eq!(d.sm_count, 56);
    }

    #[test]
    fn v100_matches_table_i() {
        let d = v100_sxm2();
        assert_eq!(d.name, "V100-SXM2");
        assert!((d.sp_tflops - 15.7).abs() < 1e-9);
        assert!((d.mem_gib - 16.0).abs() < 1e-9);
        assert!((d.mem_bw_gbps - 900.0).abs() < 1e-9);
        assert_eq!(d.sm_count, 80);
    }
}
