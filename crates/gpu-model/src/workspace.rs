//! Per-algorithm workspace-size model.
//!
//! These formulas reproduce the *structure* of cuDNN's workspace demands,
//! which is what the paper's optimization exploits:
//!
//! * GEMM-family workspaces are small and batch-independent.
//! * FFT workspaces hold activation spectra (∝ batch size N) plus filter
//!   spectra (independent of N) — so halving the micro-batch shrinks the
//!   workspace sub-linearly, exactly the 213 MiB → 48.9 MiB @ N 256 → 32
//!   shape reported in §IV-A.
//! * Non-fused Winograd holds transformed tiles (∝ N) plus transformed
//!   filters (independent of N); the fused kernel streams its transforms and
//!   needs no workspace at all.

use crate::algo::{algo_supported, ConvAlgo, ConvOp};
use ucudnn_tensor::ConvGeometry;

/// FFT grid edge: next power of two covering a linear correlation.
fn fft_edge(image: usize, kernel: usize) -> usize {
    (image + kernel - 1).max(1).next_power_of_two()
}

/// Number of 32×32 FFT tiles covering one image plane.
fn fft_tiles(g: &ConvGeometry) -> usize {
    let step_h = (32 - g.filter.r + 1).max(1);
    let step_w = (32 - g.filter.s + 1).max(1);
    g.input.h.div_ceil(step_h) * g.input.w.div_ceil(step_w)
}

/// Winograd output-tile count for an `m x m` output tile.
fn winograd_tiles(g: &ConvGeometry, m: usize) -> usize {
    g.input.n * g.out_h().div_ceil(m) * g.out_w().div_ceil(m)
}

/// How many image spectra of each operand an FFT-family kernel keeps
/// resident, by operation: (batch-scaled planes, fixed planes).
fn fft_plane_counts(op: ConvOp, g: &ConvGeometry) -> (usize, usize) {
    let (n, c, k) = (g.input.n, g.input.c, g.filter.k);
    match op {
        // x spectra (N·C) and y spectra streamed per-image; filters fixed.
        ConvOp::Forward => (n * c, k * c),
        ConvOp::BackwardData => (n * k, k * c),
        // Both operands scale with the batch; nothing is fixed.
        ConvOp::BackwardFilter => (n * c + n * k, 0),
    }
}

/// Modeled workspace requirement in bytes. Returns `None` when the
/// (algo, op, geometry) combination is unsupported, mirroring the
/// `NOT_SUPPORTED` status of `cudnnGetConvolution*WorkspaceSize`.
pub fn workspace_bytes(algo: ConvAlgo, op: ConvOp, g: &ConvGeometry) -> Option<usize> {
    if !algo_supported(algo, op, g) {
        return None;
    }
    let (c, k) = (g.input.c, g.filter.k);
    let (ho, wo) = (g.out_h(), g.out_w());
    let (r, s) = (g.filter.r, g.filter.s);
    let bytes = match algo {
        ConvAlgo::ImplicitGemm => 0,
        // Precomputed output-position index buffer.
        ConvAlgo::ImplicitPrecompGemm => ho * wo * r * s,
        // One sample's explicit column matrix.
        ConvAlgo::Gemm => 4 * c * r * s * ho * wo,
        ConvAlgo::Direct => unreachable!("DIRECT is never supported"),
        ConvAlgo::Fft => {
            let fh = fft_edge(g.input.h, r);
            let fw = fft_edge(g.input.w, s);
            let (scaled, fixed) = fft_plane_counts(op, g);
            // Real-to-complex spectra: fh * (fw/2 + 1) complex f32 values,
            // plus a 64-plane staging pipeline.
            8 * fh * (fw / 2 + 1) * (scaled + fixed + 64)
        }
        ConvAlgo::FftTiling => {
            let nt = fft_tiles(g);
            let (scaled, fixed) = fft_plane_counts(op, g);
            8 * 32 * 17 * (scaled * nt + fixed + 64)
        }
        // The fused kernel streams transforms through shared memory.
        ConvAlgo::Winograd => 0,
        ConvAlgo::WinogradNonfused => {
            // F(4×4, 3×3): 6×6 = 36-element transformed tiles.
            let t = winograd_tiles(g, 4);
            4 * 36 * (k * c + (c + k) * t)
        }
    };
    Some(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_tensor::{FilterShape, Shape4};

    /// AlexNet conv2 (one-weird-trick): 256×64×27×27, 192 filters of 5×5.
    fn conv2() -> ConvGeometry {
        ConvGeometry::with_square(
            Shape4::new(256, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        )
    }

    const MIB: usize = 1024 * 1024;

    #[test]
    fn implicit_gemm_is_free() {
        assert_eq!(
            workspace_bytes(ConvAlgo::ImplicitGemm, ConvOp::Forward, &conv2()),
            Some(0)
        );
    }

    #[test]
    fn gemm_family_is_batch_independent() {
        let g = conv2();
        for algo in [ConvAlgo::ImplicitPrecompGemm, ConvAlgo::Gemm] {
            let big = workspace_bytes(algo, ConvOp::Forward, &g).unwrap();
            let small = workspace_bytes(algo, ConvOp::Forward, &g.with_batch(8)).unwrap();
            assert_eq!(big, small, "{algo} workspace must not scale with batch");
        }
    }

    #[test]
    fn fft_reproduces_the_paper_workspace_shape() {
        // §IV-A: FFT needs ~213 MiB undivided but fits 64 MiB at micro-batch
        // 32. We require the same qualitative shape: too big at 256, fits at 32.
        let g = conv2();
        let w256 = workspace_bytes(ConvAlgo::Fft, ConvOp::Forward, &g).unwrap();
        let w32 = workspace_bytes(ConvAlgo::Fft, ConvOp::Forward, &g.with_batch(32)).unwrap();
        assert!(
            w256 > 64 * MIB,
            "undivided FFT must exceed 64 MiB (got {} MiB)",
            w256 / MIB
        );
        assert!(
            w32 <= 64 * MIB,
            "FFT @32 must fit in 64 MiB (got {} MiB)",
            w32 / MIB
        );
        // Sub-linear scaling: the filter-spectrum term does not shrink.
        assert!(w32 > w256 / 8);
    }

    #[test]
    fn fft_minimum_exceeds_8mib_for_conv2() {
        // At 8 MiB even a micro-batch of 1 cannot use FFT for conv2 — this is
        // why the paper sees no improvement with an 8 MiB budget.
        let g = conv2().with_batch(1);
        let w1 = workspace_bytes(ConvAlgo::Fft, ConvOp::Forward, &g).unwrap();
        assert!(w1 > 8 * MIB, "got {} MiB", w1 / MIB);
    }

    #[test]
    fn unsupported_returns_none() {
        let strided = ConvGeometry::with_square(
            Shape4::new(4, 3, 27, 27),
            FilterShape::new(8, 3, 5, 5),
            2,
            2,
        );
        assert_eq!(
            workspace_bytes(ConvAlgo::Fft, ConvOp::Forward, &strided),
            None
        );
        assert_eq!(
            workspace_bytes(ConvAlgo::Direct, ConvOp::Forward, &conv2()),
            None
        );
    }

    #[test]
    fn winograd_nonfused_scales_with_batch_fused_is_free() {
        let g = ConvGeometry::with_square(
            Shape4::new(128, 64, 56, 56),
            FilterShape::new(64, 64, 3, 3),
            1,
            1,
        );
        assert_eq!(
            workspace_bytes(ConvAlgo::Winograd, ConvOp::Forward, &g),
            Some(0)
        );
        let big = workspace_bytes(ConvAlgo::WinogradNonfused, ConvOp::Forward, &g).unwrap();
        let small = workspace_bytes(
            ConvAlgo::WinogradNonfused,
            ConvOp::Forward,
            &g.with_batch(16),
        )
        .unwrap();
        assert!(small < big && small > big / 16);
    }

    #[test]
    fn backward_filter_fft_scales_fully_with_batch() {
        let g = conv2();
        let full = workspace_bytes(ConvAlgo::Fft, ConvOp::BackwardFilter, &g).unwrap();
        let half =
            workspace_bytes(ConvAlgo::Fft, ConvOp::BackwardFilter, &g.with_batch(128)).unwrap();
        // No fixed filter term for backward-filter: scaling is ~linear.
        let ratio = full as f64 / half as f64;
        assert!(ratio > 1.9 && ratio < 2.1, "ratio {ratio}");
    }
}
