//! The cuDNN-level convolution algorithm identifiers.

use ucudnn_tensor::ConvGeometry;

/// Re-exported so callers don't need a direct `ucudnn-conv` dependency for
/// operation names.
pub use ucudnn_conv::ConvOp;

/// The eight convolution algorithms, mirroring
/// `cudnnConvolutionFwdAlgo_t` and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConvAlgo {
    /// Implicit GEMM: no lowering, zero workspace.
    ImplicitGemm,
    /// Implicit GEMM with a precomputed index buffer (small workspace).
    ImplicitPrecompGemm,
    /// Explicit im2col + GEMM.
    Gemm,
    /// Direct convolution — present in the enum but, as in cuDNN, not
    /// actually implemented by any kernel.
    Direct,
    /// Whole-image FFT convolution.
    Fft,
    /// Tiled FFT convolution (32×32 tiles).
    FftTiling,
    /// Fused Winograd F(2×2, 3×3).
    Winograd,
    /// Non-fused Winograd with explicit transform buffers.
    WinogradNonfused,
}

impl ConvAlgo {
    /// All algorithms in cuDNN enum order.
    pub const ALL: [ConvAlgo; 8] = [
        ConvAlgo::ImplicitGemm,
        ConvAlgo::ImplicitPrecompGemm,
        ConvAlgo::Gemm,
        ConvAlgo::Direct,
        ConvAlgo::Fft,
        ConvAlgo::FftTiling,
        ConvAlgo::Winograd,
        ConvAlgo::WinogradNonfused,
    ];

    /// Stable numeric id (the position in the cuDNN enum).
    pub fn id(self) -> u8 {
        ConvAlgo::ALL.iter().position(|a| *a == self).unwrap() as u8
    }

    /// Short display name, matching the labels used in the paper's figures
    /// (e.g. `FFT_TILING` in Fig. 8).
    pub fn short_name(self) -> &'static str {
        match self {
            ConvAlgo::ImplicitGemm => "IMPLICIT_GEMM",
            ConvAlgo::ImplicitPrecompGemm => "IMPLICIT_PRECOMP_GEMM",
            ConvAlgo::Gemm => "GEMM",
            ConvAlgo::Direct => "DIRECT",
            ConvAlgo::Fft => "FFT",
            ConvAlgo::FftTiling => "FFT_TILING",
            ConvAlgo::Winograd => "WINOGRAD",
            ConvAlgo::WinogradNonfused => "WINOGRAD_NONFUSED",
        }
    }
}

impl core::fmt::Display for ConvAlgo {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Whether the modeled GPU kernel library implements `algo` for `op` on
/// geometry `g`. Constraints mirror cuDNN's documented ones.
pub fn algo_supported(algo: ConvAlgo, op: ConvOp, g: &ConvGeometry) -> bool {
    let unit_stride = g.stride_h == 1 && g.stride_w == 1;
    let pad_lt_filter = g.pad_h < g.filter.r && g.pad_w < g.filter.s;
    match algo {
        ConvAlgo::ImplicitGemm | ConvAlgo::ImplicitPrecompGemm | ConvAlgo::Gemm => true,
        // cuDNN returns NOT_SUPPORTED for ALGO_DIRECT on every geometry.
        ConvAlgo::Direct => false,
        // Whole-image FFT: unit stride, pad < filter, transform fits 256².
        ConvAlgo::Fft => {
            unit_stride
                && pad_lt_filter
                && g.input.h + g.filter.r - 1 <= 256
                && g.input.w + g.filter.s - 1 <= 256
        }
        // Tiled FFT: unit stride, pad < filter, kernel fits in a 32-tile.
        ConvAlgo::FftTiling => unit_stride && pad_lt_filter && g.filter.r <= 32 && g.filter.s <= 32,
        // Fused Winograd: 3×3 unit-stride, forward and backward-data only.
        ConvAlgo::Winograd => {
            unit_stride
                && g.filter.r == 3
                && g.filter.s == 3
                && g.pad_h <= 2
                && g.pad_w <= 2
                && op != ConvOp::BackwardFilter
        }
        // Non-fused Winograd: also covers backward-filter.
        ConvAlgo::WinogradNonfused => {
            unit_stride && g.filter.r == 3 && g.filter.s == 3 && g.pad_h <= 2 && g.pad_w <= 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_tensor::{FilterShape, Shape4};

    fn geom(k: usize, r: usize, pad: usize, stride: usize) -> ConvGeometry {
        ConvGeometry::with_square(
            Shape4::new(4, 8, 27, 27),
            FilterShape::new(k, 8, r, r),
            pad,
            stride,
        )
    }

    #[test]
    fn ids_are_stable_enum_positions() {
        for (i, a) in ConvAlgo::ALL.iter().enumerate() {
            assert_eq!(a.id() as usize, i);
        }
    }

    #[test]
    fn direct_is_never_supported_like_cudnn() {
        for op in ConvOp::ALL {
            assert!(!algo_supported(ConvAlgo::Direct, op, &geom(4, 3, 1, 1)));
        }
    }

    #[test]
    fn gemm_family_is_universal() {
        for op in ConvOp::ALL {
            for (r, pad, stride) in [(3, 1, 1), (11, 2, 4), (5, 2, 1)] {
                let g = geom(4, r, pad, stride);
                assert!(algo_supported(ConvAlgo::ImplicitGemm, op, &g));
                assert!(algo_supported(ConvAlgo::ImplicitPrecompGemm, op, &g));
                assert!(algo_supported(ConvAlgo::Gemm, op, &g));
            }
        }
    }

    #[test]
    fn fft_requires_unit_stride() {
        assert!(algo_supported(
            ConvAlgo::Fft,
            ConvOp::Forward,
            &geom(4, 5, 2, 1)
        ));
        assert!(!algo_supported(
            ConvAlgo::Fft,
            ConvOp::Forward,
            &geom(4, 5, 2, 2)
        ));
        assert!(!algo_supported(
            ConvAlgo::FftTiling,
            ConvOp::Forward,
            &geom(4, 5, 2, 2)
        ));
    }

    #[test]
    fn fft_rejects_huge_images_but_tiling_accepts() {
        let g = ConvGeometry::with_square(
            Shape4::new(2, 3, 300, 300),
            FilterShape::new(4, 3, 5, 5),
            2,
            1,
        );
        assert!(!algo_supported(ConvAlgo::Fft, ConvOp::Forward, &g));
        assert!(algo_supported(ConvAlgo::FftTiling, ConvOp::Forward, &g));
    }

    #[test]
    fn winograd_split_over_backward_filter() {
        let g = geom(4, 3, 1, 1);
        assert!(!algo_supported(
            ConvAlgo::Winograd,
            ConvOp::BackwardFilter,
            &g
        ));
        assert!(algo_supported(
            ConvAlgo::WinogradNonfused,
            ConvOp::BackwardFilter,
            &g
        ));
        assert!(algo_supported(ConvAlgo::Winograd, ConvOp::Forward, &g));
        assert!(algo_supported(ConvAlgo::Winograd, ConvOp::BackwardData, &g));
    }

    #[test]
    fn winograd_is_3x3_only() {
        assert!(!algo_supported(
            ConvAlgo::Winograd,
            ConvOp::Forward,
            &geom(4, 5, 2, 1)
        ));
        assert!(!algo_supported(
            ConvAlgo::WinogradNonfused,
            ConvOp::Forward,
            &geom(4, 5, 2, 1)
        ));
    }
}
