//! Deterministic mid-run performance perturbation.
//!
//! Real devices drift: thermal throttling, MPS neighbors, contention on
//! shared memory bandwidth. The benchmark table the WR DP trusted at plan
//! time goes stale, and the serving control loop must notice and re-plan.
//! A [`Perturbation`] models the simplest reproducible form of that drift —
//! a step change in the device's latency curve at a fixed virtual-clock
//! timestamp: every kernel time is multiplied by `factor` from `at_us`
//! onward. Being a pure function of the clock, it keeps the simulated
//! substrate fully deterministic; the same seed and schedule observe the
//! same slowdown at the same instant.

/// A step slowdown (or speedup) of a device's latency curve at a
/// virtual-clock timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Virtual-clock time (µs) at which the step takes effect.
    pub at_us: f64,
    /// Multiplier applied to every kernel time from `at_us` on. 2.0 models
    /// a 2× slowdown; values in (0, 1) model a recovery/speedup.
    pub factor: f64,
}

impl Perturbation {
    /// A step of `factor`× at `at_us` µs of virtual time.
    pub fn new(at_us: f64, factor: f64) -> Self {
        Self { at_us, factor }
    }

    /// The latency multiplier in effect at virtual time `now_us`.
    pub fn factor_at(&self, now_us: f64) -> f64 {
        if now_us >= self.at_us {
            self.factor
        } else {
            1.0
        }
    }

    /// Build a perturbation from `UCUDNN_PERTURB_*` environment variables,
    /// or `None` when neither is set:
    ///
    /// * `UCUDNN_PERTURB_AT_US` — virtual-clock timestamp of the step
    ///   (default 0: perturbed from the start).
    /// * `UCUDNN_PERTURB_FACTOR` — latency multiplier (default 2.0).
    ///
    /// Non-finite or non-positive values fall back to the defaults, the
    /// same forgiving posture as `UCUDNN_FAULT_*`.
    pub fn from_env() -> Option<Self> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`Perturbation::from_env`] with an injectable variable source.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Option<Self> {
        let at = lookup("UCUDNN_PERTURB_AT_US");
        let factor = lookup("UCUDNN_PERTURB_FACTOR");
        if at.is_none() && factor.is_none() {
            return None;
        }
        let parse = |s: Option<String>, default: f64, min_ok: fn(f64) -> bool| {
            s.and_then(|s| s.trim().parse::<f64>().ok())
                .filter(|v| v.is_finite() && min_ok(*v))
                .unwrap_or(default)
        };
        Some(Self {
            at_us: parse(at, 0.0, |v| v >= 0.0),
            factor: parse(factor, 2.0, |v| v > 0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_applies_exactly_at_the_timestamp() {
        let p = Perturbation::new(1000.0, 2.0);
        assert_eq!(p.factor_at(0.0), 1.0);
        assert_eq!(p.factor_at(999.999), 1.0);
        assert_eq!(p.factor_at(1000.0), 2.0);
        assert_eq!(p.factor_at(1e9), 2.0);
    }

    #[test]
    fn from_lookup_returns_none_without_perturb_vars() {
        assert_eq!(Perturbation::from_lookup(|_| None), None);
    }

    #[test]
    fn from_lookup_parses_both_variables() {
        let p = Perturbation::from_lookup(|k| {
            Some(
                match k {
                    "UCUDNN_PERTURB_AT_US" => "50000",
                    "UCUDNN_PERTURB_FACTOR" => "1.8",
                    _ => return None,
                }
                .to_string(),
            )
        })
        .unwrap();
        assert_eq!(p, Perturbation::new(50_000.0, 1.8));
    }

    #[test]
    fn partial_and_malformed_values_use_defaults() {
        // Only the factor set: perturbed from t=0.
        let p =
            Perturbation::from_lookup(|k| (k == "UCUDNN_PERTURB_FACTOR").then(|| "3".to_string()))
                .unwrap();
        assert_eq!(p, Perturbation::new(0.0, 3.0));
        // Malformed / non-positive values fall back, not crash.
        let p = Perturbation::from_lookup(|k| {
            Some(
                match k {
                    "UCUDNN_PERTURB_AT_US" => "soon",
                    "UCUDNN_PERTURB_FACTOR" => "-2",
                    _ => return None,
                }
                .to_string(),
            )
        })
        .unwrap();
        assert_eq!(p, Perturbation::new(0.0, 2.0));
    }
}
