//! Analytic GPU performance model for convolution kernels.
//!
//! This crate is the stand-in for "cuDNN on a real GPU" (see DESIGN.md §2):
//! a deterministic model of per-algorithm execution time and workspace size
//! for the devices in the paper's Table I. The μ-cuDNN optimizer consumes
//! only `(algorithm, time, workspace)` triples, so any substrate with a
//! faithful time×workspace surface exercises the same optimization paths the
//! paper's GPU experiments did.

pub mod algo;
pub mod device;
pub mod perturb;
pub mod time;
pub mod workspace;

pub use algo::{algo_supported, ConvAlgo, ConvOp};
pub use device::{all_devices, k80, p100_sxm2, v100_sxm2, DeviceSpec};
pub use perturb::Perturbation;
pub use time::{kernel_time_us, memory_bound_time_us};
pub use workspace::workspace_bytes;

use ucudnn_tensor::ConvGeometry;

/// One benchmarked kernel variant: what `cudnnFindConvolution*Algorithm`
/// returns per algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// The algorithm.
    pub algo: ConvAlgo,
    /// Modeled execution time in microseconds.
    pub time_us: f64,
    /// Modeled workspace requirement in bytes.
    pub workspace_bytes: usize,
}

/// Profile a single algorithm, or `None` when unsupported.
pub fn profile(
    d: &DeviceSpec,
    algo: ConvAlgo,
    op: ConvOp,
    g: &ConvGeometry,
) -> Option<KernelProfile> {
    let time_us = kernel_time_us(d, algo, op, g)?;
    let workspace = workspace_bytes(algo, op, g)?;
    Some(KernelProfile {
        algo,
        time_us,
        workspace_bytes: workspace,
    })
}

/// Profile every supported algorithm, sorted fastest first — the result of
/// an exhaustive `Find` benchmark.
pub fn enumerate(d: &DeviceSpec, op: ConvOp, g: &ConvGeometry) -> Vec<KernelProfile> {
    let mut v: Vec<KernelProfile> = ConvAlgo::ALL
        .iter()
        .filter_map(|&a| profile(d, a, op, g))
        .collect();
    v.sort_by(|a, b| a.time_us.total_cmp(&b.time_us));
    v
}

/// The fastest algorithm whose workspace fits within `limit_bytes` — the
/// semantics of `cudnnGetConvolution*Algorithm` with
/// `SPECIFY_WORKSPACE_LIMIT`. Returns `None` when nothing fits (cuDNN can
/// always fall back to `IMPLICIT_GEMM`, so in practice this is `Some` for
/// any limit ≥ 0).
pub fn fastest_within(
    d: &DeviceSpec,
    op: ConvOp,
    g: &ConvGeometry,
    limit_bytes: usize,
) -> Option<KernelProfile> {
    enumerate(d, op, g)
        .into_iter()
        .find(|p| p.workspace_bytes <= limit_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_tensor::{FilterShape, Shape4};

    fn conv2() -> ConvGeometry {
        ConvGeometry::with_square(
            Shape4::new(256, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        )
    }

    const MIB: usize = 1024 * 1024;

    #[test]
    fn enumerate_is_sorted_and_nonempty() {
        let v = enumerate(&p100_sxm2(), ConvOp::Forward, &conv2());
        assert!(v.len() >= 3);
        assert!(v.windows(2).all(|w| w[0].time_us <= w[1].time_us));
        // DIRECT never appears.
        assert!(v.iter().all(|p| p.algo != ConvAlgo::Direct));
    }

    #[test]
    fn zero_limit_still_finds_implicit_gemm() {
        let p = fastest_within(&p100_sxm2(), ConvOp::Forward, &conv2(), 0).unwrap();
        assert_eq!(p.algo, ConvAlgo::ImplicitGemm);
        assert_eq!(p.workspace_bytes, 0);
    }

    #[test]
    fn workspace_cliff_exists() {
        // The Fig. 1 phenomenon: the best unconstrained algorithm needs a big
        // workspace; capping the limit 1 byte below it forces a slower one.
        let d = p100_sxm2();
        let best = enumerate(&d, ConvOp::Forward, &conv2())[0];
        assert!(best.workspace_bytes > 0);
        let constrained =
            fastest_within(&d, ConvOp::Forward, &conv2(), best.workspace_bytes - 1).unwrap();
        assert!(constrained.time_us > best.time_us);
        let slowdown = constrained.time_us / best.time_us;
        assert!(slowdown > 1.3, "cliff slowdown only {slowdown}");
    }

    #[test]
    fn sixty_four_mib_excludes_fft_at_full_batch() {
        // At 64 MiB undivided, cuDNN falls back to a GEMM-family algorithm
        // for conv2 — the situation μ-cuDNN fixes with micro-batching.
        let p = fastest_within(&p100_sxm2(), ConvOp::Forward, &conv2(), 64 * MIB).unwrap();
        assert!(
            matches!(
                p.algo,
                ConvAlgo::Gemm | ConvAlgo::ImplicitPrecompGemm | ConvAlgo::ImplicitGemm
            ),
            "got {}",
            p.algo
        );
        // But a micro-batch of 32 unlocks FFT within the same limit.
        let m = fastest_within(
            &p100_sxm2(),
            ConvOp::Forward,
            &conv2().with_batch(32),
            64 * MIB,
        )
        .unwrap();
        assert!(
            matches!(m.algo, ConvAlgo::Fft | ConvAlgo::FftTiling),
            "got {}",
            m.algo
        );
    }

    #[test]
    fn per_sample_cost_favors_micro_batched_fft_under_64mib() {
        // The WR DP can only choose 8×FFT@32 over 1×GEMM@256 if the total
        // modeled time is lower. This is the heart of Fig. 9.
        let d = p100_sxm2();
        let undivided = fastest_within(&d, ConvOp::Forward, &conv2(), 64 * MIB).unwrap();
        let micro = fastest_within(&d, ConvOp::Forward, &conv2().with_batch(32), 64 * MIB).unwrap();
        assert!(
            8.0 * micro.time_us < undivided.time_us,
            "8×{} ({}) must beat {} ({})",
            micro.algo,
            8.0 * micro.time_us,
            undivided.algo,
            undivided.time_us
        );
    }

    #[test]
    fn large_limit_matches_unconstrained_best() {
        let d = p100_sxm2();
        let best = enumerate(&d, ConvOp::Forward, &conv2())[0];
        let roomy = fastest_within(&d, ConvOp::Forward, &conv2(), 512 * MIB).unwrap();
        assert_eq!(best.algo, roomy.algo);
    }
}
