//! Integration tests for the file-backed benchmark database (§III-D):
//! concurrent save/load round-trips and graceful degradation on corruption.

use std::path::PathBuf;
use ucudnn::{BenchCache, BenchEntry, KernelKey};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

fn key(n: usize) -> KernelKey {
    let g = ConvGeometry::with_square(
        Shape4::new(n, 16, 16, 16),
        FilterShape::new(16, 16, 3, 3),
        1,
        1,
    );
    KernelKey::new(ConvOp::Forward, &g)
}

/// Fresh temp dir per test (std-only; no tempfile crate offline).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ucudnn-filedb-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn concurrent_benchmarking_with_interleaved_saves_round_trips() {
    let dir = TempDir::new("concurrent");
    let db = dir.path("bench.json");
    let h = CudnnHandle::simulated(p100_sxm2());
    let keys: Vec<KernelKey> = (0..10).map(|i| key(1 << i)).collect();

    let cache = BenchCache::with_file(&db);
    // Benchmark threads race with a saver thread that snapshots mid-flight:
    // save() must tolerate concurrent inserts and in-flight (unfilled) slots.
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let (cache, h, keys) = (&cache, &h, &keys);
            scope.spawn(move || {
                for k in keys {
                    cache.get_or_bench(h, k);
                }
            });
        }
        let cache = &cache;
        scope.spawn(move || {
            for _ in 0..5 {
                cache.save().unwrap();
                std::thread::yield_now();
            }
        });
    });
    cache.save().unwrap();

    // Reload: every entry must come back bit-exact, with zero benchmarks.
    let reloaded = BenchCache::with_file(&db);
    assert_eq!(reloaded.len(), keys.len());
    let want: Vec<Vec<BenchEntry>> = keys.iter().map(|k| cache.get_or_bench(&h, k)).collect();
    let got: Vec<Vec<BenchEntry>> = keys.iter().map(|k| reloaded.get_or_bench(&h, k)).collect();
    assert_eq!(got, want, "file DB round-trip must be bit-exact");
    assert_eq!(reloaded.stats().misses, 0, "warm cache never re-benchmarks");
    assert!(
        reloaded.benchmark_counts().is_empty(),
        "loaded entries count zero runs"
    );
}

#[test]
fn concurrent_loads_of_one_db_file_agree() {
    let dir = TempDir::new("multireader");
    let db = dir.path("bench.json");
    let h = CudnnHandle::simulated(p100_sxm2());
    let writer = BenchCache::with_file(&db);
    for i in 0..6 {
        writer.get_or_bench(&h, &key(1 << i));
    }
    writer.save().unwrap();

    // Homogeneous-cluster scenario: many processes load the same DB file.
    let snapshots: Vec<Vec<(String, Vec<BenchEntry>)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let (db, h) = (&db, &h);
                scope.spawn(move || {
                    let c = BenchCache::with_file(db);
                    (0..6)
                        .map(|i| {
                            let k = key(1 << i);
                            (format!("{k}"), c.get_or_bench(h, &k))
                        })
                        .collect()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for s in &snapshots[1..] {
        assert_eq!(s, &snapshots[0]);
    }
}

#[test]
fn corrupted_db_degrades_to_cold_cache_and_recovers_on_save() {
    let dir = TempDir::new("corrupt");
    let db = dir.path("bench.json");
    for garbage in [
        "",
        "not json at all",
        "{\"truncated\":",
        "[{\"engine\":42}]",
        "[[1,2,3]]",
    ] {
        std::fs::write(&db, garbage).unwrap();
        let cache = BenchCache::with_file(&db);
        assert!(
            cache.is_empty(),
            "corrupt DB ({garbage:?}) must load as empty"
        );
        // The cache stays fully functional: benchmarks run and persist.
        let h = CudnnHandle::simulated(p100_sxm2());
        let entries = cache.get_or_bench(&h, &key(4));
        assert!(!entries.is_empty());
        assert_eq!(cache.stats().misses, 1, "cold cache re-benchmarks");
        cache.save().unwrap();
        let recovered = BenchCache::with_file(&db);
        assert_eq!(recovered.len(), 1, "save must repair the DB in place");
        assert_eq!(recovered.get_or_bench(&h, &key(4)), entries);
    }
}

#[test]
fn partially_valid_db_quarantines_bad_rows_and_keeps_the_rest() {
    // A torn write mangles one row. The intact rows still load — losing a
    // whole cluster-shared database to one bad record would force every
    // node to re-benchmark — and the damage stays visible in the
    // quarantine counter rather than being coerced into fake measurements.
    let dir = TempDir::new("torn");
    let db = dir.path("bench.json");
    let h = CudnnHandle::simulated(p100_sxm2());
    let writer = BenchCache::with_file(&db);
    let want8 = writer.get_or_bench(&h, &key(8));
    let want16 = writer.get_or_bench(&h, &key(16));
    writer.save().unwrap();
    let valid = std::fs::read_to_string(&db).unwrap();
    let torn = valid.replace("\"rows\":[", "\"rows\":[{\"engine\":\"x\"},");
    assert_ne!(torn, valid, "corruption must have applied");
    std::fs::write(&db, torn).unwrap();

    let cache = BenchCache::with_file(&db);
    assert_eq!(cache.len(), 2, "intact rows survive a torn sibling");
    assert_eq!(cache.stats().db_rows_loaded, 2);
    assert_eq!(cache.stats().db_rows_quarantined, 1);
    assert_eq!(cache.get_or_bench(&h, &key(8)), want8);
    assert_eq!(cache.get_or_bench(&h, &key(16)), want16);
    assert_eq!(cache.stats().misses, 0, "surviving rows serve lookups warm");

    // Saving the repaired cache writes a fully valid database again.
    cache.save().unwrap();
    let recovered = BenchCache::with_file(&db);
    assert_eq!(recovered.len(), 2);
    assert_eq!(recovered.stats().db_rows_quarantined, 0);
}
