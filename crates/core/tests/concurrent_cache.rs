//! Stress test: the shared benchmark cache under heavy thread overlap.
//!
//! Many threads request overlapping kernel sets simultaneously. The
//! single-flight protocol must guarantee that every (kernel, micro-batch)
//! pair is benchmarked exactly once, every lookup is classified exactly once
//! (hit, miss, or single-flight wait), and all threads observe identical
//! results.

use std::sync::atomic::{AtomicUsize, Ordering};
use ucudnn::{BenchCache, BenchEntry, CacheStats, KernelKey};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

/// A distinct kernel for each (channel, micro-batch) pair.
fn key(c: usize, n: usize) -> KernelKey {
    let g = ConvGeometry::with_square(
        Shape4::new(n, c, 16, 16),
        FilterShape::new(c, c, 3, 3),
        1,
        1,
    );
    KernelKey::new(ConvOp::Forward, &g)
}

#[test]
fn stress_each_kernel_benchmarked_exactly_once() {
    const THREADS: usize = 16;
    const ROUNDS: usize = 4;
    let h = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    // 24 distinct kernels; every thread walks all of them several times, so
    // the key sets overlap completely across threads.
    let keys: Vec<KernelKey> = [8usize, 16, 32]
        .iter()
        .flat_map(|&c| (0..8).map(move |i| key(c, 1 << i)))
        .collect();
    let lookups = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (cache, h, keys, lookups) = (&cache, &h, &keys, &lookups);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Stagger the starting point per thread so leaders vary.
                    for i in 0..keys.len() {
                        let k = &keys[(i + t + round) % keys.len()];
                        let entries = cache.get_or_bench(h, k);
                        assert!(!entries.is_empty());
                        lookups.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(
        stats.misses,
        keys.len() as u64,
        "single-flight: one benchmark per key"
    );
    assert_eq!(
        stats.hits + stats.misses + stats.single_flight_waits,
        lookups.load(Ordering::Relaxed) as u64,
        "every lookup classified exactly once"
    );
    for (label, runs) in cache.benchmark_counts() {
        assert_eq!(runs, 1, "{label} was measured {runs} times");
    }
    assert_eq!(cache.len(), keys.len());
}

#[test]
fn stress_all_threads_observe_identical_results() {
    const THREADS: usize = 12;
    let h = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    let keys: Vec<KernelKey> = (0..6).map(|i| key(16, 1 << i)).collect();
    let per_thread: Vec<Vec<Vec<BenchEntry>>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let (cache, h, keys) = (&cache, &h, &keys);
                scope.spawn(move || keys.iter().map(|k| cache.get_or_bench(h, k)).collect())
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for results in &per_thread[1..] {
        assert_eq!(
            results, &per_thread[0],
            "cache must serve one truth to every thread"
        );
    }
    // A waiter is never misclassified as a hit: the three counters must
    // exactly cover all THREADS * keys.len() lookups even when most of them
    // blocked on an in-flight leader.
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses + stats.single_flight_waits,
        (THREADS * keys.len()) as u64
    );
    assert_eq!(stats.misses, keys.len() as u64);
}

#[test]
fn stress_matches_sequential_ground_truth() {
    let h = CudnnHandle::simulated(p100_sxm2());
    let keys: Vec<KernelKey> = (0..8).map(|i| key(8, 1 << i)).collect();

    let sequential = BenchCache::new();
    let want: Vec<Vec<BenchEntry>> = keys
        .iter()
        .map(|k| sequential.get_or_bench(&h, k))
        .collect();

    let concurrent = BenchCache::new();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let (cache, h, keys) = (&concurrent, &h, &keys);
            scope.spawn(move || {
                for k in keys {
                    cache.get_or_bench(h, k);
                }
            });
        }
    });
    let got: Vec<Vec<BenchEntry>> = keys
        .iter()
        .map(|k| concurrent.get_or_bench(&h, k))
        .collect();
    assert_eq!(
        got, want,
        "concurrent benchmarking must not change any result"
    );
    assert_eq!(
        concurrent.stats().misses,
        sequential.stats().misses,
        "same number of benchmarks run"
    );
    assert_eq!(
        sequential.stats(),
        CacheStats {
            hits: 0,
            misses: keys.len() as u64,
            ..CacheStats::default()
        },
        "sequential pass benchmarks every key exactly once"
    );
}
