//! Property tests on the WR/WD optimizers over randomized kernels, batch
//! sizes and workspace limits.

use proptest::prelude::*;
use ucudnn::{
    desirable_set, optimize_wr, pareto_front, BatchSizePolicy, BenchCache, Configuration,
    KernelKey, MicroConfig,
};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::{p100_sxm2, ConvAlgo};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

fn kernels() -> impl Strategy<Value = KernelKey> {
    (
        2usize..=48,
        1usize..=32,
        8usize..=30,
        1usize..=64,
        1usize..=3,
        0usize..=2,
        0usize..3,
    )
        .prop_map(|(n, c, hw, k, half_r, pad, op_i)| {
            let r = 2 * half_r - 1;
            let g = ConvGeometry::with_square(
                Shape4::new(n, c, hw.max(r), hw.max(r)),
                FilterShape::new(k, c, r, r),
                pad.min(r - 1),
                1,
            );
            KernelKey::new(ConvOp::ALL[op_i], &g)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every WR plan tiles the batch exactly and fits the limit, for any
    /// policy and any limit.
    #[test]
    fn wr_plans_are_always_valid(key in kernels(), limit_mib in 0usize..128, policy_i in 0usize..3) {
        let policy = [BatchSizePolicy::All, BatchSizePolicy::PowerOfTwo, BatchSizePolicy::Undivided][policy_i];
        let handle = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let r = optimize_wr(&handle, &cache, &key, limit_mib << 20, policy, false).unwrap();
        prop_assert_eq!(r.config.batch(), key.batch());
        prop_assert!(r.config.workspace_bytes() <= limit_mib << 20);
        prop_assert!(r.config.time_us().is_finite() && r.config.time_us() > 0.0);
    }

    /// More workspace never makes the WR optimum slower.
    #[test]
    fn wr_time_is_monotone_in_limit(key in kernels()) {
        let handle = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let mut prev = f64::INFINITY;
        for limit_mib in [0usize, 1, 8, 64, 512] {
            let r = optimize_wr(&handle, &cache, &key, limit_mib << 20, BatchSizePolicy::PowerOfTwo, false)
                .unwrap();
            prop_assert!(r.config.time_us() <= prev + 1e-9, "limit {limit_mib} MiB regressed");
            prev = r.config.time_us();
        }
    }

    /// The `all` policy is never worse than `powerOfTwo`, which is never
    /// worse than `undivided` (supersets of candidate sizes).
    #[test]
    fn policy_hierarchy(key in kernels(), limit_mib in 0usize..128) {
        let handle = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let limit = limit_mib << 20;
        let t = |p| optimize_wr(&handle, &cache, &key, limit, p, false).unwrap().config.time_us();
        let tu = t(BatchSizePolicy::Undivided);
        let tp = t(BatchSizePolicy::PowerOfTwo);
        let ta = t(BatchSizePolicy::All);
        prop_assert!(tp <= tu + 1e-9);
        prop_assert!(ta <= tp + 1e-9);
    }

    /// Desirable sets: monotone fronts, batch-tiling members, fastest
    /// member equals the WR optimum under the same cap.
    #[test]
    fn desirable_sets_are_fronts(key in kernels(), cap_mib in 1usize..128) {
        let handle = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let cap = cap_mib << 20;
        let ds = desirable_set(&handle, &cache, &key, cap, BatchSizePolicy::PowerOfTwo);
        prop_assert!(!ds.is_empty());
        for c in &ds {
            prop_assert_eq!(c.batch(), key.batch());
            prop_assert!(c.workspace_bytes() <= cap);
        }
        for w in ds.windows(2) {
            prop_assert!(w[0].workspace_bytes() < w[1].workspace_bytes());
            prop_assert!(w[0].time_us() > w[1].time_us());
        }
        let wr = optimize_wr(&handle, &cache, &key, cap, BatchSizePolicy::PowerOfTwo, false).unwrap();
        let fastest = ds.last().unwrap();
        prop_assert!((fastest.time_us() - wr.config.time_us()).abs() <= 1e-6 * wr.config.time_us());
    }

    /// `pareto_front` of arbitrary synthetic configurations is minimal and
    /// complete: no member dominated, every non-member dominated or tied.
    #[test]
    fn pareto_front_is_exact(points in prop::collection::vec((1.0f64..100.0, 0usize..1000), 1..40)) {
        let configs: Vec<Configuration> = points
            .iter()
            .map(|&(t, w)| Configuration::undivided(MicroConfig {
                micro_batch: 1,
                algo: ConvAlgo::Gemm,
                time_us: t,
                workspace_bytes: w,
            }))
            .collect();
        let front = pareto_front(configs.clone());
        prop_assert!(!front.is_empty());
        // No front member dominated by any input point.
        for f in &front {
            for c in &configs {
                let strictly_better = c.time_us() < f.time_us() - 1e-12 && c.workspace_bytes() <= f.workspace_bytes();
                prop_assert!(!strictly_better, "front member dominated");
            }
        }
        // Every input point is dominated-or-tied by some front member.
        for c in &configs {
            let covered = front.iter().any(|f| {
                f.time_us() <= c.time_us() + 1e-12 && f.workspace_bytes() <= c.workspace_bytes()
            });
            prop_assert!(covered, "input point not covered by the front");
        }
    }
}
