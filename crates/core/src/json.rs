//! Minimal JSON reading/writing for the benchmark file DB and metrics
//! export.
//!
//! The workspace builds fully offline, so instead of `serde_json` the cache
//! and metrics serialize through this small [`Value`] tree. Objects preserve
//! insertion order, which keeps written files byte-deterministic — required
//! for the plan-determinism guarantee to extend to on-disk artifacts.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered, keys not deduplicated.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// `usize` value, if this is a whole number in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    ///
    /// Numbers use Rust's shortest round-trip formatting, so `f64` values
    /// survive a write/parse cycle bit-exactly. Non-finite numbers (which
    /// JSON cannot express) are written as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n:?}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns `None` on any syntax error or
    /// trailing garbage — callers treat that as "no data" (e.g. a corrupt
    /// cache file degrades to a cold cache).
    pub fn parse(text: &str) -> Option<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }
}

/// Convenience constructor for object literals.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Convenience constructor for numbers.
pub fn num(n: impl Into<f64>) -> Value {
    Value::Num(n.into())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'n' => parse_lit(b, pos, "null", Value::Null),
        b't' => parse_lit(b, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Value::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Value::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => None,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Option<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(v)
    } else {
        None
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Value::Num)
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    let mut chars = std::str::from_utf8(&b[*pos..]).ok()?.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Some(out);
            }
            '\\' => {
                let (_, esc) = chars.next()?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next()?;
                            code = code * 16 + h.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = obj([
            ("name", Value::Str("conv \"1\"\n".into())),
            ("times", Value::Arr(vec![num(1.5), num(2.0), num(0.125)])),
            (
                "nested",
                obj([("ok", Value::Bool(true)), ("none", Value::Null)]),
            ),
            ("count", num(42.0)),
        ]);
        let text = doc.to_json();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn f64_survives_round_trip_bit_exactly() {
        for x in [
            1.0 / 3.0,
            1e-17,
            123456789.123456,
            f64::MIN_POSITIVE,
            0.1 + 0.2,
        ] {
            let text = Value::Num(x).to_json();
            let back = Value::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
    }

    #[test]
    fn integers_are_written_without_exponent() {
        assert_eq!(num(4096.0).to_json(), "4096");
        assert_eq!(num(0.0).to_json(), "0");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        for bad in [
            "not json",
            "{\"a\":",
            "[1,2",
            "{\"a\" 1}",
            "[1,]",
            "1 2",
            "\"unterminated",
        ] {
            assert!(Value::parse(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Value::parse(r#"{"a": {"b": [1, "x"]}, "n": 7}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_usize(), Some(1));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Value::parse(" { \"k\\u0041\" : \"a\\tb\" } ").unwrap();
        assert_eq!(v.get("kA").unwrap().as_str(), Some("a\tb"));
    }
}
