//! Desirable configuration sets (§III-C1): Pareto fronts in the
//! (execution time × workspace size) plane.
//!
//! The WD ILP would need `O(|A|^N)` variables if every division were
//! enumerated. Instead, a set-valued variant of the WR dynamic program keeps
//! only the *desirable* configurations — those for which no other
//! configuration is both faster and smaller. The paper proves the ILP
//! optimum never uses an undesirable configuration, so this pruning is
//! lossless (validated by `tests/wd_pruning.rs` against exhaustive search).

use crate::bench_cache::BenchCache;
use crate::config::{Configuration, MicroConfig};
use crate::kernel::KernelKey;
use crate::metrics::OptimizerMetrics;
use crate::policy::BatchSizePolicy;
use ucudnn_cudnn_sim::CudnnHandle;

/// Prune a set of configurations to its Pareto front: ascending workspace,
/// strictly descending time. Ties on workspace keep the fastest.
pub fn pareto_front(mut configs: Vec<Configuration>) -> Vec<Configuration> {
    configs.sort_by(|a, b| {
        a.workspace_bytes()
            .cmp(&b.workspace_bytes())
            .then(a.time_us().total_cmp(&b.time_us()))
    });
    let mut front: Vec<Configuration> = Vec::new();
    for c in configs {
        match front.last() {
            Some(last) if c.workspace_bytes() == last.workspace_bytes() => continue,
            Some(last) if c.time_us() >= last.time_us() - 1e-12 => continue,
            _ => front.push(c),
        }
    }
    front
}

/// Compute the desirable configuration set for one kernel: every
/// Pareto-optimal division of its mini-batch under `policy`, with per-config
/// workspace capped at `ws_cap` bytes.
///
/// Returned sorted by ascending workspace (so descending time).
pub fn desirable_set(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernel: &KernelKey,
    ws_cap: usize,
    policy: BatchSizePolicy,
) -> Vec<Configuration> {
    desirable_set_metered(handle, cache, kernel, ws_cap, policy, None)
}

/// [`desirable_set`] with degradations recorded into `metrics`: a
/// benchmarked size whose `Find` call failed outright contributes no
/// micro-configurations (its points are dropped — one rung down the
/// degradation ladder) instead of aborting the construction. When *every*
/// size fails, the returned set is empty and the WD optimizer substitutes
/// the undivided zero-workspace fallback.
pub fn desirable_set_metered(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernel: &KernelKey,
    ws_cap: usize,
    policy: BatchSizePolicy,
    metrics: Option<&OptimizerMetrics>,
) -> Vec<Configuration> {
    desirable_set_traced(handle, cache, kernel, ws_cap, policy, metrics).0
}

/// How a desirable set was built — the Pareto half of a WD plan's
/// provenance record (DESIGN.md §10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DesirableStats {
    /// Micro-batch sizes the policy put up for benchmarking.
    pub candidate_sizes: usize,
    /// Sizes that yielded at least one usable micro-configuration.
    pub sizes_kept: usize,
    /// Configurations generated at the final DP stage, before pruning.
    pub generated: usize,
    /// Desirable-set size after Pareto pruning.
    pub kept: usize,
}

/// [`desirable_set_metered`], additionally reporting [`DesirableStats`]
/// for plan provenance.
pub fn desirable_set_traced(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernel: &KernelKey,
    ws_cap: usize,
    policy: BatchSizePolicy,
    metrics: Option<&OptimizerMetrics>,
) -> (Vec<Configuration>, DesirableStats) {
    let b = kernel.batch();
    let sizes = policy.candidate_sizes(b);

    // Per-size micro-configuration fronts: for each benchmarked size, the
    // Pareto-optimal (time, workspace) algorithms within the cap.
    let micro_fronts: Vec<(usize, Vec<MicroConfig>)> = sizes
        .iter()
        .map(|&m| {
            let micro_key = KernelKey {
                input: kernel.input.with_batch(m),
                ..*kernel
            };
            let entries = match cache.try_get_or_bench(handle, &micro_key) {
                Ok(entries) => entries,
                Err(_) => {
                    if let Some(mx) = metrics {
                        mx.degradation();
                    }
                    Vec::new()
                }
            };
            let singles: Vec<Configuration> = entries
                .into_iter()
                .filter(|e| e.memory_bytes <= ws_cap)
                .map(|e| {
                    Configuration::undivided(MicroConfig {
                        micro_batch: m,
                        algo: e.algo,
                        time_us: e.time_us,
                        workspace_bytes: e.memory_bytes,
                    })
                })
                .collect();
            (
                m,
                pareto_front(singles)
                    .into_iter()
                    .map(|c| c.micros[0])
                    .collect(),
            )
        })
        .collect();

    let mut stats = DesirableStats {
        candidate_sizes: sizes.len(),
        sizes_kept: micro_fronts.iter().filter(|(_, f)| !f.is_empty()).count(),
        ..DesirableStats::default()
    };

    // Set-valued DP: fronts[n] = desirable configurations covering n samples.
    let mut fronts: Vec<Vec<Configuration>> = vec![Vec::new(); b + 1];
    fronts[0] = vec![Configuration::default()];
    for n in 1..=b {
        let mut candidates: Vec<Configuration> = Vec::new();
        for (m, micros) in &micro_fronts {
            if *m > n {
                continue;
            }
            for prefix in &fronts[n - m] {
                // fronts[0] is the empty configuration; a single micro is
                // then its own candidate.
                for mc in micros {
                    let mut micros_new = Vec::with_capacity(prefix.micros.len() + 1);
                    micros_new.extend_from_slice(&prefix.micros);
                    micros_new.push(*mc);
                    candidates.push(Configuration { micros: micros_new });
                }
            }
        }
        if n == b {
            stats.generated = candidates.len();
        }
        fronts[n] = pareto_front(candidates);
    }
    let mut out = std::mem::take(&mut fronts[b]);
    stats.kept = out.len();
    // Canonical ordering of micros within each configuration.
    for c in &mut out {
        c.micros.sort_by_key(|m| std::cmp::Reverse(m.micro_batch));
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_cudnn_sim::ConvOp;
    use ucudnn_gpu_model::{p100_sxm2, ConvAlgo};
    use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

    const MIB: usize = 1024 * 1024;

    fn conv2(n: usize) -> KernelKey {
        let g = ConvGeometry::with_square(
            Shape4::new(n, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        );
        KernelKey::new(ConvOp::Forward, &g)
    }

    fn mc(t: f64, w: usize) -> Configuration {
        Configuration::undivided(MicroConfig {
            micro_batch: 1,
            algo: ConvAlgo::Gemm,
            time_us: t,
            workspace_bytes: w,
        })
    }

    #[test]
    fn front_removes_dominated_points() {
        let front = pareto_front(vec![mc(10.0, 0), mc(8.0, 5), mc(9.0, 6), mc(3.0, 10)]);
        let pts: Vec<(f64, usize)> = front
            .iter()
            .map(|c| (c.time_us(), c.workspace_bytes()))
            .collect();
        // (9,6) is dominated by (8,5).
        assert_eq!(pts, vec![(10.0, 0), (8.0, 5), (3.0, 10)]);
    }

    #[test]
    fn front_keeps_fastest_on_workspace_ties() {
        let front = pareto_front(vec![mc(10.0, 5), mc(7.0, 5), mc(12.0, 0)]);
        let pts: Vec<(f64, usize)> = front
            .iter()
            .map(|c| (c.time_us(), c.workspace_bytes()))
            .collect();
        assert_eq!(pts, vec![(12.0, 0), (7.0, 5)]);
    }

    #[test]
    fn front_is_monotone() {
        // Fundamental invariant: ws strictly ascending, time strictly descending.
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let ds = desirable_set(
            &h,
            &cache,
            &conv2(64),
            120 * MIB,
            BatchSizePolicy::PowerOfTwo,
        );
        assert!(!ds.is_empty());
        for w in ds.windows(2) {
            assert!(w[0].workspace_bytes() < w[1].workspace_bytes());
            assert!(w[0].time_us() > w[1].time_us());
        }
    }

    #[test]
    fn every_configuration_covers_the_batch() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let ds = desirable_set(
            &h,
            &cache,
            &conv2(64),
            120 * MIB,
            BatchSizePolicy::PowerOfTwo,
        );
        for c in &ds {
            assert_eq!(c.batch(), 64, "configuration {c} does not tile the batch");
            assert!(c.workspace_bytes() <= 120 * MIB);
        }
    }

    #[test]
    fn contains_the_wr_optimum() {
        // The paper notes T(B) ∈ D(B): the fastest WR configuration is one
        // endpoint of the desirable set.
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let key = conv2(128);
        let ds = desirable_set(&h, &cache, &key, 120 * MIB, BatchSizePolicy::PowerOfTwo);
        let wr = crate::wr::optimize_wr(
            &h,
            &cache,
            &key,
            120 * MIB,
            BatchSizePolicy::PowerOfTwo,
            false,
        )
        .unwrap();
        let fastest = ds.last().unwrap();
        assert!(
            (fastest.time_us() - wr.config.time_us()).abs() < 1e-6,
            "desirable-set endpoint {} vs WR optimum {}",
            fastest.time_us(),
            wr.config.time_us()
        );
    }

    #[test]
    fn front_size_is_modest() {
        // §IV-D: the largest desirable set observed for AlexNet was 68
        // entries — far below the exponential enumeration. Sanity-check the
        // same order of magnitude.
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let ds = desirable_set(
            &h,
            &cache,
            &conv2(256),
            120 * MIB,
            BatchSizePolicy::PowerOfTwo,
        );
        assert!(
            ds.len() <= 128,
            "desirable set unexpectedly large: {}",
            ds.len()
        );
    }

    #[test]
    fn zero_cap_yields_single_zero_workspace_configuration() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let ds = desirable_set(&h, &cache, &conv2(32), 0, BatchSizePolicy::PowerOfTwo);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].workspace_bytes(), 0);
    }
}
