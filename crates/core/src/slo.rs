//! SLO-aware batch planning: the WR dynamic program repurposed from
//! workspace limits to latency limits.
//!
//! Training asks "what division of a *fixed* mini-batch is fastest within a
//! workspace budget?" (§III-B). Serving inverts the free variable: requests
//! arrive one sample at a time, and the scheduler must decide *how many* to
//! coalesce — a bigger batch amortizes launch overhead and unlocks the fast
//! FFT/Winograd engines (per-sample time falls), but takes longer in
//! absolute terms, which can push the oldest queued request past its
//! deadline. The same recurrence answers both questions:
//!
//! ```text
//! T(n) = min( t*(n),  min_m T(n−m) + t*(m) )      over candidate sizes m
//! ```
//!
//! where `t*(m)` now comes from the serving latency table — the forward
//! pass priced at micro-batch `m`, itself read off each kernel's Pareto
//! front ([`forward_latency_table`]). Instead of minimizing `T(B)` for a
//! fixed `B` under `workspace ≤ W`, the serve planner maximizes throughput
//! `n / T(n)` over the coalesced count `n` under `T(n) ≤ deadline`:
//! the workspace *limit* became a latency *limit*, and the objective
//! flipped from time to rate.

use crate::bench_cache::BenchCache;
use crate::error::UcudnnError;
use crate::kernel::KernelKey;
use crate::policy::BatchSizePolicy;
use crate::wr::best_micro;
use ucudnn_cudnn_sim::CudnnHandle;

/// The planner's verdict for one scheduling opportunity.
#[derive(Debug, Clone, PartialEq)]
pub struct SloDecision {
    /// How many queued requests to coalesce.
    pub batch: usize,
    /// The execution composition: micro-batch sizes (descending) whose sum
    /// is `batch`, each a candidate size from the latency table.
    pub micros: Vec<usize>,
    /// Modeled execution time of the composition, microseconds.
    pub exec_us: f64,
    /// The objective: `batch / exec_us` (requests per microsecond).
    pub throughput: f64,
}

/// Plan the best coalesced batch for one scheduling opportunity.
///
/// `table` is the `t*(m)` latency table: `(micro_batch, exec_us)` rows,
/// typically from [`forward_latency_table`]. `queue_depth` is how many
/// requests are waiting, `max_batch` caps the coalesced count
/// (`UCUDNN_SERVE_MAX_BATCH`), and `deadline_us` is the *oldest* queued
/// request's remaining budget — every younger request has more slack, so a
/// composition feasible for the oldest is feasible for the whole batch.
///
/// Returns the feasible `n ≤ min(queue_depth, max_batch)` maximizing
/// throughput `n / T(n)` (ties broken toward larger `n`, so equal-rate
/// plans drain the queue faster), or `None` when even the cheapest
/// single-request plan misses the deadline — the caller's cue to shed.
pub fn plan_batch(
    table: &[(usize, f64)],
    queue_depth: usize,
    max_batch: usize,
    deadline_us: f64,
) -> Option<SloDecision> {
    let n_max = queue_depth.min(max_batch);
    if n_max == 0 || !deadline_us.is_finite() {
        return None;
    }
    let atoms: Vec<(usize, f64)> = table
        .iter()
        .copied()
        .filter(|&(m, t)| m >= 1 && m <= n_max && t.is_finite() && t > 0.0)
        .collect();
    if atoms.is_empty() {
        return None;
    }

    // The WR recurrence over coalesced counts, candidate sizes as atoms.
    const INF: f64 = f64::INFINITY;
    let mut t = vec![INF; n_max + 1];
    let mut step = vec![0usize; n_max + 1];
    t[0] = 0.0;
    for n in 1..=n_max {
        for &(m, tm) in &atoms {
            if m > n || t[n - m] == INF {
                continue;
            }
            let cand = t[n - m] + tm;
            if cand < t[n] {
                t[n] = cand;
                step[n] = m;
            }
        }
    }

    // Objective flip: among deadline-feasible counts, maximize n / T(n).
    let mut best: Option<(usize, f64)> = None;
    for (n, &tn) in t.iter().enumerate().take(n_max + 1).skip(1) {
        if tn > deadline_us {
            continue;
        }
        let rate = n as f64 / tn;
        // `n` ascends, so `>=` breaks rate ties toward the larger batch.
        if best.is_none_or(|(_, r)| rate >= r) {
            best = Some((n, rate));
        }
    }
    let (batch, throughput) = best?;

    let mut micros = Vec::new();
    let mut n = batch;
    while n > 0 {
        micros.push(step[n]);
        n -= step[n];
    }
    micros.sort_by_key(|&m| std::cmp::Reverse(m));
    Some(SloDecision {
        batch,
        micros,
        exec_us: t[batch],
        throughput,
    })
}

/// Build the serving latency table `t*(m)` from the kernels' Pareto fronts.
///
/// For each candidate micro-batch size of `policy` up to `max_batch`, the
/// forward latency is the sum over `kernels` of the fastest configuration
/// within `ws_limit` — [`best_micro`], i.e. the minimum of the benchmarked
/// time×workspace front at that size. Sizes where any kernel has no
/// feasible configuration are omitted (the planner simply never composes
/// with them — one rung of the shed ladder).
///
/// The table inherits the benchmark cache's determinism: same engine, same
/// kernels, same policy ⇒ byte-identical tables, which is what makes the
/// serve simulation reproducible.
pub fn forward_latency_table(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernels: &[KernelKey],
    policy: BatchSizePolicy,
    max_batch: usize,
    ws_limit: usize,
) -> Vec<(usize, f64)> {
    let mut table = Vec::new();
    for m in policy.candidate_sizes(max_batch) {
        let mut total = 0.0;
        let mut ok = true;
        for k in kernels {
            match best_micro(handle, cache, k, m, ws_limit) {
                Some(mc) => total += mc.time_us,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && total > 0.0 {
            table.push((m, total));
        }
    }
    table
}

/// Where a serving latency table came from — carried alongside the plan so
/// the drift detector knows which measurement generation it is judging
/// observations against, and operators can see how many times (and why) a
/// server re-planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableProvenance {
    /// Monotone re-benchmark generation: 1 for the startup table, +1 per
    /// successful refresh.
    pub generation: u64,
    /// Human-readable origin: `"startup"`, or `"rebench"` for refreshed
    /// tables.
    pub source: String,
    /// How many kernels had their cached benchmarks invalidated and
    /// re-measured to produce this table (0 at startup).
    pub refreshed_kernels: usize,
}

impl TableProvenance {
    /// Provenance of the table built at server startup.
    pub fn startup() -> Self {
        Self {
            generation: 1,
            source: "startup".to_string(),
            refreshed_kernels: 0,
        }
    }

    /// Provenance of the table produced by the next re-benchmark after
    /// `self`, which refreshed `refreshed_kernels` kernels.
    pub fn rebenched(&self, refreshed_kernels: usize) -> Self {
        Self {
            generation: self.generation + 1,
            source: "rebench".to_string(),
            refreshed_kernels,
        }
    }
}

/// Refresh the serving latency table after drift: invalidate the `stale`
/// kernels' cached benchmarks (every candidate micro-batch size of
/// `policy`), then rebuild the full table through the cache's single-flight
/// path. Kernels *not* listed in `stale` keep their cached measurements, so
/// a re-benchmark costs only the drifted kernels' Pareto fronts.
///
/// Serving is expected to continue on the old plan while this runs; the
/// caller swaps the returned table in atomically (see `ucudnn-serve`).
///
/// # Errors
/// [`UcudnnError::NoFeasibleConfiguration`] when the rebuilt table is empty
/// — every candidate size lost its feasible configuration, e.g. because the
/// re-benchmark itself hit injected faults. The caller must keep the old
/// plan live (DESIGN §9: degrade, never crash).
pub fn rebench_latency_table(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernels: &[KernelKey],
    stale: &[KernelKey],
    policy: BatchSizePolicy,
    max_batch: usize,
    ws_limit: usize,
) -> Result<Vec<(usize, f64)>, UcudnnError> {
    for kernel in stale {
        for m in policy.candidate_sizes(max_batch) {
            let micro_key = KernelKey {
                input: kernel.input.with_batch(m),
                ..*kernel
            };
            cache.invalidate(handle, &micro_key);
        }
    }
    let table = forward_latency_table(handle, cache, kernels, policy, max_batch, ws_limit);
    if table.is_empty() {
        return Err(UcudnnError::NoFeasibleConfiguration(
            "re-benchmark produced an empty latency table".to_string(),
        ));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_cudnn_sim::ConvOp;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

    /// Launch-overhead-shaped table: t(m) = 12 + m (sub-linear per sample).
    fn overhead_table(sizes: &[usize]) -> Vec<(usize, f64)> {
        sizes.iter().map(|&m| (m, 12.0 + m as f64)).collect()
    }

    #[test]
    fn empty_inputs_yield_no_decision() {
        assert_eq!(plan_batch(&[], 4, 8, 1e6), None);
        assert_eq!(plan_batch(&[(1, 10.0)], 0, 8, 1e6), None);
        assert_eq!(plan_batch(&[(1, 10.0)], 4, 0, 1e6), None);
        assert_eq!(plan_batch(&[(1, 10.0)], 4, 8, f64::NAN), None);
        // Atoms larger than the feasible range are unusable.
        assert_eq!(plan_batch(&[(16, 10.0)], 4, 8, 1e6), None);
    }

    #[test]
    fn infeasible_deadline_sheds() {
        // Even one request misses a 5µs deadline when t(1) = 13.
        assert_eq!(plan_batch(&overhead_table(&[1, 2, 4]), 4, 8, 5.0), None);
        // Exactly on the boundary is feasible (≤, not <).
        let d = plan_batch(&overhead_table(&[1]), 1, 8, 13.0).unwrap();
        assert_eq!(d.batch, 1);
        assert_eq!(d.exec_us, 13.0);
    }

    #[test]
    fn sub_linear_table_prefers_the_largest_feasible_batch() {
        // Per-sample cost falls with m, so with ample deadline the planner
        // coalesces everything it can.
        let table = overhead_table(&[1, 2, 4, 8]);
        let d = plan_batch(&table, 8, 8, 1e6).unwrap();
        assert_eq!(d.batch, 8);
        assert_eq!(d.micros, vec![8]);
        assert_eq!(d.exec_us, 20.0);
    }

    #[test]
    fn tight_deadline_forces_a_smaller_batch() {
        let table = overhead_table(&[1, 2, 4, 8]);
        // t(8)=20 misses an 18µs budget; t(4)=16 fits.
        let d = plan_batch(&table, 8, 8, 18.0).unwrap();
        assert_eq!(d.batch, 4);
        assert!(d.exec_us <= 18.0);
    }

    #[test]
    fn composition_tiles_the_batch_with_table_sizes() {
        let table = overhead_table(&[1, 2, 4]);
        let d = plan_batch(&table, 7, 8, 1e6).unwrap();
        assert_eq!(d.micros.iter().sum::<usize>(), d.batch);
        for m in &d.micros {
            assert!(
                table.iter().any(|(s, _)| s == m),
                "micro {m} not a candidate"
            );
        }
        // Descending order, like WR configurations.
        let mut sorted = d.micros.clone();
        sorted.sort_by_key(|&m| std::cmp::Reverse(m));
        assert_eq!(d.micros, sorted);
    }

    #[test]
    fn dp_matches_brute_force_on_small_instances() {
        // Exhaustively enumerate compositions for every queue depth and a
        // few deadlines; the DP decision must achieve the optimal rate.
        let table = vec![(1, 14.0), (2, 17.0), (3, 25.0), (5, 28.0)];
        fn brute(table: &[(usize, f64)], n_max: usize, deadline: f64) -> Option<(usize, f64)> {
            // min total time per count via recursion over compositions
            fn t_min(table: &[(usize, f64)], n: usize) -> f64 {
                if n == 0 {
                    return 0.0;
                }
                let mut best = f64::INFINITY;
                for &(m, tm) in table {
                    if m <= n {
                        best = best.min(tm + t_min(table, n - m));
                    }
                }
                best
            }
            let mut best: Option<(usize, f64)> = None;
            for n in 1..=n_max {
                let t = t_min(table, n);
                if t.is_finite() && t <= deadline {
                    let rate = n as f64 / t;
                    // n ascends, so on ties the larger batch wins.
                    if best.is_none_or(|(_, r)| rate >= r) {
                        best = Some((n, rate));
                    }
                }
            }
            best
        }
        for n_max in 1..=9 {
            for deadline in [10.0, 20.0, 40.0, 80.0, 200.0] {
                let dp = plan_batch(&table, n_max, 16, deadline);
                let bf = brute(&table, n_max, deadline);
                match (dp, bf) {
                    (None, None) => {}
                    (Some(d), Some((n, rate))) => {
                        assert_eq!(d.batch, n, "n_max={n_max} deadline={deadline}");
                        assert!(
                            (d.throughput - rate).abs() < 1e-12,
                            "n_max={n_max} deadline={deadline}"
                        );
                        assert!(d.exec_us <= deadline);
                    }
                    (dp, bf) => panic!("n_max={n_max} deadline={deadline}: dp={dp:?} bf={bf:?}"),
                }
            }
        }
    }

    #[test]
    fn equal_rate_ties_break_toward_the_larger_batch() {
        // Perfectly linear table: every n has the same rate; the planner
        // must drain as much of the queue as feasibility allows.
        let table: Vec<(usize, f64)> = (1..=4).map(|m| (m, 10.0 * m as f64)).collect();
        let d = plan_batch(&table, 4, 8, 1e6).unwrap();
        assert_eq!(d.batch, 4);
    }

    #[test]
    fn rebench_refreshes_only_the_stale_kernel_and_sees_the_drift() {
        use ucudnn_gpu_model::Perturbation;
        let g = ConvGeometry::with_square(
            Shape4::new(32, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        );
        // Perturbed from t=0, but the startup table is benchmarked on a
        // clean handle into the shared cache first — the classic stale
        // situation: cached truth predates the drift.
        let clean = CudnnHandle::simulated(p100_sxm2());
        let drifted =
            CudnnHandle::simulated(p100_sxm2()).with_perturbation(Perturbation::new(0.0, 2.0));
        let cache = BenchCache::new();
        let kernels = [KernelKey::new(ConvOp::Forward, &g)];
        let startup = forward_latency_table(
            &clean,
            &cache,
            &kernels,
            BatchSizePolicy::PowerOfTwo,
            32,
            512 << 20,
        );
        // Without invalidation the cache still serves the stale table even
        // through the drifted handle (same engine tag).
        let stale_read = forward_latency_table(
            &drifted,
            &cache,
            &kernels,
            BatchSizePolicy::PowerOfTwo,
            32,
            512 << 20,
        );
        assert_eq!(stale_read, startup, "cache hides the drift until evicted");
        let refreshed = rebench_latency_table(
            &drifted,
            &cache,
            &kernels,
            &kernels,
            BatchSizePolicy::PowerOfTwo,
            32,
            512 << 20,
        )
        .unwrap();
        assert_eq!(refreshed.len(), startup.len());
        for (&(m, t_new), &(m0, t_old)) in refreshed.iter().zip(startup.iter()) {
            assert_eq!(m, m0);
            assert!(
                (t_new - 2.0 * t_old).abs() < 1e-6 * t_old,
                "size {m}: refreshed {t_new} must be 2x stale {t_old}"
            );
        }
        assert_eq!(
            cache.stats().invalidations,
            startup.len() as u64,
            "one eviction per candidate size"
        );
        // Provenance bookkeeping.
        let p0 = TableProvenance::startup();
        let p1 = p0.rebenched(kernels.len());
        assert_eq!((p0.generation, p1.generation), (1, 2));
        assert_eq!(p1.source, "rebench");
        assert_eq!(p1.refreshed_kernels, 1);
    }

    #[test]
    fn rebench_with_an_empty_result_is_an_error_not_a_swap() {
        use ucudnn_cudnn_sim::{FaultPlan, FaultTarget};
        let g = ConvGeometry::with_square(
            Shape4::new(32, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        );
        let kernels = [KernelKey::new(ConvOp::Forward, &g)];
        let cache = BenchCache::new();
        let clean = CudnnHandle::simulated(p100_sxm2());
        let startup = forward_latency_table(
            &clean,
            &cache,
            &kernels,
            BatchSizePolicy::PowerOfTwo,
            32,
            512 << 20,
        );
        assert!(!startup.is_empty());
        // The re-benchmark runs on a handle whose every benchmark faults:
        // the rebuild finds nothing feasible and must surface an error.
        let faulted = CudnnHandle::simulated(p100_sxm2()).with_faults(FaultPlan {
            targets: vec![FaultTarget::any()],
            ..FaultPlan::default()
        });
        let err = rebench_latency_table(
            &faulted,
            &cache,
            &kernels,
            &kernels,
            BatchSizePolicy::PowerOfTwo,
            32,
            512 << 20,
        )
        .unwrap_err();
        assert!(
            matches!(err, UcudnnError::NoFeasibleConfiguration(_)),
            "got {err}"
        );
    }

    #[test]
    fn latency_table_from_the_pareto_front_is_sane() {
        // AlexNet conv2 forward on the simulated P100: the table must be
        // positive, ascending in m, and sub-linear per sample somewhere
        // (launch overhead amortizes; FFT unlocks at larger m).
        let g = ConvGeometry::with_square(
            Shape4::new(32, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        );
        let handle = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let kernels = [KernelKey::new(ConvOp::Forward, &g)];
        let table = forward_latency_table(
            &handle,
            &cache,
            &kernels,
            BatchSizePolicy::PowerOfTwo,
            32,
            512 << 20,
        );
        let sizes: Vec<usize> = table.iter().map(|&(m, _)| m).collect();
        assert_eq!(sizes, vec![1, 2, 4, 8, 16, 32]);
        for &(_, t) in &table {
            assert!(t.is_finite() && t > 0.0, "bad entry in {table:?}");
        }
        // Total time need not be monotone (algorithm switches), but the
        // per-sample cost must fall sharply from batch 1 to the largest
        // batch — the economics dynamic batching exploits.
        let (_, t1) = table[0];
        let (m_last, t_last) = *table.last().unwrap();
        let per_sample_last = t_last / m_last as f64;
        assert!(
            per_sample_last < 0.5 * t1,
            "per-sample cost must fall with batch: {table:?}"
        );
        // And the table is deterministic: a fresh cache reproduces it.
        let table2 = forward_latency_table(
            &handle,
            &BenchCache::new(),
            &kernels,
            BatchSizePolicy::PowerOfTwo,
            32,
            512 << 20,
        );
        assert_eq!(table, table2);
    }
}
