//! Optimization-time metrics: where does μ-cuDNN's setup cost go?
//!
//! The paper reports optimizer overhead as a single wall-clock number
//! (§IV-E); this module breaks it down by phase — micro-benchmarking, WR
//! dynamic programming, Pareto-front construction, and WD ILP solving — and
//! pairs it with the cache traffic counters so a training run can tell *why*
//! setup was fast or slow (e.g. 95% cache hits after a warm file DB load).
//!
//! Every number lives in a [`crate::telemetry::Registry`]: the optimizer
//! worker threads record into lock-free instrument handles, the JSON report
//! ([`OptimizerMetrics::to_json`]) and the Prometheus-style exposition
//! ([`OptimizerMetrics::registry`]) both read the same instruments — one
//! source of truth instead of parallel counter sets. Cache and fault
//! tallies owned elsewhere ([`CacheStats`], [`ExecCacheStats`], the fault
//! injector) are mirrored into the registry by
//! [`OptimizerMetrics::sync_cache`] at export time.
//!
//! Phase times are *aggregated over threads*, so with N workers the
//! per-phase sums can exceed the end-to-end wall clock; `total_wall` is
//! recorded once by the orchestrator and is the actual elapsed time. The
//! ratio between the two is the parallel speedup.

use crate::bench_cache::CacheStats;
use crate::json::{self, Value};
use crate::telemetry::{Counter, Gauge, Registry};
use std::time::Instant;
use ucudnn_cudnn_sim::ExecCacheStats;

/// The optimizer phases that are individually timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Micro-benchmark evaluation (cache misses running `Find`).
    Benchmark,
    /// WR dynamic programming over batch divisions.
    Dp,
    /// Pareto-front / desirable-set construction for WD.
    Pareto,
    /// WD 0-1 ILP solving.
    Ilp,
}

/// Immutable snapshot of the per-phase timings, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Micro-benchmarking time, summed across worker threads.
    pub benchmark_us: u64,
    /// WR dynamic-programming time, summed across worker threads.
    pub dp_us: u64,
    /// Pareto/desirable-set construction time, summed across worker threads.
    pub pareto_us: u64,
    /// ILP solve time (always single-threaded).
    pub ilp_us: u64,
    /// End-to-end optimization wall clock (not a sum over threads).
    pub total_us: u64,
}

/// Shared, thread-safe metrics collector for one optimization run, backed
/// by a [`Registry`] of typed instruments.
#[derive(Debug)]
pub struct OptimizerMetrics {
    registry: Registry,
    benchmark_us: Counter,
    dp_us: Counter,
    pareto_us: Counter,
    ilp_us: Counter,
    total_wall_us: Gauge,
    threads: Gauge,
    kernels: Counter,
    degradations: Counter,
    exec_retries: Counter,
    // Mirrors of externally owned tallies, written by `sync_cache`.
    cache_hits: Counter,
    cache_misses: Counter,
    cache_single_flight: Counter,
    cache_points_dropped: Counter,
    cache_bench_retries: Counter,
    cache_db_loaded: Counter,
    cache_db_quarantined: Counter,
    exec_cache_hits: Counter,
    exec_cache_misses: Counter,
    exec_cache_evictions: Counter,
    exec_cache_bytes: Gauge,
    faults_injected: Counter,
}

impl Default for OptimizerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl OptimizerMetrics {
    /// Fresh collector with all instruments at zero.
    pub fn new() -> Self {
        let registry = Registry::new();
        let phase = registry.counter_vec(
            "ucudnn_opt_phase_us_total",
            "Optimizer time by phase, microseconds, summed across worker threads.",
            "phase",
            &["benchmark", "dp", "pareto", "ilp"],
        );
        let known = |key: &str| phase.with(key).expect("phase in vocabulary");
        Self {
            benchmark_us: known("benchmark"),
            dp_us: known("dp"),
            pareto_us: known("pareto"),
            ilp_us: known("ilp"),
            total_wall_us: registry.gauge(
                "ucudnn_opt_total_wall_us",
                "End-to-end optimization wall clock, microseconds.",
            ),
            threads: registry.gauge(
                "ucudnn_opt_threads",
                "Worker threads used by the last optimization run.",
            ),
            kernels: registry.counter(
                "ucudnn_opt_kernels_total",
                "Kernels whose plans were (re)computed.",
            ),
            degradations: registry.counter(
                "ucudnn_opt_degradations_total",
                "Graceful-degradation ladder steps taken by the optimizer.",
            ),
            exec_retries: registry.counter(
                "ucudnn_exec_retries_total",
                "Execution-time retries after transient kernel faults.",
            ),
            cache_hits: registry.counter("ucudnn_cache_hits_total", "Benchmark cache hits."),
            cache_misses: registry.counter(
                "ucudnn_cache_misses_total",
                "Benchmark cache misses (micro-benchmarks actually run).",
            ),
            cache_single_flight: registry.counter(
                "ucudnn_cache_single_flight_waits_total",
                "Threads that waited on another thread's in-flight benchmark.",
            ),
            cache_points_dropped: registry.counter(
                "ucudnn_cache_bench_points_dropped_total",
                "Benchmark points dropped after persistent faults.",
            ),
            cache_bench_retries: registry.counter(
                "ucudnn_cache_bench_retries_total",
                "Benchmark retries after transient faults.",
            ),
            cache_db_loaded: registry.counter(
                "ucudnn_cache_db_rows_loaded_total",
                "Rows loaded from the benchmark file DB.",
            ),
            cache_db_quarantined: registry.counter(
                "ucudnn_cache_db_rows_quarantined_total",
                "File-DB rows quarantined as corrupt.",
            ),
            exec_cache_hits: registry
                .counter("ucudnn_exec_cache_hits_total", "Execution-plan cache hits."),
            exec_cache_misses: registry.counter(
                "ucudnn_exec_cache_misses_total",
                "Execution-plan cache misses.",
            ),
            exec_cache_evictions: registry.counter(
                "ucudnn_exec_cache_evictions_total",
                "Execution-plan cache evictions.",
            ),
            exec_cache_bytes: registry.gauge(
                "ucudnn_exec_cache_bytes",
                "Bytes resident in the execution-plan cache.",
            ),
            faults_injected: registry.counter(
                "ucudnn_faults_injected_total",
                "Faults injected by the deterministic fault injector.",
            ),
            registry,
        }
    }

    /// The registry backing this collector; clone it to scrape or compose
    /// expositions ([`Registry::expose_into`]).
    pub fn registry(&self) -> Registry {
        self.registry.clone()
    }

    /// Add `micros` to a phase counter.
    pub fn add(&self, phase: Phase, micros: u64) {
        let counter = match phase {
            Phase::Benchmark => &self.benchmark_us,
            Phase::Dp => &self.dp_us,
            Phase::Pareto => &self.pareto_us,
            Phase::Ilp => &self.ilp_us,
        };
        counter.add(micros);
    }

    /// Run `f`, charging its wall time to `phase`.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed().as_micros() as u64);
        out
    }

    /// Record the end-to-end wall clock of the whole optimization.
    pub fn set_total_us(&self, micros: u64) {
        self.total_wall_us.set(micros as f64);
    }

    /// Record how many worker threads the run used.
    pub fn set_threads(&self, n: usize) {
        self.threads.set(n as f64);
    }

    /// Count kernels whose plans were (re)computed.
    pub fn add_kernels(&self, n: usize) {
        self.kernels.add(n as u64);
    }

    /// Worker thread count of the last run.
    pub fn threads(&self) -> usize {
        self.threads.get() as usize
    }

    /// Total kernels optimized so far.
    pub fn kernels(&self) -> u64 {
        self.kernels.get()
    }

    /// Record one graceful degradation: a plan fell down a rung of the
    /// ladder (dropped benchmark point, undivided fallback, shrunk
    /// workspace) instead of failing the optimization.
    pub fn degradation(&self) {
        self.degradations.inc();
    }

    /// Degradations recorded so far.
    pub fn degradations(&self) -> u64 {
        self.degradations.get()
    }

    /// Count execution-time retries after transient kernel faults.
    pub fn add_exec_retries(&self, n: u64) {
        self.exec_retries.add(n);
    }

    /// Execution retries recorded so far.
    pub fn exec_retries(&self) -> u64 {
        self.exec_retries.get()
    }

    /// Snapshot the per-phase timings.
    pub fn timings(&self) -> PhaseTimings {
        PhaseTimings {
            benchmark_us: self.benchmark_us.get(),
            dp_us: self.dp_us.get(),
            pareto_us: self.pareto_us.get(),
            ilp_us: self.ilp_us.get(),
            total_us: self.total_wall_us.get() as u64,
        }
    }

    /// Reset every instrument to zero (for back-to-back measured runs).
    pub fn reset(&self) {
        for c in [
            &self.benchmark_us,
            &self.dp_us,
            &self.pareto_us,
            &self.ilp_us,
            &self.kernels,
            &self.degradations,
            &self.exec_retries,
        ] {
            c.set(0);
        }
        self.total_wall_us.set(0.0);
        self.threads.set(0.0);
    }

    /// Mirror the externally owned tallies — benchmark cache, execution
    /// cache, fault injector — into the registry so a scrape sees them
    /// without knowing about those structs. Absolute sync: callers pass the
    /// current totals.
    pub fn sync_cache(&self, cache: &CacheStats, exec_cache: &ExecCacheStats, faults: u64) {
        self.cache_hits.set(cache.hits);
        self.cache_misses.set(cache.misses);
        self.cache_single_flight.set(cache.single_flight_waits);
        self.cache_points_dropped.set(cache.bench_points_dropped);
        self.cache_bench_retries.set(cache.bench_retries);
        self.cache_db_loaded.set(cache.db_rows_loaded);
        self.cache_db_quarantined.set(cache.db_rows_quarantined);
        self.exec_cache_hits.set(exec_cache.hits);
        self.exec_cache_misses.set(exec_cache.misses);
        self.exec_cache_evictions.set(exec_cache.evictions);
        self.exec_cache_bytes.set(exec_cache.bytes as f64);
        self.faults_injected.set(faults);
    }

    /// Render the full metrics report as a JSON document: per-phase
    /// timings, cache traffic, per-kernel benchmark counts, the
    /// execution-plan cache counters, and the robustness ledger
    /// (degradations, injected faults, retries, and DB quarantine counts).
    /// `faults_injected` comes from the substrate's fault injector
    /// ([`ucudnn_cudnn_sim::CudnnHandle::faults_injected`]); `exec_cache`
    /// from [`ucudnn_cudnn_sim::CudnnHandle::exec_cache_stats`]. The same
    /// call mirrors those tallies into the registry, so the JSON report and
    /// a subsequent exposition agree.
    pub fn to_json(
        &self,
        cache: CacheStats,
        bench_counts: &[(String, u64)],
        faults_injected: u64,
        exec_cache: ExecCacheStats,
    ) -> String {
        self.sync_cache(&cache, &exec_cache, faults_injected);
        let t = self.timings();
        // Degradations observed anywhere: explicit ladder steps recorded by
        // the optimizers plus benchmark points the cache had to drop.
        let degradations = self.degradations() + cache.bench_points_dropped;
        json::obj([
            (
                "phases_us",
                json::obj([
                    ("benchmark", json::num(t.benchmark_us as f64)),
                    ("dp", json::num(t.dp_us as f64)),
                    ("pareto", json::num(t.pareto_us as f64)),
                    ("ilp", json::num(t.ilp_us as f64)),
                    ("total_wall", json::num(t.total_us as f64)),
                ]),
            ),
            ("threads", json::num(self.threads() as f64)),
            ("kernels_optimized", json::num(self.kernels() as f64)),
            (
                "cache",
                json::obj([
                    ("hits", json::num(cache.hits as f64)),
                    ("misses", json::num(cache.misses as f64)),
                    (
                        "single_flight_waits",
                        json::num(cache.single_flight_waits as f64),
                    ),
                ]),
            ),
            (
                "exec_cache",
                json::obj([
                    ("hits", json::num(exec_cache.hits as f64)),
                    ("misses", json::num(exec_cache.misses as f64)),
                    ("evictions", json::num(exec_cache.evictions as f64)),
                    ("bytes", json::num(exec_cache.bytes as f64)),
                ]),
            ),
            (
                "robustness",
                json::obj([
                    ("degradations", json::num(degradations as f64)),
                    ("faults_injected", json::num(faults_injected as f64)),
                    (
                        "bench_points_dropped",
                        json::num(cache.bench_points_dropped as f64),
                    ),
                    ("bench_retries", json::num(cache.bench_retries as f64)),
                    ("exec_retries", json::num(self.exec_retries() as f64)),
                    ("db_rows_loaded", json::num(cache.db_rows_loaded as f64)),
                    (
                        "db_rows_quarantined",
                        json::num(cache.db_rows_quarantined as f64),
                    ),
                ]),
            ),
            (
                "benchmark_counts",
                Value::Obj(
                    bench_counts
                        .iter()
                        .map(|(k, n)| (k.clone(), json::num(*n as f64)))
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_independently() {
        let m = OptimizerMetrics::new();
        m.add(Phase::Benchmark, 10);
        m.add(Phase::Benchmark, 5);
        m.add(Phase::Dp, 7);
        m.add(Phase::Pareto, 3);
        m.add(Phase::Ilp, 2);
        m.set_total_us(20);
        let t = m.timings();
        assert_eq!(t.benchmark_us, 15);
        assert_eq!(t.dp_us, 7);
        assert_eq!(t.pareto_us, 3);
        assert_eq!(t.ilp_us, 2);
        assert_eq!(t.total_us, 20);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = OptimizerMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.add(Phase::Dp, 1);
                    }
                });
            }
        });
        assert_eq!(m.timings().dp_us, 8000);
    }

    #[test]
    fn time_charges_the_right_phase() {
        let m = OptimizerMetrics::new();
        let out = m.time(Phase::Pareto, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(
            m.timings().pareto_us >= 1000,
            "sleep must be charged to pareto"
        );
        assert_eq!(m.timings().dp_us, 0);
    }

    #[test]
    fn json_export_is_parseable_and_complete() {
        let m = OptimizerMetrics::new();
        m.add(Phase::Benchmark, 100);
        m.set_total_us(150);
        m.set_threads(4);
        m.add_kernels(9);
        m.degradation();
        m.add_exec_retries(2);
        let stats = crate::CacheStats {
            hits: 3,
            misses: 2,
            single_flight_waits: 1,
            bench_points_dropped: 4,
            bench_retries: 1,
            db_rows_loaded: 7,
            db_rows_quarantined: 2,
            invalidations: 0,
        };
        let counts = vec![("fwd[k]".to_string(), 1u64)];
        let exec = ExecCacheStats {
            hits: 12,
            misses: 3,
            evictions: 1,
            bytes: 2048,
        };
        let text = m.to_json(stats, &counts, 6, exec);
        let doc = Value::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("phases_us")
                .unwrap()
                .get("benchmark")
                .unwrap()
                .as_u64(),
            Some(100)
        );
        assert_eq!(
            doc.get("phases_us")
                .unwrap()
                .get("total_wall")
                .unwrap()
                .as_u64(),
            Some(150)
        );
        assert_eq!(doc.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("kernels_optimized").unwrap().as_u64(), Some(9));
        assert_eq!(
            doc.get("cache").unwrap().get("hits").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            doc.get("cache")
                .unwrap()
                .get("single_flight_waits")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("benchmark_counts")
                .unwrap()
                .get("fwd[k]")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        let ec = doc.get("exec_cache").unwrap();
        assert_eq!(ec.get("hits").unwrap().as_u64(), Some(12));
        assert_eq!(ec.get("misses").unwrap().as_u64(), Some(3));
        assert_eq!(ec.get("evictions").unwrap().as_u64(), Some(1));
        assert_eq!(ec.get("bytes").unwrap().as_u64(), Some(2048));
        let rob = doc.get("robustness").unwrap();
        // 1 explicit degradation + 4 dropped benchmark points.
        assert_eq!(rob.get("degradations").unwrap().as_u64(), Some(5));
        assert_eq!(rob.get("faults_injected").unwrap().as_u64(), Some(6));
        assert_eq!(rob.get("bench_retries").unwrap().as_u64(), Some(1));
        assert_eq!(rob.get("exec_retries").unwrap().as_u64(), Some(2));
        assert_eq!(rob.get("db_rows_loaded").unwrap().as_u64(), Some(7));
        assert_eq!(rob.get("db_rows_quarantined").unwrap().as_u64(), Some(2));
        // The same export mirrored the external tallies into the registry:
        // a scrape agrees with the JSON document (satellite: one schema).
        let text = m.registry().expose();
        for line in [
            "ucudnn_opt_phase_us_total{phase=\"benchmark\"} 100",
            "ucudnn_cache_hits_total 3",
            "ucudnn_exec_cache_hits_total 12",
            "ucudnn_exec_cache_bytes 2048",
            "ucudnn_faults_injected_total 6",
            "ucudnn_opt_degradations_total 1",
        ] {
            assert!(text.contains(line), "exposition missing {line:?}:\n{text}");
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = OptimizerMetrics::new();
        m.add(Phase::Ilp, 5);
        m.set_threads(2);
        m.add_kernels(3);
        m.degradation();
        m.add_exec_retries(4);
        m.reset();
        assert_eq!(m.timings(), PhaseTimings::default());
        assert_eq!(m.threads(), 0);
        assert_eq!(m.kernels(), 0);
        assert_eq!(m.degradations(), 0);
        assert_eq!(m.exec_retries(), 0);
    }
}
