//! Optimization-time metrics: where does μ-cuDNN's setup cost go?
//!
//! The paper reports optimizer overhead as a single wall-clock number
//! (§IV-E); this module breaks it down by phase — micro-benchmarking, WR
//! dynamic programming, Pareto-front construction, and WD ILP solving — and
//! pairs it with the cache traffic counters so a training run can tell *why*
//! setup was fast or slow (e.g. 95% cache hits after a warm file DB load).
//!
//! All counters are atomic: optimizer worker threads record into one shared
//! [`OptimizerMetrics`] without locking. Phase times are *aggregated over
//! threads*, so with N workers the per-phase sums can exceed the end-to-end
//! wall clock; `total_us` is recorded once by the orchestrator and is the
//! actual elapsed time. The ratio between the two is the parallel speedup.

use crate::bench_cache::CacheStats;
use crate::json::{self, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use ucudnn_cudnn_sim::ExecCacheStats;

/// The optimizer phases that are individually timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Micro-benchmark evaluation (cache misses running `Find`).
    Benchmark,
    /// WR dynamic programming over batch divisions.
    Dp,
    /// Pareto-front / desirable-set construction for WD.
    Pareto,
    /// WD 0-1 ILP solving.
    Ilp,
}

/// Immutable snapshot of the per-phase timings, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Micro-benchmarking time, summed across worker threads.
    pub benchmark_us: u64,
    /// WR dynamic-programming time, summed across worker threads.
    pub dp_us: u64,
    /// Pareto/desirable-set construction time, summed across worker threads.
    pub pareto_us: u64,
    /// ILP solve time (always single-threaded).
    pub ilp_us: u64,
    /// End-to-end optimization wall clock (not a sum over threads).
    pub total_us: u64,
}

/// Shared, thread-safe metrics collector for one optimization run.
#[derive(Debug, Default)]
pub struct OptimizerMetrics {
    benchmark_us: AtomicU64,
    dp_us: AtomicU64,
    pareto_us: AtomicU64,
    ilp_us: AtomicU64,
    total_us: AtomicU64,
    threads: AtomicU64,
    kernels: AtomicU64,
    degradations: AtomicU64,
    exec_retries: AtomicU64,
}

impl OptimizerMetrics {
    /// Fresh collector with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `micros` to a phase counter.
    pub fn add(&self, phase: Phase, micros: u64) {
        let counter = match phase {
            Phase::Benchmark => &self.benchmark_us,
            Phase::Dp => &self.dp_us,
            Phase::Pareto => &self.pareto_us,
            Phase::Ilp => &self.ilp_us,
        };
        counter.fetch_add(micros, Ordering::Relaxed);
    }

    /// Run `f`, charging its wall time to `phase`.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed().as_micros() as u64);
        out
    }

    /// Record the end-to-end wall clock of the whole optimization.
    pub fn set_total_us(&self, micros: u64) {
        self.total_us.store(micros, Ordering::Relaxed);
    }

    /// Record how many worker threads the run used.
    pub fn set_threads(&self, n: usize) {
        self.threads.store(n as u64, Ordering::Relaxed);
    }

    /// Count kernels whose plans were (re)computed.
    pub fn add_kernels(&self, n: usize) {
        self.kernels.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Worker thread count of the last run.
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed) as usize
    }

    /// Total kernels optimized so far.
    pub fn kernels(&self) -> u64 {
        self.kernels.load(Ordering::Relaxed)
    }

    /// Record one graceful degradation: a plan fell down a rung of the
    /// ladder (dropped benchmark point, undivided fallback, shrunk
    /// workspace) instead of failing the optimization.
    pub fn degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
    }

    /// Degradations recorded so far.
    pub fn degradations(&self) -> u64 {
        self.degradations.load(Ordering::Relaxed)
    }

    /// Count execution-time retries after transient kernel faults.
    pub fn add_exec_retries(&self, n: u64) {
        self.exec_retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Execution retries recorded so far.
    pub fn exec_retries(&self) -> u64 {
        self.exec_retries.load(Ordering::Relaxed)
    }

    /// Snapshot the per-phase timings.
    pub fn timings(&self) -> PhaseTimings {
        PhaseTimings {
            benchmark_us: self.benchmark_us.load(Ordering::Relaxed),
            dp_us: self.dp_us.load(Ordering::Relaxed),
            pareto_us: self.pareto_us.load(Ordering::Relaxed),
            ilp_us: self.ilp_us.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero (for back-to-back measured runs).
    pub fn reset(&self) {
        for c in [
            &self.benchmark_us,
            &self.dp_us,
            &self.pareto_us,
            &self.ilp_us,
            &self.total_us,
            &self.threads,
            &self.kernels,
            &self.degradations,
            &self.exec_retries,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Render the full metrics report as a JSON document: per-phase
    /// timings, cache traffic, per-kernel benchmark counts, the
    /// execution-plan cache counters, and the robustness ledger
    /// (degradations, injected faults, retries, and DB quarantine counts).
    /// `faults_injected` comes from the substrate's fault injector
    /// ([`ucudnn_cudnn_sim::CudnnHandle::faults_injected`]); `exec_cache`
    /// from [`ucudnn_cudnn_sim::CudnnHandle::exec_cache_stats`].
    pub fn to_json(
        &self,
        cache: CacheStats,
        bench_counts: &[(String, u64)],
        faults_injected: u64,
        exec_cache: ExecCacheStats,
    ) -> String {
        let t = self.timings();
        // Degradations observed anywhere: explicit ladder steps recorded by
        // the optimizers plus benchmark points the cache had to drop.
        let degradations = self.degradations() + cache.bench_points_dropped;
        json::obj([
            (
                "phases_us",
                json::obj([
                    ("benchmark", json::num(t.benchmark_us as f64)),
                    ("dp", json::num(t.dp_us as f64)),
                    ("pareto", json::num(t.pareto_us as f64)),
                    ("ilp", json::num(t.ilp_us as f64)),
                    ("total_wall", json::num(t.total_us as f64)),
                ]),
            ),
            ("threads", json::num(self.threads() as f64)),
            ("kernels_optimized", json::num(self.kernels() as f64)),
            (
                "cache",
                json::obj([
                    ("hits", json::num(cache.hits as f64)),
                    ("misses", json::num(cache.misses as f64)),
                    (
                        "single_flight_waits",
                        json::num(cache.single_flight_waits as f64),
                    ),
                ]),
            ),
            (
                "exec_cache",
                json::obj([
                    ("hits", json::num(exec_cache.hits as f64)),
                    ("misses", json::num(exec_cache.misses as f64)),
                    ("evictions", json::num(exec_cache.evictions as f64)),
                    ("bytes", json::num(exec_cache.bytes as f64)),
                ]),
            ),
            (
                "robustness",
                json::obj([
                    ("degradations", json::num(degradations as f64)),
                    ("faults_injected", json::num(faults_injected as f64)),
                    (
                        "bench_points_dropped",
                        json::num(cache.bench_points_dropped as f64),
                    ),
                    ("bench_retries", json::num(cache.bench_retries as f64)),
                    ("exec_retries", json::num(self.exec_retries() as f64)),
                    ("db_rows_loaded", json::num(cache.db_rows_loaded as f64)),
                    (
                        "db_rows_quarantined",
                        json::num(cache.db_rows_quarantined as f64),
                    ),
                ]),
            ),
            (
                "benchmark_counts",
                Value::Obj(
                    bench_counts
                        .iter()
                        .map(|(k, n)| (k.clone(), json::num(*n as f64)))
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_independently() {
        let m = OptimizerMetrics::new();
        m.add(Phase::Benchmark, 10);
        m.add(Phase::Benchmark, 5);
        m.add(Phase::Dp, 7);
        m.add(Phase::Pareto, 3);
        m.add(Phase::Ilp, 2);
        m.set_total_us(20);
        let t = m.timings();
        assert_eq!(t.benchmark_us, 15);
        assert_eq!(t.dp_us, 7);
        assert_eq!(t.pareto_us, 3);
        assert_eq!(t.ilp_us, 2);
        assert_eq!(t.total_us, 20);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = OptimizerMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.add(Phase::Dp, 1);
                    }
                });
            }
        });
        assert_eq!(m.timings().dp_us, 8000);
    }

    #[test]
    fn time_charges_the_right_phase() {
        let m = OptimizerMetrics::new();
        let out = m.time(Phase::Pareto, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(
            m.timings().pareto_us >= 1000,
            "sleep must be charged to pareto"
        );
        assert_eq!(m.timings().dp_us, 0);
    }

    #[test]
    fn json_export_is_parseable_and_complete() {
        let m = OptimizerMetrics::new();
        m.add(Phase::Benchmark, 100);
        m.set_total_us(150);
        m.set_threads(4);
        m.add_kernels(9);
        m.degradation();
        m.add_exec_retries(2);
        let stats = crate::CacheStats {
            hits: 3,
            misses: 2,
            single_flight_waits: 1,
            bench_points_dropped: 4,
            bench_retries: 1,
            db_rows_loaded: 7,
            db_rows_quarantined: 2,
            invalidations: 0,
        };
        let counts = vec![("fwd[k]".to_string(), 1u64)];
        let exec = ExecCacheStats {
            hits: 12,
            misses: 3,
            evictions: 1,
            bytes: 2048,
        };
        let text = m.to_json(stats, &counts, 6, exec);
        let doc = Value::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("phases_us")
                .unwrap()
                .get("benchmark")
                .unwrap()
                .as_u64(),
            Some(100)
        );
        assert_eq!(
            doc.get("phases_us")
                .unwrap()
                .get("total_wall")
                .unwrap()
                .as_u64(),
            Some(150)
        );
        assert_eq!(doc.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("kernels_optimized").unwrap().as_u64(), Some(9));
        assert_eq!(
            doc.get("cache").unwrap().get("hits").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            doc.get("cache")
                .unwrap()
                .get("single_flight_waits")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("benchmark_counts")
                .unwrap()
                .get("fwd[k]")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        let ec = doc.get("exec_cache").unwrap();
        assert_eq!(ec.get("hits").unwrap().as_u64(), Some(12));
        assert_eq!(ec.get("misses").unwrap().as_u64(), Some(3));
        assert_eq!(ec.get("evictions").unwrap().as_u64(), Some(1));
        assert_eq!(ec.get("bytes").unwrap().as_u64(), Some(2048));
        let rob = doc.get("robustness").unwrap();
        // 1 explicit degradation + 4 dropped benchmark points.
        assert_eq!(rob.get("degradations").unwrap().as_u64(), Some(5));
        assert_eq!(rob.get("faults_injected").unwrap().as_u64(), Some(6));
        assert_eq!(rob.get("bench_retries").unwrap().as_u64(), Some(1));
        assert_eq!(rob.get("exec_retries").unwrap().as_u64(), Some(2));
        assert_eq!(rob.get("db_rows_loaded").unwrap().as_u64(), Some(7));
        assert_eq!(rob.get("db_rows_quarantined").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = OptimizerMetrics::new();
        m.add(Phase::Ilp, 5);
        m.set_threads(2);
        m.add_kernels(3);
        m.degradation();
        m.add_exec_retries(4);
        m.reset();
        assert_eq!(m.timings(), PhaseTimings::default());
        assert_eq!(m.threads(), 0);
        assert_eq!(m.kernels(), 0);
        assert_eq!(m.degradations(), 0);
        assert_eq!(m.exec_retries(), 0);
    }
}
