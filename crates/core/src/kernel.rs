//! Kernel identity: the unit the optimizer reasons about.
//!
//! A *kernel* is one convolution operation (Forward, BackwardData or
//! BackwardFilter) of one layer geometry. Networks that replicate layers of
//! the same size (ResNet) produce identical keys, which is what makes the
//! benchmark/configuration caches effective (§III-D).

use ucudnn_cudnn_sim::ConvOp;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

/// Cache-friendly stand-in for [`ConvOp`], owned by this crate so the
/// optimizer can hash and persist it without depending on conv internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Forward convolution.
    Forward,
    /// Data gradient.
    BackwardData,
    /// Filter gradient.
    BackwardFilter,
}

impl From<ConvOp> for OpKind {
    fn from(op: ConvOp) -> Self {
        match op {
            ConvOp::Forward => OpKind::Forward,
            ConvOp::BackwardData => OpKind::BackwardData,
            ConvOp::BackwardFilter => OpKind::BackwardFilter,
        }
    }
}

impl From<OpKind> for ConvOp {
    fn from(op: OpKind) -> Self {
        match op {
            OpKind::Forward => ConvOp::Forward,
            OpKind::BackwardData => ConvOp::BackwardData,
            OpKind::BackwardFilter => ConvOp::BackwardFilter,
        }
    }
}

impl core::fmt::Display for OpKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        ConvOp::from(*self).fmt(f)
    }
}

/// Unique identity of an optimizable kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelKey {
    /// Which convolution operation.
    pub op: OpKind,
    /// Full mini-batch input shape.
    pub input: Shape4,
    /// Filter shape.
    pub filter: FilterShape,
    /// Height padding.
    pub pad_h: usize,
    /// Width padding.
    pub pad_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
}

impl KernelKey {
    /// Build a key from an operation and geometry.
    pub fn new(op: ConvOp, g: &ConvGeometry) -> Self {
        Self {
            op: op.into(),
            input: g.input,
            filter: g.filter,
            pad_h: g.pad_h,
            pad_w: g.pad_w,
            stride_h: g.stride_h,
            stride_w: g.stride_w,
        }
    }

    /// The geometry at the full mini-batch size.
    pub fn geometry(&self) -> ConvGeometry {
        ConvGeometry::new(
            self.input,
            self.filter,
            self.pad_h,
            self.pad_w,
            self.stride_h,
            self.stride_w,
        )
    }

    /// The geometry at a micro-batch size.
    pub fn micro_geometry(&self, micro_batch: usize) -> ConvGeometry {
        self.geometry().with_batch(micro_batch)
    }

    /// The operation as the execution-layer enum.
    pub fn conv_op(&self) -> ConvOp {
        self.op.into()
    }

    /// Mini-batch size.
    pub fn batch(&self) -> usize {
        self.input.n
    }
}

impl core::fmt::Display for KernelKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}[{}]", self.op, self.geometry())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn g() -> ConvGeometry {
        ConvGeometry::with_square(
            Shape4::new(256, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        )
    }

    #[test]
    fn geometry_round_trip() {
        let k = KernelKey::new(ConvOp::Forward, &g());
        assert_eq!(k.geometry(), g());
        assert_eq!(k.batch(), 256);
        assert_eq!(k.micro_geometry(32).batch(), 32);
    }

    #[test]
    fn identical_layers_share_a_key() {
        let a = KernelKey::new(ConvOp::BackwardData, &g());
        let b = KernelKey::new(ConvOp::BackwardData, &g());
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn different_ops_are_different_kernels() {
        let a = KernelKey::new(ConvOp::Forward, &g());
        let b = KernelKey::new(ConvOp::BackwardFilter, &g());
        assert_ne!(a, b);
    }

    #[test]
    fn op_kind_round_trips() {
        for op in ConvOp::ALL {
            let k: OpKind = op.into();
            let back: ConvOp = k.into();
            assert_eq!(op, back);
        }
    }
}
