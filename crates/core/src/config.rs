//! Micro-configurations and configurations (§III-A of the paper).
//!
//! A *micro-configuration* pairs a convolution algorithm with a micro-batch
//! size; a *configuration* is a list of micro-configurations whose
//! micro-batch sizes sum to the mini-batch — e.g. `⟨64, FFT⟩⁴` for a
//! mini-batch of 256 split four ways.

use ucudnn_gpu_model::ConvAlgo;

/// One micro-configuration: run `algo` on a micro-batch of `micro_batch`
/// samples, with its benchmarked cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroConfig {
    /// Micro-batch size.
    pub micro_batch: usize,
    /// Convolution algorithm used for this micro-batch.
    pub algo: ConvAlgo,
    /// Benchmarked (or modeled) execution time, microseconds.
    pub time_us: f64,
    /// Workspace the algorithm requires at this micro-batch size, bytes.
    pub workspace_bytes: usize,
}

/// A full division of the mini-batch: micro-configurations executed
/// sequentially, sharing one workspace (so the resident workspace is the
/// *maximum*, not the sum, of the parts).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Configuration {
    /// The micro-configurations, in execution order.
    pub micros: Vec<MicroConfig>,
}

impl Configuration {
    /// A configuration with a single undivided kernel.
    pub fn undivided(m: MicroConfig) -> Self {
        Self { micros: vec![m] }
    }

    /// Total mini-batch covered (sum of micro-batch sizes).
    pub fn batch(&self) -> usize {
        self.micros.iter().map(|m| m.micro_batch).sum()
    }

    /// Total execution time, microseconds.
    pub fn time_us(&self) -> f64 {
        self.micros.iter().map(|m| m.time_us).sum()
    }

    /// Resident workspace: the maximum over micro-configurations, since the
    /// sequential micro-batches reuse one buffer. The empty configuration
    /// owns no workspace — the `unwrap_or(0)` is that deliberate default,
    /// not a parse fallback; use [`Configuration::covers`] to reject empty
    /// or mis-sized configurations before installing them.
    pub fn workspace_bytes(&self) -> usize {
        self.micros
            .iter()
            .map(|m| m.workspace_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Validity guard: whether this configuration exactly tiles a
    /// mini-batch of `batch` samples with at least one micro-batch. The
    /// empty configuration covers no batch.
    pub fn covers(&self, batch: usize) -> bool {
        !self.micros.is_empty() && self.batch() == batch
    }

    /// True when the mini-batch is not divided.
    pub fn is_undivided(&self) -> bool {
        self.micros.len() == 1
    }

    /// Concatenation (the paper's `⊕` operator).
    pub fn concat(&self, other: &Configuration) -> Configuration {
        let mut micros = Vec::with_capacity(self.micros.len() + other.micros.len());
        micros.extend_from_slice(&self.micros);
        micros.extend_from_slice(&other.micros);
        Configuration { micros }
    }

    /// Compact human-readable rendering, e.g. `⟨64,FFT⟩x4`.
    pub fn describe(&self) -> String {
        if self.micros.is_empty() {
            return "⟨⟩".to_string();
        }
        let mut parts: Vec<String> = Vec::new();
        let mut i = 0;
        while i < self.micros.len() {
            let m = &self.micros[i];
            let mut count = 1;
            while i + count < self.micros.len()
                && self.micros[i + count].micro_batch == m.micro_batch
                && self.micros[i + count].algo == m.algo
            {
                count += 1;
            }
            if count > 1 {
                parts.push(format!("⟨{},{}⟩x{}", m.micro_batch, m.algo, count));
            } else {
                parts.push(format!("⟨{},{}⟩", m.micro_batch, m.algo));
            }
            i += count;
        }
        parts.join(" ")
    }
}

impl core::fmt::Display for Configuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc(b: usize, algo: ConvAlgo, t: f64, w: usize) -> MicroConfig {
        MicroConfig {
            micro_batch: b,
            algo,
            time_us: t,
            workspace_bytes: w,
        }
    }

    #[test]
    fn totals() {
        let c = Configuration {
            micros: vec![
                mc(64, ConvAlgo::Fft, 100.0, 50),
                mc(64, ConvAlgo::Fft, 100.0, 50),
                mc(128, ConvAlgo::Gemm, 150.0, 10),
            ],
        };
        assert_eq!(c.batch(), 256);
        assert_eq!(c.time_us(), 350.0);
        // Shared buffer: max, not sum.
        assert_eq!(c.workspace_bytes(), 50);
        assert!(!c.is_undivided());
    }

    #[test]
    fn undivided_helper() {
        let c = Configuration::undivided(mc(256, ConvAlgo::Gemm, 9.0, 4));
        assert!(c.is_undivided());
        assert_eq!(c.batch(), 256);
    }

    #[test]
    fn concat_is_associative_in_totals() {
        let a = Configuration::undivided(mc(32, ConvAlgo::Fft, 10.0, 7));
        let b = Configuration::undivided(mc(64, ConvAlgo::Gemm, 20.0, 3));
        let ab = a.concat(&b);
        assert_eq!(ab.batch(), 96);
        assert_eq!(ab.micros.len(), 2);
        assert_eq!(ab.time_us(), 30.0);
        assert_eq!(ab.workspace_bytes(), 7);
    }

    #[test]
    fn describe_groups_repeats() {
        let c = Configuration {
            micros: vec![
                mc(64, ConvAlgo::Fft, 1.0, 1),
                mc(64, ConvAlgo::Fft, 1.0, 1),
                mc(32, ConvAlgo::Gemm, 1.0, 1),
            ],
        };
        assert_eq!(c.describe(), "⟨64,FFT⟩x2 ⟨32,GEMM⟩");
    }

    #[test]
    fn empty_configuration_is_harmless() {
        let c = Configuration::default();
        assert_eq!(c.batch(), 0);
        assert_eq!(c.workspace_bytes(), 0);
        assert_eq!(c.describe(), "⟨⟩");
    }

    #[test]
    fn covers_rejects_empty_and_mis_sized_configurations() {
        assert!(!Configuration::default().covers(0));
        assert!(!Configuration::default().covers(64));
        let c = Configuration::undivided(mc(64, ConvAlgo::Gemm, 1.0, 0));
        assert!(c.covers(64));
        assert!(!c.covers(128));
    }
}
