//! Batch-size policies (§III-D): which micro-batch sizes are benchmarked.

/// Which micro-batch sizes step 1 of the WR algorithm benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchSizePolicy {
    /// Every size `1..=B`. Finds the true optimum at `O(B)` benchmark cost.
    All,
    /// Power-of-two sizes `1, 2, 4, …` plus `B` itself: `O(log B)` benchmark
    /// cost, the paper's recommended quick setting.
    PowerOfTwo,
    /// Only the undivided mini-batch — reproduces plain cuDNN behaviour and
    /// measures wrapper overhead.
    Undivided,
}

impl BatchSizePolicy {
    /// Candidate micro-batch sizes for a mini-batch of `b`, ascending.
    pub fn candidate_sizes(&self, b: usize) -> Vec<usize> {
        if b == 0 {
            return Vec::new();
        }
        match self {
            BatchSizePolicy::All => (1..=b).collect(),
            BatchSizePolicy::PowerOfTwo => {
                let mut v: Vec<usize> = std::iter::successors(Some(1usize), |x| x.checked_mul(2))
                    .take_while(|&x| x <= b)
                    .collect();
                if *v.last().unwrap() != b {
                    v.push(b); // the undivided size is always a candidate
                }
                v
            }
            BatchSizePolicy::Undivided => vec![b],
        }
    }

    /// Parse the environment-variable spelling used by the C++ library
    /// (`UCUDNN_BATCH_SIZE_POLICY=all|powerOfTwo|undivided`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "all" => Some(BatchSizePolicy::All),
            "powerOfTwo" => Some(BatchSizePolicy::PowerOfTwo),
            "undivided" => Some(BatchSizePolicy::Undivided),
            _ => None,
        }
    }

    /// The environment-variable spelling.
    pub fn name(&self) -> &'static str {
        match self {
            BatchSizePolicy::All => "all",
            BatchSizePolicy::PowerOfTwo => "powerOfTwo",
            BatchSizePolicy::Undivided => "undivided",
        }
    }
}

impl core::fmt::Display for BatchSizePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policy_enumerates_everything() {
        assert_eq!(BatchSizePolicy::All.candidate_sizes(5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn power_of_two_includes_the_minibatch() {
        assert_eq!(
            BatchSizePolicy::PowerOfTwo.candidate_sizes(256),
            vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
        );
        // Non-power-of-two mini-batch keeps B as an extra candidate.
        assert_eq!(
            BatchSizePolicy::PowerOfTwo.candidate_sizes(6),
            vec![1, 2, 4, 6]
        );
    }

    #[test]
    fn undivided_is_single() {
        assert_eq!(BatchSizePolicy::Undivided.candidate_sizes(256), vec![256]);
    }

    #[test]
    fn zero_batch_is_empty() {
        for p in [
            BatchSizePolicy::All,
            BatchSizePolicy::PowerOfTwo,
            BatchSizePolicy::Undivided,
        ] {
            assert!(p.candidate_sizes(0).is_empty());
        }
    }

    #[test]
    fn parse_round_trips() {
        for p in [
            BatchSizePolicy::All,
            BatchSizePolicy::PowerOfTwo,
            BatchSizePolicy::Undivided,
        ] {
            assert_eq!(BatchSizePolicy::parse(p.name()), Some(p));
        }
        assert_eq!(BatchSizePolicy::parse("bogus"), None);
    }

    #[test]
    fn benchmark_cost_scaling() {
        // The paper's complexity claim: all = O(B), powerOfTwo = O(log B).
        assert_eq!(BatchSizePolicy::All.candidate_sizes(1024).len(), 1024);
        assert_eq!(BatchSizePolicy::PowerOfTwo.candidate_sizes(1024).len(), 11);
    }
}
