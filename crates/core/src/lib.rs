//! μ-cuDNN in Rust: a transparent micro-batching optimizer for
//! cuDNN-style convolution libraries.
//!
//! Reproduction of *μ-cuDNN: Accelerating Deep Learning Frameworks with
//! Micro-Batching* (Oyama, Ben-Nun, Hoefler, Matsuoka — IEEE CLUSTER 2018).
//!
//! Fast convolution algorithms (FFT, Winograd) need large temporary
//! workspaces; under realistic per-layer workspace limits cuDNN silently
//! falls back to slow algorithms. μ-cuDNN splits each layer's mini-batch
//! into *micro-batches* so the fast algorithms fit:
//!
//! * [`wr`] — Workspace Reuse: per-layer dynamic programming over divisions.
//! * [`pareto`] + [`wd`] — Workspace Division: Pareto-pruned configuration
//!   sets feeding an exact 0-1 ILP that divides one global workspace.
//! * [`handle::UcudnnHandle`] — the transparent wrapper: swap your handle
//!   type, keep your framework code.
//!
//! ```
//! use ucudnn::{UcudnnHandle, UcudnnOptions, BatchSizePolicy, OptimizerMode};
//! use ucudnn_cudnn_sim::{CudnnHandle, TensorDescriptor, FilterDescriptor,
//!                        ConvolutionDescriptor, ConvOp};
//!
//! // Wrap a handle (here: the simulated P100 of the paper's evaluation).
//! let handle = UcudnnHandle::new(
//!     CudnnHandle::simulated(ucudnn_gpu_model::p100_sxm2()),
//!     UcudnnOptions {
//!         policy: BatchSizePolicy::PowerOfTwo,
//!         workspace_limit_bytes: 64 << 20,
//!         mode: OptimizerMode::Wr,
//!         ..Default::default()
//!     },
//! );
//! // AlexNet conv2 under a 64 MiB limit: ask for an algorithm like any
//! // framework would...
//! let x = TensorDescriptor::new_4d(256, 64, 27, 27).unwrap();
//! let w = FilterDescriptor::new_4d(192, 64, 5, 5).unwrap();
//! let c = ConvolutionDescriptor::new_2d(2, 2, 1, 1).unwrap();
//! let algo = handle.get_algorithm(ConvOp::Forward, &x, &w, &c).unwrap();
//! // ...and zero workspace is required from the framework:
//! assert_eq!(handle.get_workspace_size(ConvOp::Forward, &x, &w, &c, algo).unwrap(), 0);
//! // The installed plan divides the batch to unlock FFT.
//! let g = c.geometry(&x, &w).unwrap();
//! let plan = handle.plan(ConvOp::Forward, &g).unwrap();
//! assert!(!plan.config.is_undivided());
//! ```

pub mod bench_cache;
pub mod config;
pub mod env;
pub mod error;
pub mod fleet;
pub mod handle;
pub mod json;
pub mod kernel;
pub mod metrics;
pub mod pareto;
pub mod policy;
pub mod slo;
pub mod telemetry;
pub mod trace;
pub mod wd;
pub mod wr;

pub use bench_cache::{BenchCache, BenchEntry, CacheStats};
pub use config::{Configuration, MicroConfig};
pub use env::{
    parse_bytes, EnvError, FleetOptions, FleetRouterPolicy, IngressBackend, IngressOptions,
    ServeOptions, FLEET_REPLICA_CARDS,
};
pub use error::UcudnnError;
pub use fleet::{
    arbitrate_fleet_budget, best_per_sample_us, fleet_budget_candidates, BudgetCandidate,
    BudgetShare, FleetBudgetPlan, ReplicaCandidates,
};
pub use handle::{OptimizerMode, Plan, UcudnnHandle, UcudnnOptions, VIRTUAL_ALGO};
pub use kernel::{KernelKey, OpKind};
pub use metrics::{OptimizerMetrics, Phase, PhaseTimings};
pub use pareto::{
    desirable_set, desirable_set_metered, desirable_set_traced, pareto_front, DesirableStats,
};
pub use policy::BatchSizePolicy;
pub use slo::{
    forward_latency_table, plan_batch, rebench_latency_table, SloDecision, TableProvenance,
};
pub use telemetry::{Counter, CounterVec, Gauge, GaugeVec, Histogram, Registry, WindowSnapshot};
pub use trace::{
    ClockMode, PlanProvenance, Trace, TraceConfig, TraceEvent, TraceFormat, TraceSession,
};
pub use wd::{
    optimize_wd, optimize_wd_weighted, optimize_wd_weighted_parallel, WdAssignment, WdPlan,
};
pub use wr::{best_micro, optimize_wr, optimize_wr_metered, WrResult};
