//! The WR (Workspace Reuse) optimizer: dynamic programming over mini-batch
//! divisions (§III-B).
//!
//! Each layer gets one workspace of at most `W` bytes, shared by its
//! sequential micro-batches. The optimal total time obeys
//!
//! ```text
//! T(n) = min( t*(n),  min_{0<i<n} T(i) + T(n−i) )
//! ```
//!
//! where `t*(m)` is the fastest single-kernel time at micro-batch `m` within
//! the workspace limit. Because the benchmark policy restricts which sizes
//! `m` are measured, the recursion is computed over those candidate sizes.

use crate::bench_cache::BenchCache;
use crate::config::{Configuration, MicroConfig};
use crate::error::UcudnnError;
use crate::kernel::KernelKey;
use crate::metrics::{OptimizerMetrics, Phase};
use crate::policy::BatchSizePolicy;
use crate::trace::PlanProvenance;
use ucudnn_cudnn_sim::{supported_on, workspace_bytes_on, CudnnHandle, Engine};
use ucudnn_gpu_model::{kernel_time_us, ConvAlgo};

/// Fastest micro-configuration at one size within the workspace limit
/// (step 1 of the WR algorithm).
pub fn best_micro(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernel: &KernelKey,
    micro_batch: usize,
    ws_limit: usize,
) -> Option<MicroConfig> {
    let micro_key = KernelKey {
        input: kernel.input.with_batch(micro_batch),
        ..*kernel
    };
    cache
        .get_or_bench(handle, &micro_key)
        .into_iter()
        .filter(|e| e.memory_bytes <= ws_limit)
        .min_by(|a, b| a.time_us.total_cmp(&b.time_us))
        .map(|e| MicroConfig {
            micro_batch,
            algo: e.algo,
            time_us: e.time_us,
            workspace_bytes: e.memory_bytes,
        })
}

/// Like [`best_micro`], but aware of benchmark failures: a size whose
/// benchmark errored out (injected or real) is dropped from the DP — one
/// rung down the degradation ladder — and counted in `metrics`.
fn best_micro_degrading(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernel: &KernelKey,
    micro_batch: usize,
    ws_limit: usize,
    metrics: Option<&OptimizerMetrics>,
    lost_points: &mut bool,
) -> Option<MicroConfig> {
    let micro_key = KernelKey {
        input: kernel.input.with_batch(micro_batch),
        ..*kernel
    };
    match cache.try_get_or_bench(handle, &micro_key) {
        Ok(entries) => entries
            .into_iter()
            .filter(|e| e.memory_bytes <= ws_limit)
            .min_by(|a, b| a.time_us.total_cmp(&b.time_us))
            .map(|e| MicroConfig {
                micro_batch,
                algo: e.algo,
                time_us: e.time_us,
                workspace_bytes: e.memory_bytes,
            }),
        Err(_) => {
            *lost_points = true;
            if let Some(m) = metrics {
                m.degradation();
            }
            None
        }
    }
}

/// The last rung of the degradation ladder: the undivided configuration on
/// a zero-workspace algorithm — the paper's baseline that every cuDNN
/// deployment can run regardless of memory pressure. Pure function of
/// (engine, kernel); never benchmarks, so it works even when every `Find`
/// call fails.
pub(crate) fn undivided_fallback(handle: &CudnnHandle, kernel: &KernelKey) -> Option<MicroConfig> {
    let g = kernel.geometry();
    let op = kernel.conv_op();
    ConvAlgo::ALL
        .iter()
        .filter(|&&algo| supported_on(handle.engine(), algo, op, &g))
        .filter(|&&algo| workspace_bytes_on(handle.engine(), algo, op, &g) == Some(0))
        .map(|&algo| {
            // Price with the model when available; on the CPU engine use a
            // large flat penalty so degraded plans sort after measured ones.
            let time_us = match handle.engine() {
                Engine::Simulated(d) => kernel_time_us(d, algo, op, &g).unwrap_or(1e9),
                Engine::RealCpu => 1e9,
            };
            MicroConfig {
                micro_batch: kernel.batch(),
                algo,
                time_us,
                workspace_bytes: 0,
            }
        })
        .min_by(|a, b| {
            a.time_us
                .total_cmp(&b.time_us)
                .then(a.algo.id().cmp(&b.algo.id()))
        })
}

/// Result of a WR optimization.
#[derive(Debug, Clone)]
pub struct WrResult {
    /// The optimal configuration.
    pub config: Configuration,
    /// The `t*(m)` table: best micro-configuration per benchmarked size.
    pub per_size: Vec<(usize, Option<MicroConfig>)>,
    /// Whether the plan lost benchmark points or fell back to the
    /// undivided zero-workspace configuration (degradation ladder).
    pub degraded: bool,
    /// The decision record: what was evaluated, what was kept, which
    /// degradation rungs fired (DESIGN.md §10).
    pub provenance: PlanProvenance,
}

/// Optimize one kernel under the WR policy.
///
/// ```
/// use ucudnn::{optimize_wr, BatchSizePolicy, BenchCache, KernelKey};
/// use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
/// use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};
///
/// // AlexNet conv2 under a 64 MiB limit on the simulated P100.
/// let g = ConvGeometry::with_square(
///     Shape4::new(256, 64, 27, 27),
///     FilterShape::new(192, 64, 5, 5),
///     2,
///     1,
/// );
/// let handle = CudnnHandle::simulated(ucudnn_gpu_model::p100_sxm2());
/// let cache = BenchCache::new();
/// let r = optimize_wr(
///     &handle,
///     &cache,
///     &KernelKey::new(ConvOp::Forward, &g),
///     64 << 20,
///     BatchSizePolicy::PowerOfTwo,
///     false,
/// )
/// .unwrap();
/// // The DP divides the batch to unlock FFT within the limit.
/// assert!(!r.config.is_undivided());
/// assert_eq!(r.config.batch(), 256);
/// assert!(r.config.workspace_bytes() <= 64 << 20);
/// ```
///
/// # Errors
/// When no benchmarked algorithm can tile the mini-batch within the limit
/// (e.g. every `Find` call failed under fault injection), the optimizer
/// *degrades* to the undivided zero-workspace configuration rather than
/// erroring, marking [`WrResult::degraded`]. [`UcudnnError::Degraded`] is
/// returned only when even that fallback is impossible — no zero-workspace
/// algorithm supports the kernel on this engine.
#[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
pub fn optimize_wr(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernel: &KernelKey,
    ws_limit: usize,
    policy: BatchSizePolicy,
    parallel_benchmark: bool,
) -> Result<WrResult, UcudnnError> {
    optimize_wr_metered(
        handle,
        cache,
        kernel,
        ws_limit,
        policy,
        parallel_benchmark,
        None,
    )
}

/// [`optimize_wr`] with per-phase timing recorded into `metrics`
/// (benchmarking vs. dynamic programming). The plan produced is identical.
///
/// # Errors
/// Same as [`optimize_wr`].
#[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
pub fn optimize_wr_metered(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernel: &KernelKey,
    ws_limit: usize,
    policy: BatchSizePolicy,
    parallel_benchmark: bool,
    metrics: Option<&OptimizerMetrics>,
) -> Result<WrResult, UcudnnError> {
    let b = kernel.batch();
    let sizes = policy.candidate_sizes(b);
    // Warm the cache for all candidate sizes (optionally in parallel, the
    // analogue of multi-GPU benchmark distribution).
    let micro_keys: Vec<KernelKey> = sizes
        .iter()
        .map(|&m| KernelKey {
            input: kernel.input.with_batch(m),
            ..*kernel
        })
        .collect();
    let bench_start = std::time::Instant::now();
    cache.prefetch(handle, &micro_keys, parallel_benchmark);

    let mut lost_points = false;
    let per_size: Vec<(usize, Option<MicroConfig>)> = sizes
        .iter()
        .map(|&m| {
            (
                m,
                best_micro_degrading(
                    handle,
                    cache,
                    kernel,
                    m,
                    ws_limit,
                    metrics,
                    &mut lost_points,
                ),
            )
        })
        .collect();
    if let Some(m) = metrics {
        m.add(Phase::Benchmark, bench_start.elapsed().as_micros() as u64);
    }
    let mut provenance = PlanProvenance {
        optimizer: "wr",
        candidate_sizes: sizes.len(),
        candidates_kept: per_size.iter().filter(|(_, mc)| mc.is_some()).count(),
        ..PlanProvenance::default()
    };
    if lost_points {
        provenance.degradations.push("dropped_bench_points".into());
    }

    // Step 2: DP over the total batch with the benchmarked sizes as atoms.
    let dp_start = std::time::Instant::now();
    const INF: f64 = f64::INFINITY;
    let mut t = vec![INF; b + 1];
    let mut step: Vec<Option<&MicroConfig>> = vec![None; b + 1];
    t[0] = 0.0;
    for n in 1..=b {
        for (m, mc) in &per_size {
            let Some(mc) = mc else { continue };
            if *m > n || t[n - m] == INF {
                continue;
            }
            let cand = t[n - m] + mc.time_us;
            if cand < t[n] {
                t[n] = cand;
                step[n] = Some(mc);
            }
        }
    }
    if t[b] == INF {
        // Degradation ladder, last rung: run the batch undivided on a
        // zero-workspace algorithm rather than fail the optimization.
        if let Some(mc) = undivided_fallback(handle, kernel) {
            if let Some(m) = metrics {
                m.degradation();
                m.add(Phase::Dp, dp_start.elapsed().as_micros() as u64);
            }
            provenance.degradations.push("undivided_fallback".into());
            return Ok(WrResult {
                config: Configuration { micros: vec![mc] },
                per_size,
                degraded: true,
                provenance,
            });
        }
        return Err(UcudnnError::Degraded {
            kernel: kernel.to_string(),
            lost: format!(
                "cannot tile batch {b} within {ws_limit} bytes and no \
                 undivided zero-workspace algorithm remains"
            ),
        });
    }

    // Step 3: reconstruct the optimal division, largest micro-batches first.
    let mut micros = Vec::new();
    let mut n = b;
    while n > 0 {
        let mc = *step[n].expect("reachable state must have a step");
        micros.push(mc);
        n -= mc.micro_batch;
    }
    micros.sort_by_key(|m| std::cmp::Reverse(m.micro_batch));
    if let Some(m) = metrics {
        m.add(Phase::Dp, dp_start.elapsed().as_micros() as u64);
    }
    let config = Configuration { micros };
    provenance.workspace_granted_bytes = config.workspace_bytes();
    Ok(WrResult {
        config,
        per_size,
        degraded: lost_points,
        provenance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_cudnn_sim::ConvOp;
    use ucudnn_gpu_model::{p100_sxm2, ConvAlgo};
    use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

    const MIB: usize = 1024 * 1024;

    /// AlexNet conv2 forward — the paper's running example.
    fn conv2(n: usize) -> KernelKey {
        let g = ConvGeometry::with_square(
            Shape4::new(n, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        );
        KernelKey::new(ConvOp::Forward, &g)
    }

    fn setup() -> (CudnnHandle, BenchCache) {
        (CudnnHandle::simulated(p100_sxm2()), BenchCache::new())
    }

    #[test]
    fn undivided_policy_reproduces_cudnn_choice() {
        let (h, c) = setup();
        let r = optimize_wr(
            &h,
            &c,
            &conv2(256),
            64 * MIB,
            BatchSizePolicy::Undivided,
            false,
        )
        .unwrap();
        assert!(r.config.is_undivided());
        assert_eq!(r.config.micros[0].micro_batch, 256);
        // 64 MiB excludes FFT undivided: must be a GEMM-family algorithm.
        assert!(matches!(
            r.config.micros[0].algo,
            ConvAlgo::Gemm | ConvAlgo::ImplicitPrecompGemm | ConvAlgo::ImplicitGemm
        ));
    }

    #[test]
    fn power_of_two_unlocks_fft_at_64mib() {
        // §IV-A: powerOfTwo enables FFT with micro-batches of 32 within the
        // 64 MiB constraint, beating the undivided GEMM configuration.
        let (h, c) = setup();
        let undiv = optimize_wr(
            &h,
            &c,
            &conv2(256),
            64 * MIB,
            BatchSizePolicy::Undivided,
            false,
        )
        .unwrap();
        let p2 = optimize_wr(
            &h,
            &c,
            &conv2(256),
            64 * MIB,
            BatchSizePolicy::PowerOfTwo,
            false,
        )
        .unwrap();
        assert!(!p2.config.is_undivided());
        assert!(p2.config.time_us() < undiv.config.time_us());
        assert!(p2.config.workspace_bytes() <= 64 * MIB);
        assert!(
            p2.config
                .micros
                .iter()
                .any(|m| matches!(m.algo, ConvAlgo::Fft | ConvAlgo::FftTiling)),
            "expected an FFT micro-config, got {}",
            p2.config
        );
    }

    #[test]
    fn all_is_at_least_as_good_as_power_of_two() {
        let (h, c) = setup();
        let p2 = optimize_wr(
            &h,
            &c,
            &conv2(256),
            64 * MIB,
            BatchSizePolicy::PowerOfTwo,
            false,
        )
        .unwrap();
        let all = optimize_wr(&h, &c, &conv2(256), 64 * MIB, BatchSizePolicy::All, false).unwrap();
        assert!(all.config.time_us() <= p2.config.time_us() + 1e-9);
        // And both tile the mini-batch exactly.
        assert_eq!(all.config.batch(), 256);
        assert_eq!(p2.config.batch(), 256);
    }

    #[test]
    fn tiny_limit_degenerates_to_zero_workspace_algorithms() {
        let (h, c) = setup();
        let r = optimize_wr(&h, &c, &conv2(256), 0, BatchSizePolicy::All, false).unwrap();
        assert_eq!(r.config.workspace_bytes(), 0);
        assert_eq!(r.config.batch(), 256);
    }

    #[test]
    fn huge_limit_keeps_the_batch_undivided() {
        // With 512 MiB the best undivided algorithm fits, so dividing only
        // adds launch overhead — the DP must keep one kernel (Fig. 10's
        // "no benefit at 512 MiB" result).
        let (h, c) = setup();
        let r = optimize_wr(&h, &c, &conv2(256), 512 * MIB, BatchSizePolicy::All, false).unwrap();
        assert!(r.config.is_undivided(), "got {}", r.config);
    }

    #[test]
    fn dp_beats_or_equals_any_uniform_division() {
        let (h, c) = setup();
        let r = optimize_wr(&h, &c, &conv2(256), 64 * MIB, BatchSizePolicy::All, false).unwrap();
        // Compare against every uniform division of benchmarked sizes.
        for (m, mc) in &r.per_size {
            let Some(mc) = mc else { continue };
            if 256 % m != 0 {
                continue;
            }
            let uniform = (256 / m) as f64 * mc.time_us;
            assert!(
                r.config.time_us() <= uniform + 1e-6,
                "DP ({}) worse than uniform {}x{}",
                r.config.time_us(),
                256 / m,
                m
            );
        }
    }

    #[test]
    fn per_size_table_matches_policy() {
        let (h, c) = setup();
        let r = optimize_wr(
            &h,
            &c,
            &conv2(64),
            64 * MIB,
            BatchSizePolicy::PowerOfTwo,
            false,
        )
        .unwrap();
        let sizes: Vec<usize> = r.per_size.iter().map(|(m, _)| *m).collect();
        assert_eq!(sizes, vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn fully_faulted_benchmarks_degrade_to_undivided_zero_workspace() {
        use crate::metrics::OptimizerMetrics;
        use ucudnn_cudnn_sim::{FaultPlan, FaultTarget};
        // Every Find call fails: the ladder must bottom out at the
        // undivided zero-workspace configuration, not an error.
        let h = CudnnHandle::simulated(p100_sxm2()).with_faults(FaultPlan {
            targets: vec![FaultTarget::any()],
            ..FaultPlan::default()
        });
        let c = BenchCache::new();
        let m = OptimizerMetrics::new();
        let r = optimize_wr_metered(
            &h,
            &c,
            &conv2(256),
            64 * MIB,
            BatchSizePolicy::PowerOfTwo,
            false,
            Some(&m),
        )
        .unwrap();
        assert!(r.degraded);
        assert!(r.config.is_undivided());
        assert_eq!(r.config.batch(), 256);
        assert_eq!(r.config.workspace_bytes(), 0);
        assert!(m.degradations() > 0);
        assert!(h.faults_injected() > 0);
    }

    #[test]
    fn single_faulted_algorithm_only_drops_that_algorithm() {
        use ucudnn_cudnn_sim::{FaultPlan, FaultTarget};
        let (h_clean, c_clean) = setup();
        let clean = optimize_wr(
            &h_clean,
            &c_clean,
            &conv2(256),
            512 * MIB,
            BatchSizePolicy::PowerOfTwo,
            false,
        )
        .unwrap();
        // Fault the algorithm the clean plan chose; the optimizer must pick
        // the next-best configuration instead of failing.
        let faulted_algo = clean.config.micros[0].algo;
        let h = CudnnHandle::simulated(p100_sxm2()).with_faults(FaultPlan {
            targets: vec![FaultTarget::algo(faulted_algo)],
            ..FaultPlan::default()
        });
        let c = BenchCache::new();
        let r = optimize_wr(
            &h,
            &c,
            &conv2(256),
            512 * MIB,
            BatchSizePolicy::PowerOfTwo,
            false,
        )
        .unwrap();
        assert!(r.config.micros.iter().all(|mc| mc.algo != faulted_algo));
        assert_eq!(r.config.batch(), 256);
        assert!(r.config.time_us() >= clean.config.time_us());
    }

    #[test]
    fn parallel_benchmark_gives_identical_plan() {
        let (h, c1) = setup();
        let serial = optimize_wr(
            &h,
            &c1,
            &conv2(128),
            64 * MIB,
            BatchSizePolicy::PowerOfTwo,
            false,
        )
        .unwrap();
        let c2 = BenchCache::new();
        let parallel = optimize_wr(
            &h,
            &c2,
            &conv2(128),
            64 * MIB,
            BatchSizePolicy::PowerOfTwo,
            true,
        )
        .unwrap();
        assert_eq!(serial.config, parallel.config);
    }
}
