//! Environment-variable configuration, mirroring the C++ library's
//! interface (§III-D: "these policies can be specified via an environment
//! variable or through a special library function").
//!
//! | Variable | Values | Maps to |
//! |---|---|---|
//! | `UCUDNN_BATCH_SIZE_POLICY` | `all` / `powerOfTwo` / `undivided` | [`UcudnnOptions::policy`] |
//! | `UCUDNN_WORKSPACE_LIMIT` | bytes, or suffixed `K`/`M`/`G` (binary) | [`UcudnnOptions::workspace_limit_bytes`] |
//! | `UCUDNN_OPTIMIZER` | `wr` / `wd` | [`UcudnnOptions::mode`] |
//! | `UCUDNN_BENCHMARK_CACHE` | file path | [`UcudnnOptions::cache_file`] |
//! | `UCUDNN_PARALLEL_BENCHMARK` | `0` / `1` | [`UcudnnOptions::parallel_benchmark`] |
//! | `UCUDNN_OPT_THREADS` | worker threads ≥ 1 | [`UcudnnOptions::opt_threads`] |
//! | `UCUDNN_TRACE` | trace file path (enables tracing) | [`crate::trace::TraceConfig::path`] |
//! | `UCUDNN_TRACE_FORMAT` | `jsonl` / `chrome` | [`crate::trace::TraceConfig::format`] |
//! | `UCUDNN_TRACE_CLOCK` | `wall` / `logical` | [`crate::trace::TraceConfig::clock`] |
//! | `UCUDNN_TRACE_BUF` | event-buffer capacity ≥ 1 | [`crate::trace::TraceConfig::capacity`] |
//! | `UCUDNN_EXEC_THREADS` | execution worker threads ≥ 1 | `ucudnn_conv::parallel::max_workers` (batch-parallel engine cap) |
//! | `UCUDNN_EXEC_CACHE_BYTES` | bytes, or suffixed `K`/`M`/`G` (binary); `0` disables | execution-plan cache capacity in the cuDNN simulation layer |
//! | `UCUDNN_SERVE_SLO_US` | deadline budget per request, µs ≥ 1 | [`ServeOptions::slo_us`] |
//! | `UCUDNN_SERVE_QUEUE_CAP` | admission-queue capacity ≥ 1 | [`ServeOptions::queue_cap`] |
//! | `UCUDNN_SERVE_WORKERS` | serving worker threads ≥ 1 | [`ServeOptions::workers`] |
//! | `UCUDNN_SERVE_MAX_BATCH` | coalesced-batch cap ≥ 1 | [`ServeOptions::max_batch`] |
//! | `UCUDNN_SERVE_MAX_CONNS` | concurrent-connection cap ≥ 1 | [`IngressOptions::max_conns`] (listener rejects beyond it) |
//! | `UCUDNN_SERVE_LOOPS` | event-loop threads ≥ 1 | [`IngressOptions::loops`] |
//! | `UCUDNN_SERVE_BACKEND` | `epoll` / `poll` | [`IngressOptions::backend`] (readiness backend; default epoll on Linux) |
//! | `UCUDNN_REOPT` | `0` / `1` | `ucudnn_serve::ReoptConfig::enabled` (drift detection + hot-swap) |
//! | `UCUDNN_REOPT_WINDOW` | observations per drift window ≥ 1 | `ucudnn_serve::ReoptConfig::window_samples` |
//! | `UCUDNN_REOPT_RATIO` | stale-p50 ratio > 1.0 | `ucudnn_serve::ReoptConfig::p50_ratio` |
//! | `UCUDNN_REOPT_CONSECUTIVE` | breached windows before re-benchmark ≥ 1 | `ucudnn_serve::ReoptConfig::consecutive` |
//! | `UCUDNN_PERTURB_AT_US` | virtual-clock instant, µs | `ucudnn_gpu_model::Perturbation::at_us` (simulated drift oracle) |
//! | `UCUDNN_PERTURB_FACTOR` | execution-time multiplier > 0 | `ucudnn_gpu_model::Perturbation::factor` |
//! | `UCUDNN_TELEMETRY_RING` | window snapshots kept per series ≥ 1 | [`crate::telemetry::Registry::with_ring`] capacity |
//! | `UCUDNN_SLO_BUDGET` | bad-request budget fraction in (0, 1] | `ucudnn_serve::BurnConfig::budget` |
//! | `UCUDNN_BURN_WINDOWS` | `<fast_us>,<slow_us>`, both > 0, fast < slow | `ucudnn_serve::BurnConfig::{fast_us, slow_us}` |
//! | `UCUDNN_FLEET_REPLICAS` | comma list of device cards (`k80` / `p100` / `v100`) | [`FleetOptions::replicas`] |
//! | `UCUDNN_FLEET_BUDGET` | global workspace bytes, or suffixed `K`/`M`/`G` | [`FleetOptions::global_budget_bytes`] |
//! | `UCUDNN_FLEET_POLICY` | `feasibility` / `least_loaded` | [`FleetOptions::policy`] |

use crate::handle::{OptimizerMode, UcudnnOptions};
use crate::policy::BatchSizePolicy;

/// Parse a byte size with optional binary suffix: `"64M"` → 64 MiB.
pub fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult): (&str, usize) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits.trim().parse::<usize>().ok().map(|v| v * mult)
}

/// Errors from environment parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The offending variable.
    pub variable: &'static str,
    /// Its rejected value.
    pub value: String,
}

impl core::fmt::Display for EnvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid {}: {:?}", self.variable, self.value)
    }
}

impl std::error::Error for EnvError {}

impl UcudnnOptions {
    /// Build options from a key-lookup function (exposed for testing;
    /// [`UcudnnOptions::from_env`] feeds it `std::env::var`). Unset keys
    /// keep their defaults; malformed values are errors, not silent
    /// fallbacks.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_lookup(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> core::result::Result<Self, EnvError> {
        let mut opts = UcudnnOptions::default();
        if let Some(v) = lookup("UCUDNN_BATCH_SIZE_POLICY") {
            opts.policy = BatchSizePolicy::parse(&v).ok_or(EnvError {
                variable: "UCUDNN_BATCH_SIZE_POLICY",
                value: v,
            })?;
        }
        if let Some(v) = lookup("UCUDNN_WORKSPACE_LIMIT") {
            opts.workspace_limit_bytes = parse_bytes(&v).ok_or(EnvError {
                variable: "UCUDNN_WORKSPACE_LIMIT",
                value: v,
            })?;
        }
        if let Some(v) = lookup("UCUDNN_OPTIMIZER") {
            opts.mode = match v.as_str() {
                "wr" | "WR" => OptimizerMode::Wr,
                "wd" | "WD" => OptimizerMode::Wd,
                _ => {
                    return Err(EnvError {
                        variable: "UCUDNN_OPTIMIZER",
                        value: v,
                    })
                }
            };
        }
        if let Some(v) = lookup("UCUDNN_BENCHMARK_CACHE") {
            opts.cache_file = Some(v.into());
        }
        if let Some(v) = lookup("UCUDNN_PARALLEL_BENCHMARK") {
            opts.parallel_benchmark = match v.as_str() {
                "1" | "true" => true,
                "0" | "false" => false,
                _ => {
                    return Err(EnvError {
                        variable: "UCUDNN_PARALLEL_BENCHMARK",
                        value: v,
                    })
                }
            };
        }
        if let Some(v) = lookup("UCUDNN_OPT_THREADS") {
            opts.opt_threads =
                v.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(EnvError {
                        variable: "UCUDNN_OPT_THREADS",
                        value: v,
                    })?;
        }
        Ok(opts)
    }

    /// Build options from the process environment.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_env() -> core::result::Result<Self, EnvError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }
}

/// Configuration of the serving subsystem (`ucudnn-serve`), read from the
/// `UCUDNN_SERVE_*` variables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// Per-request deadline budget in microseconds (`UCUDNN_SERVE_SLO_US`):
    /// a request admitted at time `a` must complete by `a + slo_us` or be
    /// shed.
    pub slo_us: f64,
    /// Admission-queue capacity (`UCUDNN_SERVE_QUEUE_CAP`); submissions
    /// beyond it are rejected with backpressure.
    pub queue_cap: usize,
    /// Worker threads executing coalesced batches (`UCUDNN_SERVE_WORKERS`).
    pub workers: usize,
    /// Upper bound on the coalesced batch size (`UCUDNN_SERVE_MAX_BATCH`);
    /// also the largest micro-batch size the latency table is built for.
    pub max_batch: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            slo_us: 50_000.0,
            queue_cap: 1024,
            workers: 2,
            max_batch: 32,
        }
    }
}

impl ServeOptions {
    /// Build options from a key-lookup function (exposed for testing, like
    /// [`UcudnnOptions::from_lookup`]). Unset keys keep their defaults;
    /// malformed values are errors, not silent fallbacks.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_lookup(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> core::result::Result<Self, EnvError> {
        let mut opts = ServeOptions::default();
        if let Some(v) = lookup("UCUDNN_SERVE_SLO_US") {
            opts.slo_us = v
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|s| s.is_finite() && *s >= 1.0)
                .ok_or(EnvError {
                    variable: "UCUDNN_SERVE_SLO_US",
                    value: v,
                })?;
        }
        let uint = |key: &'static str, field: &mut usize| -> core::result::Result<(), EnvError> {
            if let Some(v) = lookup(key) {
                *field = v
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(EnvError {
                        variable: key,
                        value: v,
                    })?;
            }
            Ok(())
        };
        uint("UCUDNN_SERVE_QUEUE_CAP", &mut opts.queue_cap)?;
        uint("UCUDNN_SERVE_WORKERS", &mut opts.workers)?;
        uint("UCUDNN_SERVE_MAX_BATCH", &mut opts.max_batch)?;
        Ok(opts)
    }

    /// Build options from the process environment.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_env() -> core::result::Result<Self, EnvError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }
}

/// The readiness backend the ingress reactor multiplexes connections with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressBackend {
    /// Linux `epoll` — O(ready) per tick, the C10k path.
    Epoll,
    /// Portable `poll(2)` — O(registered) per tick, semantically identical.
    Poll,
}

/// Configuration of the TCP ingress reactor (`ucudnn-serve`'s event-loop
/// front-end), read from the `UCUDNN_SERVE_{MAX_CONNS,LOOPS,BACKEND}`
/// variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressOptions {
    /// Concurrent-connection cap (`UCUDNN_SERVE_MAX_CONNS`); accepts beyond
    /// it are rejected at the listener before any protocol state is built.
    pub max_conns: usize,
    /// Event-loop threads (`UCUDNN_SERVE_LOOPS`). Connections are sharded
    /// across loops round-robin at accept time.
    pub loops: usize,
    /// Readiness backend override (`UCUDNN_SERVE_BACKEND`); `None` picks
    /// epoll where available and `poll(2)` elsewhere.
    pub backend: Option<IngressBackend>,
}

impl Default for IngressOptions {
    fn default() -> Self {
        Self {
            max_conns: 16_384,
            loops: 2,
            backend: None,
        }
    }
}

impl IngressOptions {
    /// Build options from a key-lookup function (exposed for testing, like
    /// [`ServeOptions::from_lookup`]). Unset keys keep their defaults;
    /// malformed values are errors, not silent fallbacks.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_lookup(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> core::result::Result<Self, EnvError> {
        let mut opts = IngressOptions::default();
        let uint = |key: &'static str, field: &mut usize| -> core::result::Result<(), EnvError> {
            if let Some(v) = lookup(key) {
                *field = v
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(EnvError {
                        variable: key,
                        value: v,
                    })?;
            }
            Ok(())
        };
        uint("UCUDNN_SERVE_MAX_CONNS", &mut opts.max_conns)?;
        uint("UCUDNN_SERVE_LOOPS", &mut opts.loops)?;
        if let Some(v) = lookup("UCUDNN_SERVE_BACKEND") {
            opts.backend = match v.trim() {
                "epoll" => Some(IngressBackend::Epoll),
                "poll" => Some(IngressBackend::Poll),
                _ => {
                    return Err(EnvError {
                        variable: "UCUDNN_SERVE_BACKEND",
                        value: v,
                    })
                }
            };
        }
        Ok(opts)
    }

    /// Build options from the process environment.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_env() -> core::result::Result<Self, EnvError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }
}

/// How the fleet router picks a replica for an admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetRouterPolicy {
    /// Feasibility-first: dispatch to the replica whose estimated
    /// completion keeps the request's deadline feasible, preferring the
    /// earliest estimated finish; shed only when no replica is feasible.
    Feasibility,
    /// Join-shortest-queue baseline: dispatch to the replica with the
    /// fewest queued requests, blind to per-device service rates.
    LeastLoaded,
}

impl FleetRouterPolicy {
    /// Stable lowercase spelling, used in env parsing, logs, and bench
    /// report lane names.
    pub fn name(self) -> &'static str {
        match self {
            FleetRouterPolicy::Feasibility => "feasibility",
            FleetRouterPolicy::LeastLoaded => "least_loaded",
        }
    }

    /// Parse the spelling accepted by `UCUDNN_FLEET_POLICY`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "feasibility" => Some(FleetRouterPolicy::Feasibility),
            "least_loaded" => Some(FleetRouterPolicy::LeastLoaded),
            _ => None,
        }
    }
}

/// Device cards a fleet replica may be instantiated from. The vocabulary
/// is closed on purpose: it doubles as the replica metric-label vocabulary,
/// so an unknown spelling must fail at configuration time, not allocate a
/// label series at runtime.
pub const FLEET_REPLICA_CARDS: [&str; 3] = ["k80", "p100", "v100"];

/// Configuration of the fleet tier (`ucudnn_serve::fleet`), read from the
/// `UCUDNN_FLEET_*` variables.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOptions {
    /// Replica device cards in dispatch order (`UCUDNN_FLEET_REPLICAS`,
    /// comma-separated). Each entry must be one of
    /// [`FLEET_REPLICA_CARDS`]; duplicates are allowed (two `v100`
    /// replicas are two distinct replicas of the same card).
    pub replicas: Vec<String>,
    /// Global workspace budget the arbiter partitions across replicas
    /// (`UCUDNN_FLEET_BUDGET`).
    pub global_budget_bytes: usize,
    /// Router policy (`UCUDNN_FLEET_POLICY`).
    pub policy: FleetRouterPolicy,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            replicas: FLEET_REPLICA_CARDS.iter().map(|s| s.to_string()).collect(),
            global_budget_bytes: 768 << 20,
            policy: FleetRouterPolicy::Feasibility,
        }
    }
}

impl FleetOptions {
    /// Build options from a key-lookup function (exposed for testing, like
    /// [`ServeOptions::from_lookup`]). Unset keys keep their defaults;
    /// malformed values are errors, not silent fallbacks.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable — including any replica
    /// spelling outside [`FLEET_REPLICA_CARDS`] and an empty replica list.
    pub fn from_lookup(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> core::result::Result<Self, EnvError> {
        let mut opts = FleetOptions::default();
        if let Some(v) = lookup("UCUDNN_FLEET_REPLICAS") {
            let names: Vec<String> = v
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if names.is_empty()
                || names
                    .iter()
                    .any(|n| !FLEET_REPLICA_CARDS.contains(&n.as_str()))
            {
                return Err(EnvError {
                    variable: "UCUDNN_FLEET_REPLICAS",
                    value: v,
                });
            }
            opts.replicas = names;
        }
        if let Some(v) = lookup("UCUDNN_FLEET_BUDGET") {
            opts.global_budget_bytes = parse_bytes(&v).ok_or(EnvError {
                variable: "UCUDNN_FLEET_BUDGET",
                value: v,
            })?;
        }
        if let Some(v) = lookup("UCUDNN_FLEET_POLICY") {
            opts.policy = FleetRouterPolicy::parse(&v).ok_or(EnvError {
                variable: "UCUDNN_FLEET_POLICY",
                value: v,
            })?;
        }
        Ok(opts)
    }

    /// Build options from the process environment.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_env() -> core::result::Result<Self, EnvError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        let map: HashMap<&str, &str> = pairs.iter().copied().collect();
        move |k| map.get(k).map(|v| v.to_string())
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("123"), Some(123));
        assert_eq!(parse_bytes("64M"), Some(64 << 20));
        assert_eq!(parse_bytes("8k"), Some(8 << 10));
        assert_eq!(parse_bytes("2G"), Some(2 << 30));
        assert_eq!(parse_bytes(" 16 M "), Some(16 << 20));
        assert_eq!(parse_bytes("x"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn defaults_when_unset() {
        let opts = UcudnnOptions::from_lookup(|_| None).unwrap();
        let d = UcudnnOptions::default();
        assert_eq!(opts.policy, d.policy);
        assert_eq!(opts.workspace_limit_bytes, d.workspace_limit_bytes);
        assert_eq!(opts.mode, d.mode);
    }

    #[test]
    fn full_configuration() {
        let opts = UcudnnOptions::from_lookup(lookup(&[
            ("UCUDNN_BATCH_SIZE_POLICY", "all"),
            ("UCUDNN_WORKSPACE_LIMIT", "120M"),
            ("UCUDNN_OPTIMIZER", "wd"),
            ("UCUDNN_BENCHMARK_CACHE", "/tmp/bench.json"),
            ("UCUDNN_PARALLEL_BENCHMARK", "1"),
            ("UCUDNN_OPT_THREADS", "8"),
        ]))
        .unwrap();
        assert_eq!(opts.policy, BatchSizePolicy::All);
        assert_eq!(opts.workspace_limit_bytes, 120 << 20);
        assert_eq!(opts.mode, OptimizerMode::Wd);
        assert_eq!(
            opts.cache_file.as_deref().unwrap().to_str().unwrap(),
            "/tmp/bench.json"
        );
        assert!(opts.parallel_benchmark);
        assert_eq!(opts.opt_threads, 8);
    }

    #[test]
    fn serve_defaults_when_unset() {
        let opts = ServeOptions::from_lookup(|_| None).unwrap();
        assert_eq!(opts, ServeOptions::default());
        assert_eq!(opts.slo_us, 50_000.0);
        assert_eq!(opts.queue_cap, 1024);
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.max_batch, 32);
    }

    #[test]
    fn serve_full_configuration() {
        let opts = ServeOptions::from_lookup(lookup(&[
            ("UCUDNN_SERVE_SLO_US", "2500.5"),
            ("UCUDNN_SERVE_QUEUE_CAP", "64"),
            ("UCUDNN_SERVE_WORKERS", "4"),
            ("UCUDNN_SERVE_MAX_BATCH", "16"),
        ]))
        .unwrap();
        assert_eq!(opts.slo_us, 2500.5);
        assert_eq!(opts.queue_cap, 64);
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.max_batch, 16);
    }

    #[test]
    fn serve_malformed_values_error_loudly() {
        let e = ServeOptions::from_lookup(lookup(&[("UCUDNN_SERVE_SLO_US", "soon")])).unwrap_err();
        assert_eq!(e.variable, "UCUDNN_SERVE_SLO_US");
        // Sub-microsecond and non-finite SLOs are rejected.
        assert!(ServeOptions::from_lookup(lookup(&[("UCUDNN_SERVE_SLO_US", "0.5")])).is_err());
        assert!(ServeOptions::from_lookup(lookup(&[("UCUDNN_SERVE_SLO_US", "inf")])).is_err());
        for key in [
            "UCUDNN_SERVE_QUEUE_CAP",
            "UCUDNN_SERVE_WORKERS",
            "UCUDNN_SERVE_MAX_BATCH",
        ] {
            let e = ServeOptions::from_lookup(lookup(&[(key, "0")])).unwrap_err();
            assert_eq!(e.variable, key);
            assert!(ServeOptions::from_lookup(lookup(&[(key, "lots")])).is_err());
        }
        // Whitespace-tolerant like the rest of the table.
        let opts = ServeOptions::from_lookup(lookup(&[("UCUDNN_SERVE_WORKERS", " 8 ")])).unwrap();
        assert_eq!(opts.workers, 8);
    }

    #[test]
    fn ingress_defaults_when_unset() {
        let opts = IngressOptions::from_lookup(|_| None).unwrap();
        assert_eq!(opts, IngressOptions::default());
        assert_eq!(opts.max_conns, 16_384);
        assert_eq!(opts.loops, 2);
        assert_eq!(opts.backend, None);
    }

    #[test]
    fn ingress_full_configuration() {
        let opts = IngressOptions::from_lookup(lookup(&[
            ("UCUDNN_SERVE_MAX_CONNS", "50000"),
            ("UCUDNN_SERVE_LOOPS", "4"),
            ("UCUDNN_SERVE_BACKEND", "poll"),
        ]))
        .unwrap();
        assert_eq!(opts.max_conns, 50_000);
        assert_eq!(opts.loops, 4);
        assert_eq!(opts.backend, Some(IngressBackend::Poll));
        let opts =
            IngressOptions::from_lookup(lookup(&[("UCUDNN_SERVE_BACKEND", "epoll")])).unwrap();
        assert_eq!(opts.backend, Some(IngressBackend::Epoll));
    }

    #[test]
    fn ingress_malformed_values_error_loudly() {
        for key in ["UCUDNN_SERVE_MAX_CONNS", "UCUDNN_SERVE_LOOPS"] {
            let e = IngressOptions::from_lookup(lookup(&[(key, "0")])).unwrap_err();
            assert_eq!(e.variable, key);
            assert!(IngressOptions::from_lookup(lookup(&[(key, "many")])).is_err());
        }
        let e =
            IngressOptions::from_lookup(lookup(&[("UCUDNN_SERVE_BACKEND", "kqueue")])).unwrap_err();
        assert_eq!(e.variable, "UCUDNN_SERVE_BACKEND");
        // Whitespace-tolerant like the rest of the table.
        let opts =
            IngressOptions::from_lookup(lookup(&[("UCUDNN_SERVE_BACKEND", " poll ")])).unwrap();
        assert_eq!(opts.backend, Some(IngressBackend::Poll));
    }

    #[test]
    fn fleet_defaults_when_unset() {
        let opts = FleetOptions::from_lookup(|_| None).unwrap();
        assert_eq!(opts, FleetOptions::default());
        assert_eq!(opts.replicas, vec!["k80", "p100", "v100"]);
        assert_eq!(opts.global_budget_bytes, 768 << 20);
        assert_eq!(opts.policy, FleetRouterPolicy::Feasibility);
    }

    #[test]
    fn fleet_full_configuration() {
        let opts = FleetOptions::from_lookup(lookup(&[
            ("UCUDNN_FLEET_REPLICAS", "v100, v100 ,k80"),
            ("UCUDNN_FLEET_BUDGET", "1G"),
            ("UCUDNN_FLEET_POLICY", "least_loaded"),
        ]))
        .unwrap();
        assert_eq!(opts.replicas, vec!["v100", "v100", "k80"]);
        assert_eq!(opts.global_budget_bytes, 1 << 30);
        assert_eq!(opts.policy, FleetRouterPolicy::LeastLoaded);
        // Whitespace-tolerant like the rest of the table.
        let opts =
            FleetOptions::from_lookup(lookup(&[("UCUDNN_FLEET_POLICY", " feasibility ")])).unwrap();
        assert_eq!(opts.policy, FleetRouterPolicy::Feasibility);
    }

    #[test]
    fn fleet_malformed_values_error_loudly() {
        // Unknown card spellings are rejected — the replica vocabulary is
        // closed so metric labels can't be allocated from config typos.
        let e = FleetOptions::from_lookup(lookup(&[("UCUDNN_FLEET_REPLICAS", "k80,titan_x")]))
            .unwrap_err();
        assert_eq!(e.variable, "UCUDNN_FLEET_REPLICAS");
        assert!(FleetOptions::from_lookup(lookup(&[("UCUDNN_FLEET_REPLICAS", " , ,")])).is_err());
        assert!(FleetOptions::from_lookup(lookup(&[("UCUDNN_FLEET_BUDGET", "plenty")])).is_err());
        let e = FleetOptions::from_lookup(lookup(&[("UCUDNN_FLEET_POLICY", "round_robin")]))
            .unwrap_err();
        assert_eq!(e.variable, "UCUDNN_FLEET_POLICY");
    }

    #[test]
    fn malformed_values_error_loudly() {
        let e = UcudnnOptions::from_lookup(lookup(&[("UCUDNN_BATCH_SIZE_POLICY", "sometimes")]))
            .unwrap_err();
        assert_eq!(e.variable, "UCUDNN_BATCH_SIZE_POLICY");
        assert!(UcudnnOptions::from_lookup(lookup(&[("UCUDNN_WORKSPACE_LIMIT", "lots")])).is_err());
        assert!(UcudnnOptions::from_lookup(lookup(&[("UCUDNN_OPTIMIZER", "both")])).is_err());
        assert!(UcudnnOptions::from_lookup(lookup(&[("UCUDNN_OPT_THREADS", "0")])).is_err());
        assert!(UcudnnOptions::from_lookup(lookup(&[("UCUDNN_OPT_THREADS", "many")])).is_err());
    }
}
