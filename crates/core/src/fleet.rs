//! Fleet budget arbiter: the WD integer program lifted one tier up.
//!
//! WD (§ DESIGN.md 6) partitions one device's workspace budget across the
//! *kernels* of one network with a multiple-choice knapsack: one group per
//! kernel, one item per desirable configuration. The fleet arbiter reuses
//! the exact same structure one level higher: one group per *replica*, one
//! item per candidate workspace share, and a global memory budget as the
//! knapsack capacity.
//!
//! The cost of an item is the replica's best achievable per-sample latency
//! when its latency table is rebuilt under that share ([`forward_latency_table`]
//! with `ws_limit` = the share). Because a bigger share unlocks the
//! FFT/Winograd points of the per-device WR Pareto front, cost is
//! monotonically non-increasing in the share, and minimizing the summed
//! per-sample latency under the global capacity hands each byte of budget
//! to the replica whose marginal throughput gain is largest — a K80 that
//! is bandwidth-bound past 256 MiB stops competing for bytes that a V100
//! can still convert into speed.
//!
//! The output [`FleetBudgetPlan`] carries the chosen share and the latency
//! table built under it for every replica, plus the same ILP instruments
//! (`ilp_variables` / `ilp_nodes` / `ilp_solve_us`) that [`crate::wd::WdPlan`]
//! exposes, so the serving tier can publish them unchanged.

use crate::bench_cache::BenchCache;
use crate::error::UcudnnError;
use crate::kernel::KernelKey;
use crate::policy::BatchSizePolicy;
use crate::slo::forward_latency_table;
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_lp::{Item, MckInstance};

/// One candidate workspace share for a replica: the share in bytes and
/// the latency table the replica would serve with under that share.
#[derive(Debug, Clone)]
pub struct BudgetCandidate {
    /// Workspace limit handed to table construction.
    pub ws_limit_bytes: usize,
    /// `t*(m)` table built with `ws_limit = ws_limit_bytes`.
    pub table: Vec<(usize, f64)>,
}

/// A replica's full candidate set, ready for arbitration.
#[derive(Debug, Clone)]
pub struct ReplicaCandidates {
    /// Stable replica name (device card name by convention).
    pub name: String,
    /// Candidate shares, typically one per power-of-two budget step.
    pub candidates: Vec<BudgetCandidate>,
}

/// The share the arbiter granted one replica.
#[derive(Debug, Clone)]
pub struct BudgetShare {
    /// Replica name, copied from [`ReplicaCandidates::name`].
    pub replica: String,
    /// Granted workspace bytes.
    pub ws_limit_bytes: usize,
    /// Best per-sample latency under the granted share:
    /// `min over (m, t) in table of t / m`.
    pub per_sample_us: f64,
    /// The latency table the replica should serve with.
    pub table: Vec<(usize, f64)>,
}

/// The arbiter's decision for a whole fleet.
#[derive(Debug, Clone)]
pub struct FleetBudgetPlan {
    /// One granted share per replica, in input order.
    pub shares: Vec<BudgetShare>,
    /// The global budget the fleet was arbitrated under.
    pub global_budget_bytes: usize,
    /// Sum of granted shares (`<= global_budget_bytes`).
    pub total_granted_bytes: usize,
    /// Number of 0/1 variables in the lifted ILP.
    pub ilp_variables: usize,
    /// Branch-and-bound nodes the solver expanded.
    pub ilp_nodes: usize,
    /// Wall-clock microseconds spent in the solver.
    pub ilp_solve_us: f64,
}

impl FleetBudgetPlan {
    /// Aggregate fleet service capacity: the sum over replicas of the
    /// best throughput (samples/µs) their granted tables support.
    pub fn fleet_rate_per_us(&self) -> f64 {
        self.shares
            .iter()
            .filter(|s| s.per_sample_us > 0.0)
            .map(|s| 1.0 / s.per_sample_us)
            .sum()
    }
}

/// Best per-sample latency of a table: `min over (m, t) of t / m`.
/// `None` for an empty table (nothing runnable under the share).
pub fn best_per_sample_us(table: &[(usize, f64)]) -> Option<f64> {
    table
        .iter()
        .filter(|(m, _)| *m > 0)
        .map(|(m, t)| t / *m as f64)
        .min_by(|a, b| a.total_cmp(b))
}

/// Build one replica's candidate set by rebuilding its latency table at
/// each proposed workspace share. The handle carries the device card, so
/// a K80 handle and a V100 handle yield genuinely different curves from
/// the same kernel set.
pub fn fleet_budget_candidates(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernels: &[KernelKey],
    policy: BatchSizePolicy,
    max_batch: usize,
    shares: &[usize],
) -> Vec<BudgetCandidate> {
    shares
        .iter()
        .map(|&ws| BudgetCandidate {
            ws_limit_bytes: ws,
            table: forward_latency_table(handle, cache, kernels, policy, max_batch, ws),
        })
        .collect()
}

/// Partition `global_budget_bytes` across the fleet.
///
/// Each replica contributes one knapsack group; each viable candidate
/// (non-empty table) contributes one item with `cost` = best per-sample
/// latency and `weight` = the share's bytes. Minimizing total cost under
/// the capacity is the WD objective lifted to replicas: budget flows to
/// whichever replica converts it into the largest latency drop.
///
/// # Errors
/// [`UcudnnError::NoFeasibleConfiguration`] when a replica has no viable
/// candidate at all, [`UcudnnError::WdInfeasible`] when no combination of
/// viable shares fits the global budget (callers should include a
/// zero-byte or minimal share per replica to make the instance total).
pub fn arbitrate_fleet_budget(
    replicas: &[ReplicaCandidates],
    global_budget_bytes: usize,
) -> Result<FleetBudgetPlan, UcudnnError> {
    let mut groups: Vec<Vec<Item>> = Vec::with_capacity(replicas.len());
    // Per replica: the viable candidates behind each group, aligned with
    // the group's item order.
    let mut viable: Vec<Vec<&BudgetCandidate>> = Vec::with_capacity(replicas.len());
    for r in replicas {
        let kept: Vec<&BudgetCandidate> = r
            .candidates
            .iter()
            .filter(|c| best_per_sample_us(&c.table).is_some())
            .collect();
        if kept.is_empty() {
            return Err(UcudnnError::NoFeasibleConfiguration(format!(
                "replica {} has no runnable latency table at any candidate share",
                r.name
            )));
        }
        groups.push(
            kept.iter()
                .map(|c| Item {
                    cost: best_per_sample_us(&c.table).unwrap_or(f64::INFINITY),
                    weight: c.ws_limit_bytes as f64,
                })
                .collect(),
        );
        viable.push(kept);
    }

    let ilp_variables = groups.iter().map(Vec::len).sum();
    let instance = MckInstance {
        groups,
        capacity: global_budget_bytes as f64,
    };
    let ilp = instance.to_ilp();
    let start = std::time::Instant::now();
    let sol = ucudnn_lp::solve_binary(&ilp);
    let ilp_solve_us = start.elapsed().as_secs_f64() * 1e6;
    if sol.status != ucudnn_lp::IlpStatus::Optimal {
        return Err(UcudnnError::WdInfeasible(format!(
            "no combination of replica shares fits the {global_budget_bytes}-byte fleet budget"
        )));
    }
    let choices = instance.choices_from(&sol.x);

    let mut shares = Vec::with_capacity(replicas.len());
    let mut total_granted_bytes = 0usize;
    for ((r, kept), choice) in replicas.iter().zip(&viable).zip(choices) {
        let c = kept[choice];
        total_granted_bytes += c.ws_limit_bytes;
        shares.push(BudgetShare {
            replica: r.name.clone(),
            ws_limit_bytes: c.ws_limit_bytes,
            per_sample_us: best_per_sample_us(&c.table).unwrap_or(f64::INFINITY),
            table: c.table.clone(),
        });
    }
    Ok(FleetBudgetPlan {
        shares,
        global_budget_bytes,
        total_granted_bytes,
        ilp_variables,
        ilp_nodes: sol.nodes,
        ilp_solve_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_cudnn_sim::ConvOp;
    use ucudnn_gpu_model::{k80, p100_sxm2, v100_sxm2};
    use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

    const MIB: usize = 1024 * 1024;

    fn kernels() -> Vec<KernelKey> {
        let g = ConvGeometry::with_square(
            Shape4::new(32, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        );
        vec![KernelKey::new(ConvOp::Forward, &g)]
    }

    fn candidates_for(dev: ucudnn_gpu_model::DeviceSpec) -> ReplicaCandidates {
        let name = dev.name.to_string();
        let handle = CudnnHandle::simulated(dev);
        let cache = BenchCache::new();
        ReplicaCandidates {
            name,
            candidates: fleet_budget_candidates(
                &handle,
                &cache,
                &kernels(),
                BatchSizePolicy::PowerOfTwo,
                32,
                &[0, 64 * MIB, 256 * MIB, 512 * MIB],
            ),
        }
    }

    fn fleet() -> Vec<ReplicaCandidates> {
        vec![
            candidates_for(k80()),
            candidates_for(p100_sxm2()),
            candidates_for(v100_sxm2()),
        ]
    }

    #[test]
    fn bigger_share_never_slows_a_replica() {
        for r in fleet() {
            let mut last = f64::INFINITY;
            for c in &r.candidates {
                let ps = best_per_sample_us(&c.table).expect("runnable table");
                assert!(
                    ps <= last + 1e-9,
                    "replica {} slowed down when its share grew to {} bytes",
                    r.name,
                    c.ws_limit_bytes
                );
                last = ps;
            }
        }
    }

    #[test]
    fn respects_the_global_budget() {
        for budget in [0, 192 * MIB, 512 * MIB, 2048 * MIB] {
            let plan = arbitrate_fleet_budget(&fleet(), budget).expect("feasible");
            assert!(plan.total_granted_bytes <= budget);
            assert_eq!(plan.shares.len(), 3);
            assert!(plan.ilp_variables > 0);
        }
    }

    #[test]
    fn ample_budget_grants_every_replica_its_best_share() {
        let fleet = fleet();
        let plan = arbitrate_fleet_budget(&fleet, usize::MAX / 2).expect("feasible");
        for (share, r) in plan.shares.iter().zip(&fleet) {
            let best = r
                .candidates
                .iter()
                .filter_map(|c| best_per_sample_us(&c.table))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (share.per_sample_us - best).abs() < 1e-9,
                "replica {} should get its fastest table under an ample budget",
                share.replica
            );
        }
    }

    #[test]
    fn scarce_budget_prefers_the_replica_with_the_larger_marginal_gain() {
        // With room for only some upgrades, total latency of the chosen
        // plan must beat any single-replica greedy allocation.
        let fleet = fleet();
        let budget = 512 * MIB;
        let plan = arbitrate_fleet_budget(&fleet, budget).expect("feasible");
        let chosen: f64 = plan.shares.iter().map(|s| s.per_sample_us).sum();
        // Exhaustive check over all candidate combinations that fit.
        let mut best = f64::INFINITY;
        for a in &fleet[0].candidates {
            for b in &fleet[1].candidates {
                for c in &fleet[2].candidates {
                    let bytes = a.ws_limit_bytes + b.ws_limit_bytes + c.ws_limit_bytes;
                    if bytes > budget {
                        continue;
                    }
                    let cost = [a, b, c]
                        .iter()
                        .filter_map(|x| best_per_sample_us(&x.table))
                        .sum::<f64>();
                    best = best.min(cost);
                }
            }
        }
        assert!(
            (chosen - best).abs() < 1e-9,
            "ILP plan ({chosen:.3} µs) must match the exhaustive optimum ({best:.3} µs)"
        );
    }

    #[test]
    fn heterogeneous_devices_get_genuinely_different_tables() {
        let fleet = fleet();
        let plan = arbitrate_fleet_budget(&fleet, 2048 * MIB).expect("feasible");
        let k80 = &plan.shares[0];
        let v100 = &plan.shares[2];
        assert!(
            k80.per_sample_us > v100.per_sample_us * 1.5,
            "K80 ({:.2} µs/sample) should be well slower than V100 ({:.2} µs/sample)",
            k80.per_sample_us,
            v100.per_sample_us
        );
    }

    #[test]
    fn unrunnable_replica_is_a_typed_error() {
        let r = ReplicaCandidates {
            name: "ghost".into(),
            candidates: vec![BudgetCandidate {
                ws_limit_bytes: 0,
                table: Vec::new(),
            }],
        };
        match arbitrate_fleet_budget(&[r], 1024) {
            Err(UcudnnError::NoFeasibleConfiguration(m)) => assert!(m.contains("ghost")),
            other => panic!("expected NoFeasibleConfiguration, got {other:?}"),
        }
    }
}
