//! Benchmark-result caching (§III-D).
//!
//! μ-cuDNN benchmarks each (kernel, micro-batch size) pair once and caches
//! the per-algorithm results in memory, optionally persisting them to a
//! file-based database so repeated runs — or other nodes of a homogeneous
//! cluster sharing a network filesystem — skip the benchmark entirely.
//! Networks that replicate identically-shaped layers (ResNet) hit this cache
//! constantly.

use crate::kernel::KernelKey;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use ucudnn_cudnn_sim::{
    ConvolutionDescriptor, CudnnHandle, Engine, FilterDescriptor, TensorDescriptor,
};
use ucudnn_gpu_model::ConvAlgo;

/// One cached benchmark row (a serializable `AlgoPerf`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// The algorithm.
    pub algo: ConvAlgo,
    /// Benchmarked time in microseconds.
    pub time_us: f64,
    /// Workspace requirement in bytes.
    pub memory_bytes: usize,
}

/// Cache key: the engine identity plus the micro-batch kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct CacheKey {
    engine: String,
    kernel: KernelKey,
}

/// Identity string of a handle's engine; results from different devices
/// must never be mixed.
fn engine_tag(handle: &CudnnHandle) -> String {
    match handle.engine() {
        Engine::Simulated(d) => format!("sim:{}", d.name),
        Engine::RealCpu => "cpu".to_string(),
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory (or the loaded file DB).
    pub hits: u64,
    /// Lookups that required running a benchmark.
    pub misses: u64,
}

/// The benchmark cache.
#[derive(Debug)]
pub struct BenchCache {
    mem: HashMap<CacheKey, Vec<BenchEntry>>,
    file: Option<PathBuf>,
    stats: CacheStats,
}

impl BenchCache {
    /// In-memory-only cache.
    pub fn new() -> Self {
        Self { mem: HashMap::new(), file: None, stats: CacheStats::default() }
    }

    /// Cache backed by a JSON database at `path`; existing contents are
    /// loaded (ignoring a missing or corrupt file, which just means a cold
    /// cache).
    pub fn with_file(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        let mem = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str::<Vec<(CacheKey, Vec<BenchEntry>)>>(&s).ok())
            .map(|v| v.into_iter().collect())
            .unwrap_or_default();
        Self { mem, file: Some(path), stats: CacheStats::default() }
    }

    /// Number of cached (kernel, micro-batch) entries.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Benchmark all algorithms for `kernel` (whose `input.n` *is* the
    /// micro-batch size), serving from cache when possible. Results are
    /// sorted fastest-first.
    pub fn get_or_bench(&mut self, handle: &CudnnHandle, kernel: &KernelKey) -> Vec<BenchEntry> {
        let key = CacheKey { engine: engine_tag(handle), kernel: *kernel };
        if let Some(v) = self.mem.get(&key) {
            self.stats.hits += 1;
            return v.clone();
        }
        self.stats.misses += 1;
        let v = run_benchmark(handle, kernel);
        self.mem.insert(key, v.clone());
        v
    }

    /// Benchmark many (kernel, micro-batch) pairs, evaluating cache misses
    /// on parallel threads — the analogue of μ-cuDNN's multi-GPU parallel
    /// micro-benchmark evaluation (§III-D). Safe because the simulated
    /// engine is a pure function; for wall-clock (CPU) benchmarking callers
    /// should keep `parallel = false` to avoid contention skew.
    pub fn prefetch(&mut self, handle: &CudnnHandle, kernels: &[KernelKey], parallel: bool) {
        let tag = engine_tag(handle);
        let missing: Vec<KernelKey> = kernels
            .iter()
            .filter(|k| !self.mem.contains_key(&CacheKey { engine: tag.clone(), kernel: **k }))
            .copied()
            .collect();
        if missing.is_empty() {
            return;
        }
        let results: Vec<(KernelKey, Vec<BenchEntry>)> = if parallel && missing.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = missing
                    .iter()
                    .map(|k| {
                        let k = *k;
                        scope.spawn(move || (k, run_benchmark(handle, &k)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("benchmark thread panicked")).collect()
            })
        } else {
            missing.iter().map(|k| (*k, run_benchmark(handle, k))).collect()
        };
        for (k, v) in results {
            self.stats.misses += 1;
            self.mem.insert(CacheKey { engine: tag.clone(), kernel: k }, v);
        }
    }

    /// Persist the cache to its file DB (no-op for in-memory caches).
    ///
    /// # Errors
    /// Propagates I/O and serialization failures.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.file else { return Ok(()) };
        let rows: Vec<(&CacheKey, &Vec<BenchEntry>)> = self.mem.iter().collect();
        let json = serde_json::to_string(&rows).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }
}

impl Default for BenchCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Run the substrate's `Find` benchmark for one micro-batch kernel.
fn run_benchmark(handle: &CudnnHandle, kernel: &KernelKey) -> Vec<BenchEntry> {
    let g = kernel.geometry();
    let xd = TensorDescriptor::from_shape(g.input).expect("valid shape");
    let wd = FilterDescriptor::from_shape(g.filter).expect("valid filter");
    let cd = ConvolutionDescriptor::new_2d(g.pad_h, g.pad_w, g.stride_h, g.stride_w)
        .expect("valid convolution");
    handle
        .find_algorithms(kernel.conv_op(), &xd, &wd, &cd)
        .expect("find_algorithms failed for a validated geometry")
        .into_iter()
        .map(|p| BenchEntry { algo: p.algo, time_us: p.time_us, memory_bytes: p.memory_bytes })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_cudnn_sim::ConvOp;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

    fn key(n: usize) -> KernelKey {
        let g = ConvGeometry::with_square(
            Shape4::new(n, 8, 16, 16),
            FilterShape::new(8, 8, 3, 3),
            1,
            1,
        );
        KernelKey::new(ConvOp::Forward, &g)
    }

    #[test]
    fn caches_after_first_benchmark() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let mut c = BenchCache::new();
        let a = c.get_or_bench(&h, &key(16));
        let b = c.get_or_bench(&h, &key(16));
        assert_eq!(a, b);
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn different_micro_batches_are_distinct_entries() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let mut c = BenchCache::new();
        c.get_or_bench(&h, &key(16));
        c.get_or_bench(&h, &key(8));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn devices_do_not_share_entries() {
        let p = CudnnHandle::simulated(p100_sxm2());
        let v = CudnnHandle::simulated(ucudnn_gpu_model::v100_sxm2());
        let mut c = BenchCache::new();
        let tp = c.get_or_bench(&p, &key(16));
        let tv = c.get_or_bench(&v, &key(16));
        assert_eq!(c.stats().misses, 2, "each device must benchmark separately");
        // V100 is faster, so the cached times must differ.
        assert_ne!(tp[0].time_us, tv[0].time_us);
    }

    #[test]
    fn file_db_round_trips() {
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let h = CudnnHandle::simulated(p100_sxm2());
        let want = {
            let mut c = BenchCache::with_file(&path);
            let v = c.get_or_bench(&h, &key(32));
            c.save().unwrap();
            v
        };
        let mut c2 = BenchCache::with_file(&path);
        assert_eq!(c2.len(), 1, "offline benchmarking: entries load from disk");
        let got = c2.get_or_bench(&h, &key(32));
        // Times may differ by one ULP across the JSON round-trip; identity
        // of algorithms, ordering and workspace sizes is what matters.
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.algo, w.algo);
            assert_eq!(g.memory_bytes, w.memory_bytes);
            assert!((g.time_us - w.time_us).abs() <= 1e-9 * w.time_us.abs());
        }
        assert_eq!(c2.stats(), CacheStats { hits: 1, misses: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_file_means_cold_cache() {
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        std::fs::write(&path, "not json").unwrap();
        let c = BenchCache::with_file(&path);
        assert!(c.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetch_parallel_matches_serial() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let keys: Vec<KernelKey> = [1usize, 2, 4, 8, 16].iter().map(|&n| key(n)).collect();
        let mut serial = BenchCache::new();
        serial.prefetch(&h, &keys, false);
        let mut parallel = BenchCache::new();
        parallel.prefetch(&h, &keys, true);
        for k in &keys {
            assert_eq!(serial.get_or_bench(&h, k), parallel.get_or_bench(&h, k));
        }
    }
}
