//! Concurrent benchmark-result caching (§III-D).
//!
//! μ-cuDNN benchmarks each (kernel, micro-batch size) pair once and caches
//! the per-algorithm results in memory, optionally persisting them to a
//! file-based database so repeated runs — or other nodes of a homogeneous
//! cluster sharing a network filesystem — skip the benchmark entirely.
//! Networks that replicate identically-shaped layers (ResNet) hit this cache
//! constantly.
//!
//! The cache is a shared, lock-sharded structure: any number of optimizer
//! threads may call [`BenchCache::get_or_bench`] through `&BenchCache`
//! concurrently. Per-key *single-flight* arbitration guarantees that no
//! kernel is ever measured twice — the first thread to request a key becomes
//! its leader and runs the benchmark while later requesters block on a
//! condition variable until the result lands (counted in
//! [`CacheStats::single_flight_waits`]). Benchmarks always run outside every
//! map lock, so independent keys never serialize behind each other.

use crate::json::{self, Value};
use crate::kernel::{KernelKey, OpKind};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ucudnn_cudnn_sim::{
    AlgoStatus, ConvolutionDescriptor, CudnnError, CudnnHandle, Engine, FilterDescriptor,
    TensorDescriptor,
};
use ucudnn_gpu_model::ConvAlgo;

/// File-DB format version. Bump on any incompatible layout change; files
/// with a different (or missing) version are quarantined wholesale rather
/// than half-parsed.
const DB_VERSION: usize = 2;

/// One cached benchmark row (a persistable `AlgoPerf`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchEntry {
    /// The algorithm.
    pub algo: ConvAlgo,
    /// Benchmarked time in microseconds.
    pub time_us: f64,
    /// Workspace requirement in bytes.
    pub memory_bytes: usize,
}

/// Cache key: the engine identity plus the micro-batch kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    engine: String,
    kernel: KernelKey,
}

/// Identity string of a handle's engine; results from different devices
/// must never be mixed.
fn engine_tag(handle: &CudnnHandle) -> String {
    match handle.engine() {
        Engine::Simulated(d) => format!("sim:{}", d.name),
        Engine::RealCpu => "cpu".to_string(),
    }
}

/// Cache traffic counters. All counters are updated atomically, so a
/// snapshot taken while optimizer threads are running is internally
/// consistent per counter (not across counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory (or the loaded file DB) without blocking
    /// on an in-flight benchmark.
    pub hits: u64,
    /// Lookups that ran a benchmark (this thread was the key's leader).
    pub misses: u64,
    /// Lookups that found another thread already benchmarking the same key
    /// and blocked until its result landed.
    pub single_flight_waits: u64,
    /// (algo, micro-batch) measurements dropped because the algorithm
    /// failed while benchmarking — each is a degradation of the search
    /// space the optimizer would otherwise have explored.
    pub bench_points_dropped: u64,
    /// Whole-key benchmark re-runs taken to ride out transient faults.
    pub bench_retries: u64,
    /// Rows accepted from the file DB at load time.
    pub db_rows_loaded: u64,
    /// Rows (or whole files counted as one) rejected at load time:
    /// malformed fields, truncation, or a wrong/missing format version.
    pub db_rows_quarantined: u64,
    /// Entries evicted by [`BenchCache::invalidate`] — stale measurements
    /// discarded so a re-benchmark re-measures the kernel as it is now.
    pub invalidations: u64,
}

/// What a leader's benchmark produced: measurements, or the failure that
/// every later lookup of the key will observe (failures are cached too —
/// retrying a permanently faulted kernel on every lookup would serialize
/// the optimizer behind known-dead benchmarks).
type BenchOutcome = Result<Vec<BenchEntry>, CudnnError>;

/// Per-key single-flight slot. `result` is `None` while the leader is still
/// benchmarking; waiters sleep on `ready` until it is filled.
#[derive(Debug)]
struct Slot {
    result: Mutex<Option<BenchOutcome>>,
    ready: Condvar,
    /// How many times this key's benchmark actually ran (0 for entries
    /// loaded from the file DB; the single-flight guarantee keeps it ≤ 1
    /// outside transient-fault retries).
    runs: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
            runs: AtomicU64::new(0),
        }
    }

    fn filled(entries: Vec<BenchEntry>) -> Self {
        Self {
            result: Mutex::new(Some(Ok(entries))),
            ready: Condvar::new(),
            runs: AtomicU64::new(0),
        }
    }
}

const SHARD_COUNT: usize = 16;

type Shard = RwLock<HashMap<CacheKey, Arc<Slot>>>;

/// The concurrent benchmark cache. Shared by reference across optimizer
/// threads; all methods take `&self`.
#[derive(Debug)]
pub struct BenchCache {
    shards: Vec<Shard>,
    file: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    single_flight_waits: AtomicU64,
    bench_points_dropped: AtomicU64,
    bench_retries: AtomicU64,
    db_rows_loaded: AtomicU64,
    db_rows_quarantined: AtomicU64,
    invalidations: AtomicU64,
}

impl BenchCache {
    /// In-memory-only cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            file: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            single_flight_waits: AtomicU64::new(0),
            bench_points_dropped: AtomicU64::new(0),
            bench_retries: AtomicU64::new(0),
            db_rows_loaded: AtomicU64::new(0),
            db_rows_quarantined: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Cache backed by a JSON database at `path`. Existing contents are
    /// loaded row by row: valid rows land in the cache
    /// ([`CacheStats::db_rows_loaded`]), malformed rows are *quarantined* —
    /// skipped and counted ([`CacheStats::db_rows_quarantined`]) — never
    /// coerced into zero-valued measurements. A missing file is a cold
    /// cache; a file with a wrong or missing format version is quarantined
    /// wholesale.
    pub fn with_file(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        let mut cache = Self::new();
        cache.file = Some(path.clone());
        if let Ok(text) = std::fs::read_to_string(&path) {
            let (rows, loaded, quarantined) = load_db(&text);
            cache.db_rows_loaded.store(loaded, Ordering::Relaxed);
            cache
                .db_rows_quarantined
                .store(quarantined, Ordering::Relaxed);
            for (key, entries) in rows {
                let shard = &cache.shards[shard_index(&key)];
                shard.write().insert(key, Arc::new(Slot::filled(entries)));
            }
        }
        cache
    }

    /// Number of cached (kernel, micro-batch) entries whose results are
    /// available (in-flight benchmarks are not counted).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|slot| matches!(*slot.result.lock(), Some(Ok(_))))
                    .count()
            })
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            single_flight_waits: self.single_flight_waits.load(Ordering::Relaxed),
            bench_points_dropped: self.bench_points_dropped.load(Ordering::Relaxed),
            bench_retries: self.bench_retries.load(Ordering::Relaxed),
            db_rows_loaded: self.db_rows_loaded.load(Ordering::Relaxed),
            db_rows_quarantined: self.db_rows_quarantined.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Evict the cached benchmark for `kernel` on `handle`'s engine, so the
    /// next lookup re-measures it. Returns whether an entry (or an
    /// in-flight slot) was actually present.
    ///
    /// An invalidated slot is only *detached* from the map: a leader still
    /// benchmarking into it will fill it and wake its waiters normally —
    /// they observe the measurement they asked for, just one that no longer
    /// serves future lookups. Nobody blocks, nothing tears.
    pub fn invalidate(&self, handle: &CudnnHandle, kernel: &KernelKey) -> bool {
        let key = CacheKey {
            engine: engine_tag(handle),
            kernel: *kernel,
        };
        let removed = self.shards[shard_index(&key)]
            .write()
            .remove(&key)
            .is_some();
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Benchmark all algorithms for `kernel` (whose `input.n` *is* the
    /// micro-batch size), serving from cache when possible. Results are
    /// sorted fastest-first.
    ///
    /// Safe to call from many threads at once: per-key single-flight
    /// arbitration ensures the benchmark for any key runs exactly once, and
    /// benchmarks for distinct keys proceed in parallel.
    pub fn get_or_bench(&self, handle: &CudnnHandle, kernel: &KernelKey) -> Vec<BenchEntry> {
        self.try_get_or_bench(handle, kernel).unwrap_or_default()
    }

    /// [`Self::get_or_bench`] with the failure visible: a key whose
    /// benchmark failed outright (every algorithm faulted, or the substrate
    /// refused the query) returns the cached error so callers can count the
    /// degradation and fall back. Transient faults are retried here, up to
    /// the handle's [`CudnnHandle::fault_retry_budget`] extra attempts
    /// (counted in [`CacheStats::bench_retries`]).
    ///
    /// # Errors
    /// The benchmark failure for this key, cached like any other result.
    pub fn try_get_or_bench(
        &self,
        handle: &CudnnHandle,
        kernel: &KernelKey,
    ) -> Result<Vec<BenchEntry>, CudnnError> {
        let key = CacheKey {
            engine: engine_tag(handle),
            kernel: *kernel,
        };
        let (slot, leader) = self.slot_for(key);
        if leader {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let outcome = self.lead_benchmark(handle, kernel, &slot);
            // Single-flight means exactly one such event per unique micro
            // kernel — the event set is thread-count-invariant.
            crate::trace::event("bench", "benchmark", || {
                (
                    kernel.to_string(),
                    crate::json::obj([
                        (
                            "entries",
                            crate::json::num(outcome.as_ref().map_or(0, Vec::len) as f64),
                        ),
                        ("failed", crate::json::Value::Bool(outcome.is_err())),
                    ]),
                )
            });
            let mut guard = slot.result.lock();
            *guard = Some(outcome.clone());
            slot.ready.notify_all();
            return outcome;
        }
        let mut guard = slot.result.lock();
        if guard.is_none() {
            // The leader is still benchmarking; block until its result
            // lands rather than measuring the same kernel twice.
            self.single_flight_waits.fetch_add(1, Ordering::Relaxed);
            while guard.is_none() {
                slot.ready.wait(&mut guard);
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        guard.clone().expect("slot filled after wait")
    }

    /// Run the benchmark for a key this thread leads, riding out transient
    /// faults within the handle's retry budget and folding per-algorithm
    /// failures into [`CacheStats::bench_points_dropped`].
    fn lead_benchmark(
        &self,
        handle: &CudnnHandle,
        kernel: &KernelKey,
        slot: &Slot,
    ) -> BenchOutcome {
        let budget = handle.fault_retry_budget();
        let mut attempt = 0u32;
        let result = loop {
            let res = run_benchmark(handle, kernel);
            slot.runs.fetch_add(1, Ordering::Relaxed);
            let clean = matches!(&res, Ok((_, 0)));
            if clean || attempt >= budget {
                break res;
            }
            attempt += 1;
            self.bench_retries.fetch_add(1, Ordering::Relaxed);
        };
        match result {
            Ok((entries, dropped)) => {
                self.bench_points_dropped
                    .fetch_add(dropped, Ordering::Relaxed);
                if entries.is_empty() && dropped > 0 {
                    Err(CudnnError::ExecutionFailed(
                        "every algorithm failed while benchmarking".into(),
                    ))
                } else {
                    Ok(entries)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Find or create the slot for `key`. The thread that inserts the slot
    /// is its *leader* (returns `true`) and must run the benchmark; every
    /// other thread gets the shared slot and `false`.
    fn slot_for(&self, key: CacheKey) -> (Arc<Slot>, bool) {
        let shard = &self.shards[shard_index(&key)];
        if let Some(slot) = shard.read().get(&key) {
            return (Arc::clone(slot), false);
        }
        let mut map = shard.write();
        if let Some(slot) = map.get(&key) {
            return (Arc::clone(slot), false);
        }
        let slot = Arc::new(Slot::empty());
        map.insert(key, Arc::clone(&slot));
        (slot, true)
    }

    /// Benchmark many (kernel, micro-batch) pairs, evaluating cache misses
    /// on parallel threads — the analogue of μ-cuDNN's multi-GPU parallel
    /// micro-benchmark evaluation (§III-D). Redundant with calling
    /// [`Self::get_or_bench`] from worker threads, but kept as the warm-up
    /// entry point for callers that batch their keys up front.
    pub fn prefetch(&self, handle: &CudnnHandle, kernels: &[KernelKey], parallel: bool) {
        if parallel && kernels.len() > 1 {
            std::thread::scope(|scope| {
                for k in kernels {
                    scope.spawn(move || {
                        self.get_or_bench(handle, k);
                    });
                }
            });
        } else {
            for k in kernels {
                self.get_or_bench(handle, k);
            }
        }
    }

    /// Per-kernel benchmark-run counts, sorted by kernel label. Under the
    /// single-flight guarantee every count is exactly 1 (file-DB entries
    /// that were never re-measured do not appear).
    pub fn benchmark_counts(&self) -> Vec<(String, u64)> {
        let mut counts: Vec<(String, u64)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .filter_map(|(key, slot)| {
                        let runs = slot.runs.load(Ordering::Relaxed);
                        (runs > 0).then(|| (format!("{}@{}", key.kernel, key.engine), runs))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        counts.sort();
        counts
    }

    /// Benchmark-run counts aggregated per *base* kernel — the micro-batch
    /// dimension is folded away, so one optimized layer kernel contributes
    /// one row whose count is the number of micro-batch sizes measured for
    /// it. This is the reporting granularity of
    /// [`crate::OptimizerMetrics::to_json`]; use
    /// [`Self::benchmark_counts`] for the per-entry invariant.
    pub fn benchmark_counts_by_kernel(&self) -> Vec<(String, u64)> {
        let mut counts: Vec<(String, u64)> = Vec::new();
        for shard in &self.shards {
            for (key, slot) in shard.read().iter() {
                let runs = slot.runs.load(Ordering::Relaxed);
                if runs == 0 {
                    continue;
                }
                let label = base_kernel_label(key);
                match counts.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, n)) => *n += runs,
                    None => counts.push((label, runs)),
                }
            }
        }
        counts.sort();
        counts
    }

    /// Persist the cache to its file DB (no-op for in-memory caches).
    /// Rows are sorted by key, so identical contents produce byte-identical
    /// files regardless of benchmarking order or thread count. Only
    /// successful measurements are persisted — cached benchmark *failures*
    /// are runtime state, not truth worth sharing with other nodes.
    ///
    /// The write is atomic: the document lands in a `<name>.tmp` sibling
    /// first and is renamed over the target, so a reader (or a crash)
    /// mid-save can never observe a torn database.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.file else {
            return Ok(());
        };
        let mut rows: Vec<(CacheKey, Vec<BenchEntry>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .filter_map(|(key, slot)| match slot.result.lock().as_ref() {
                        Some(Ok(v)) => Some((key.clone(), v.clone())),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        rows.sort_by_key(|(k, _)| (k.engine.clone(), format!("{}", k.kernel)));
        let doc = json::obj([
            ("version", json::num(DB_VERSION as f64)),
            (
                "rows",
                Value::Arr(rows.iter().map(|(k, v)| row_to_json(k, v)).collect()),
            ),
        ]);
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        std::fs::write(&tmp, doc.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

impl Default for BenchCache {
    fn default() -> Self {
        Self::new()
    }
}

fn shard_index(key: &CacheKey) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARD_COUNT
}

/// Kernel label with the micro-batch size (`input.n`) elided, shared by
/// every micro-batch entry of one optimized layer kernel.
fn base_kernel_label(key: &CacheKey) -> String {
    let k = &key.kernel;
    format!(
        "{}[in=*x{}x{}x{} filt={}x{}x{}x{} pad={}x{} stride={}x{}]@{}",
        op_tag(k.op),
        k.input.c,
        k.input.h,
        k.input.w,
        k.filter.k,
        k.filter.c,
        k.filter.r,
        k.filter.s,
        k.pad_h,
        k.pad_w,
        k.stride_h,
        k.stride_w,
        key.engine,
    )
}

fn op_tag(op: OpKind) -> &'static str {
    match op {
        OpKind::Forward => "fwd",
        OpKind::BackwardData => "bwd_data",
        OpKind::BackwardFilter => "bwd_filter",
    }
}

fn op_from_tag(tag: &str) -> Option<OpKind> {
    match tag {
        "fwd" => Some(OpKind::Forward),
        "bwd_data" => Some(OpKind::BackwardData),
        "bwd_filter" => Some(OpKind::BackwardFilter),
        _ => None,
    }
}

fn row_to_json(key: &CacheKey, entries: &[BenchEntry]) -> Value {
    let k = &key.kernel;
    json::obj([
        ("engine", Value::Str(key.engine.clone())),
        ("op", Value::Str(op_tag(k.op).to_string())),
        (
            "geometry",
            Value::Arr(
                [
                    k.input.n, k.input.c, k.input.h, k.input.w, k.filter.k, k.filter.c, k.filter.r,
                    k.filter.s, k.pad_h, k.pad_w, k.stride_h, k.stride_w,
                ]
                .iter()
                .map(|&v| json::num(v as f64))
                .collect(),
            ),
        ),
        (
            "entries",
            Value::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Value::Arr(vec![
                            json::num(e.algo.id() as f64),
                            json::num(e.time_us),
                            json::num(e.memory_bytes as f64),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn row_from_json(row: &Value) -> Option<(CacheKey, Vec<BenchEntry>)> {
    let engine = row.get("engine")?.as_str()?.to_string();
    let op = op_from_tag(row.get("op")?.as_str()?)?;
    let g = row.get("geometry")?.as_arr()?;
    if g.len() != 12 {
        return None;
    }
    let d: Vec<usize> = g.iter().map(|v| v.as_usize()).collect::<Option<Vec<_>>>()?;
    let kernel = KernelKey {
        op,
        input: ucudnn_tensor::Shape4::new(d[0], d[1], d[2], d[3]),
        filter: ucudnn_tensor::FilterShape::new(d[4], d[5], d[6], d[7]),
        pad_h: d[8],
        pad_w: d[9],
        stride_h: d[10],
        stride_w: d[11],
    };
    let entries = row
        .get("entries")?
        .as_arr()?
        .iter()
        .map(|e| {
            let e = e.as_arr()?;
            if e.len() != 3 {
                return None;
            }
            let algo = *ConvAlgo::ALL.get(e[0].as_usize()?)?;
            let time_us = e[1].as_f64()?;
            // A non-finite or negative time can never be a measurement;
            // accepting it would hand the optimizer a fake free kernel.
            if !time_us.is_finite() || time_us < 0.0 {
                return None;
            }
            Some(BenchEntry {
                algo,
                time_us,
                memory_bytes: e[2].as_usize()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    // An entry-less row is a truncation artifact, not a benchmark result.
    if entries.is_empty() {
        return None;
    }
    Some((CacheKey { engine, kernel }, entries))
}

/// Parse a file DB: `(accepted rows, loaded count, quarantined count)`.
///
/// Only a well-formed version-`DB_VERSION` document contributes rows; its
/// malformed rows are skipped and counted individually. Anything else —
/// unparseable JSON, a bare legacy array, a wrong version — quarantines the
/// whole file, counted as the number of rows visible (minimum 1).
fn load_db(text: &str) -> (Vec<(CacheKey, Vec<BenchEntry>)>, u64, u64) {
    let Some(doc) = Value::parse(text) else {
        return (Vec::new(), 0, 1);
    };
    if doc.get("version").and_then(|v| v.as_usize()) != Some(DB_VERSION) {
        let visible = doc
            .as_arr()
            .or_else(|| doc.get("rows").and_then(|r| r.as_arr()))
            .map_or(1, |a| a.len().max(1) as u64);
        return (Vec::new(), 0, visible);
    }
    let Some(rows) = doc.get("rows").and_then(|r| r.as_arr()) else {
        return (Vec::new(), 0, 1);
    };
    let mut out = Vec::new();
    let (mut loaded, mut quarantined) = (0u64, 0u64);
    for row in rows {
        match row_from_json(row) {
            Some(parsed) => {
                out.push(parsed);
                loaded += 1;
            }
            None => quarantined += 1,
        }
    }
    (out, loaded, quarantined)
}

/// Run the substrate's `Find` benchmark for one micro-batch kernel.
/// Returns the successful measurements (already fastest-first) plus the
/// number of per-algorithm failures dropped from the result.
///
/// # Errors
/// The substrate's own refusal (e.g. an injected allocation failure on the
/// workspace query, or a degenerate geometry).
fn run_benchmark(
    handle: &CudnnHandle,
    kernel: &KernelKey,
) -> Result<(Vec<BenchEntry>, u64), CudnnError> {
    let g = kernel.geometry();
    let xd = TensorDescriptor::from_shape(g.input)?;
    let wd = FilterDescriptor::from_shape(g.filter)?;
    let cd = ConvolutionDescriptor::new_2d(g.pad_h, g.pad_w, g.stride_h, g.stride_w)?;
    let perfs = handle.find_algorithms(kernel.conv_op(), &xd, &wd, &cd)?;
    let dropped = perfs
        .iter()
        .filter(|p| p.status != AlgoStatus::Success)
        .count() as u64;
    let entries = perfs
        .into_iter()
        .filter(|p| p.status == AlgoStatus::Success)
        .map(|p| BenchEntry {
            algo: p.algo,
            time_us: p.time_us,
            memory_bytes: p.memory_bytes,
        })
        .collect();
    Ok((entries, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_cudnn_sim::ConvOp;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

    fn key(n: usize) -> KernelKey {
        let g = ConvGeometry::with_square(
            Shape4::new(n, 8, 16, 16),
            FilterShape::new(8, 8, 3, 3),
            1,
            1,
        );
        KernelKey::new(ConvOp::Forward, &g)
    }

    #[test]
    fn caches_after_first_benchmark() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let c = BenchCache::new();
        let a = c.get_or_bench(&h, &key(16));
        let b = c.get_or_bench(&h, &key(16));
        assert_eq!(a, b);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn different_micro_batches_are_distinct_entries() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let c = BenchCache::new();
        c.get_or_bench(&h, &key(16));
        c.get_or_bench(&h, &key(8));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn devices_do_not_share_entries() {
        let p = CudnnHandle::simulated(p100_sxm2());
        let v = CudnnHandle::simulated(ucudnn_gpu_model::v100_sxm2());
        let c = BenchCache::new();
        let tp = c.get_or_bench(&p, &key(16));
        let tv = c.get_or_bench(&v, &key(16));
        assert_eq!(c.stats().misses, 2, "each device must benchmark separately");
        // V100 is faster, so the cached times must differ.
        assert_ne!(tp[0].time_us, tv[0].time_us);
    }

    #[test]
    fn file_db_round_trips() {
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let h = CudnnHandle::simulated(p100_sxm2());
        let want = {
            let c = BenchCache::with_file(&path);
            let v = c.get_or_bench(&h, &key(32));
            c.save().unwrap();
            v
        };
        let c2 = BenchCache::with_file(&path);
        assert_eq!(c2.len(), 1, "offline benchmarking: entries load from disk");
        let got = c2.get_or_bench(&h, &key(32));
        // The hand-rolled JSON writer uses shortest round-trip float
        // formatting, so reloaded entries are bit-exact.
        assert_eq!(got, want);
        assert_eq!(
            c2.stats(),
            CacheStats {
                hits: 1,
                db_rows_loaded: 1,
                ..CacheStats::default()
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_byte_deterministic_regardless_of_insertion_order() {
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-det-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let h = CudnnHandle::simulated(p100_sxm2());
        let keys = [key(1), key(2), key(4), key(8), key(16)];
        let path_a = dir.join("a.json");
        let a = BenchCache::with_file(&path_a);
        for k in &keys {
            a.get_or_bench(&h, k);
        }
        a.save().unwrap();
        let path_b = dir.join("b.json");
        let b = BenchCache::with_file(&path_b);
        for k in keys.iter().rev() {
            b.get_or_bench(&h, k);
        }
        b.save().unwrap();
        assert_eq!(
            std::fs::read_to_string(&path_a).unwrap(),
            std::fs::read_to_string(&path_b).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_file_means_cold_cache() {
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        std::fs::write(&path, "not json").unwrap();
        let c = BenchCache::with_file(&path);
        assert!(c.is_empty());
        assert_eq!(c.stats().db_rows_quarantined, 1);
        assert_eq!(c.stats().db_rows_loaded, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_rows_are_quarantined_not_zeroed() {
        // A v2 document with one valid row, one row whose time field is
        // garbage, and one truncated row: the valid row loads, the other
        // two are counted — never parsed as zero-time configurations.
        let h = CudnnHandle::simulated(p100_sxm2());
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-quar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let writer = BenchCache::with_file(&path);
        let good = writer.get_or_bench(&h, &key(8));
        writer.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Extract the one valid row and append two corrupted copies: one
        // with an unknown op tag, one truncated to an empty entry list.
        let row = Value::parse(&text)
            .unwrap()
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .to_json();
        let bad_op = row.replace("\"op\":\"fwd\"", "\"op\":\"bogus\"");
        assert_ne!(bad_op, row, "corruption must have applied");
        let entries_at = row.find("\"entries\":[").unwrap() + "\"entries\":[".len();
        let truncated = format!("{}]}}", &row[..entries_at]);
        let doctored = format!("{{\"version\":2,\"rows\":[{row},{bad_op},{truncated}]}}");
        std::fs::write(&path, &doctored).unwrap();

        let c = BenchCache::with_file(&path);
        assert_eq!(c.len(), 1, "only the intact row loads");
        assert_eq!(c.stats().db_rows_loaded, 1);
        assert_eq!(c.stats().db_rows_quarantined, 2);
        assert_eq!(c.get_or_bench(&h, &key(8)), good);
        assert_eq!(c.stats().misses, 0, "the good row still serves lookups");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_quarantines_the_whole_file() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let writer = BenchCache::with_file(&path);
        writer.get_or_bench(&h, &key(8));
        writer.get_or_bench(&h, &key(16));
        writer.save().unwrap();
        let future = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"version\":2", "\"version\":99");
        std::fs::write(&path, future).unwrap();
        let c = BenchCache::with_file(&path);
        assert!(c.is_empty(), "a future format version must not half-parse");
        assert_eq!(c.stats().db_rows_quarantined, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_leaves_no_tmp_file_behind() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-tmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let c = BenchCache::with_file(&path);
        c.get_or_bench(&h, &key(8));
        c.save().unwrap();
        assert!(path.exists());
        assert!(
            !dir.join("bench.json.tmp").exists(),
            "atomic save must rename its temp file away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_benchmarks_are_cached_and_never_persisted() {
        use ucudnn_cudnn_sim::{FaultPlan, FaultTarget};
        let h = CudnnHandle::simulated(p100_sxm2()).with_faults(FaultPlan {
            targets: vec![FaultTarget::any()],
            ..FaultPlan::default()
        });
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let c = BenchCache::with_file(&path);
        assert!(c.try_get_or_bench(&h, &key(8)).is_err());
        assert!(
            c.try_get_or_bench(&h, &key(8)).is_err(),
            "the failure is cached"
        );
        let stats = c.stats();
        assert_eq!(stats.misses, 1, "the dead key is benchmarked only once");
        assert_eq!(stats.hits, 1);
        assert!(stats.bench_points_dropped > 0);
        assert!(c.is_empty(), "failed keys hold no measurements");
        c.save().unwrap();
        let reloaded = BenchCache::with_file(&path);
        assert!(reloaded.is_empty(), "failures must not be persisted");
        assert_eq!(reloaded.stats().db_rows_quarantined, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_bench_fault_recovers_within_retry_budget() {
        use ucudnn_cudnn_sim::{FaultPlan, FaultTarget};
        let clean = CudnnHandle::simulated(p100_sxm2());
        let want = BenchCache::new().get_or_bench(&clean, &key(8));
        let h = CudnnHandle::simulated(p100_sxm2()).with_faults(FaultPlan {
            targets: vec![FaultTarget::any()],
            transient_tries: 1,
            ..FaultPlan::default()
        });
        let c = BenchCache::new();
        let got = c.try_get_or_bench(&h, &key(8)).unwrap();
        assert_eq!(got, want, "the retried benchmark is a clean measurement");
        let stats = c.stats();
        assert_eq!(stats.bench_retries, 1);
        assert_eq!(stats.bench_points_dropped, 0, "the retry wiped the drops");
    }

    #[test]
    fn prefetch_parallel_matches_serial() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let keys: Vec<KernelKey> = [1usize, 2, 4, 8, 16].iter().map(|&n| key(n)).collect();
        let serial = BenchCache::new();
        serial.prefetch(&h, &keys, false);
        let parallel = BenchCache::new();
        parallel.prefetch(&h, &keys, true);
        for k in &keys {
            assert_eq!(serial.get_or_bench(&h, k), parallel.get_or_bench(&h, k));
        }
    }

    #[test]
    fn benchmark_counts_aggregate_over_micro_batches() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let c = BenchCache::new();
        for n in [1usize, 2, 4, 8] {
            c.get_or_bench(&h, &key(n));
        }
        assert_eq!(
            c.benchmark_counts().len(),
            4,
            "one entry per micro-batch size"
        );
        let agg = c.benchmark_counts_by_kernel();
        assert_eq!(agg.len(), 1, "one base kernel");
        assert_eq!(agg[0].1, 4, "four micro-batch sizes measured for it");
        assert!(
            agg[0].0.starts_with("fwd[in=*x8x16x16"),
            "batch folded out of {}",
            agg[0].0
        );
    }

    #[test]
    fn invalidate_forces_a_re_benchmark() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let c = BenchCache::new();
        let before = c.get_or_bench(&h, &key(16));
        assert!(c.invalidate(&h, &key(16)), "the entry was present");
        assert!(!c.invalidate(&h, &key(16)), "already evicted");
        assert_eq!(c.len(), 0);
        let after = c.get_or_bench(&h, &key(16));
        assert_eq!(after, before, "a stable device re-measures identically");
        let stats = c.stats();
        assert_eq!(stats.misses, 2, "the second lookup re-benchmarked");
        assert_eq!(stats.invalidations, 1);
        // Other engines' entries are untouched.
        let v = CudnnHandle::simulated(ucudnn_gpu_model::v100_sxm2());
        c.get_or_bench(&v, &key(16));
        assert!(!c.invalidate(&h, &key(8)), "different kernel, no entry");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_sees_the_perturbed_device_on_re_benchmark() {
        // The re-optimization story end to end at the cache layer: a cached
        // pre-drift measurement survives the perturbation until it is
        // invalidated, after which the re-benchmark observes the slower
        // device.
        use ucudnn_gpu_model::Perturbation;
        let h = CudnnHandle::simulated(p100_sxm2()).with_perturbation(Perturbation::new(0.0, 2.0));
        let clean = BenchCache::new().get_or_bench(&CudnnHandle::simulated(p100_sxm2()), &key(16));
        let c = BenchCache::new();
        let perturbed = c.get_or_bench(&h, &key(16));
        assert!(
            (perturbed[0].time_us - 2.0 * clean[0].time_us).abs() < 1e-9,
            "benchmarks observe the perturbed curve"
        );
        c.invalidate(&h, &key(16));
        assert_eq!(c.get_or_bench(&h, &key(16)), perturbed);
    }

    #[test]
    fn concurrent_lookups_benchmark_each_key_exactly_once() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let c = BenchCache::new();
        let keys: Vec<KernelKey> = [1usize, 2, 4, 8].iter().map(|&n| key(n)).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let keys = &keys;
                let (c, h) = (&c, &h);
                scope.spawn(move || {
                    for k in keys {
                        c.get_or_bench(h, k);
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(
            stats.misses,
            keys.len() as u64,
            "single-flight: one benchmark per key"
        );
        assert_eq!(
            stats.hits + stats.misses + stats.single_flight_waits,
            (8 * keys.len()) as u64,
            "every lookup is accounted for exactly once"
        );
        for (label, runs) in c.benchmark_counts() {
            assert_eq!(runs, 1, "{label} measured more than once");
        }
    }
}
