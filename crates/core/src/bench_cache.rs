//! Concurrent benchmark-result caching (§III-D).
//!
//! μ-cuDNN benchmarks each (kernel, micro-batch size) pair once and caches
//! the per-algorithm results in memory, optionally persisting them to a
//! file-based database so repeated runs — or other nodes of a homogeneous
//! cluster sharing a network filesystem — skip the benchmark entirely.
//! Networks that replicate identically-shaped layers (ResNet) hit this cache
//! constantly.
//!
//! The cache is a shared, lock-sharded structure: any number of optimizer
//! threads may call [`BenchCache::get_or_bench`] through `&BenchCache`
//! concurrently. Per-key *single-flight* arbitration guarantees that no
//! kernel is ever measured twice — the first thread to request a key becomes
//! its leader and runs the benchmark while later requesters block on a
//! condition variable until the result lands (counted in
//! [`CacheStats::single_flight_waits`]). Benchmarks always run outside every
//! map lock, so independent keys never serialize behind each other.

use crate::json::{self, Value};
use crate::kernel::{KernelKey, OpKind};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ucudnn_cudnn_sim::{
    ConvolutionDescriptor, CudnnHandle, Engine, FilterDescriptor, TensorDescriptor,
};
use ucudnn_gpu_model::ConvAlgo;

/// One cached benchmark row (a persistable `AlgoPerf`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchEntry {
    /// The algorithm.
    pub algo: ConvAlgo,
    /// Benchmarked time in microseconds.
    pub time_us: f64,
    /// Workspace requirement in bytes.
    pub memory_bytes: usize,
}

/// Cache key: the engine identity plus the micro-batch kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    engine: String,
    kernel: KernelKey,
}

/// Identity string of a handle's engine; results from different devices
/// must never be mixed.
fn engine_tag(handle: &CudnnHandle) -> String {
    match handle.engine() {
        Engine::Simulated(d) => format!("sim:{}", d.name),
        Engine::RealCpu => "cpu".to_string(),
    }
}

/// Cache traffic counters. All counters are updated atomically, so a
/// snapshot taken while optimizer threads are running is internally
/// consistent per counter (not across counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory (or the loaded file DB) without blocking
    /// on an in-flight benchmark.
    pub hits: u64,
    /// Lookups that ran a benchmark (this thread was the key's leader).
    pub misses: u64,
    /// Lookups that found another thread already benchmarking the same key
    /// and blocked until its result landed.
    pub single_flight_waits: u64,
}

/// Per-key single-flight slot. `result` is `None` while the leader is still
/// benchmarking; waiters sleep on `ready` until it is filled.
#[derive(Debug)]
struct Slot {
    result: Mutex<Option<Vec<BenchEntry>>>,
    ready: Condvar,
    /// How many times this key's benchmark actually ran (0 for entries
    /// loaded from the file DB; the single-flight guarantee keeps it ≤ 1
    /// otherwise).
    runs: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
            runs: AtomicU64::new(0),
        }
    }

    fn filled(entries: Vec<BenchEntry>) -> Self {
        Self {
            result: Mutex::new(Some(entries)),
            ready: Condvar::new(),
            runs: AtomicU64::new(0),
        }
    }
}

const SHARD_COUNT: usize = 16;

type Shard = RwLock<HashMap<CacheKey, Arc<Slot>>>;

/// The concurrent benchmark cache. Shared by reference across optimizer
/// threads; all methods take `&self`.
#[derive(Debug)]
pub struct BenchCache {
    shards: Vec<Shard>,
    file: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    single_flight_waits: AtomicU64,
}

impl BenchCache {
    /// In-memory-only cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            file: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            single_flight_waits: AtomicU64::new(0),
        }
    }

    /// Cache backed by a JSON database at `path`; existing contents are
    /// loaded (ignoring a missing or corrupt file, which just means a cold
    /// cache that re-benchmarks everything).
    pub fn with_file(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        let mut cache = Self::new();
        cache.file = Some(path.clone());
        if let Some(rows) = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| parse_db(&s))
        {
            for (key, entries) in rows {
                let shard = &cache.shards[shard_index(&key)];
                shard.write().insert(key, Arc::new(Slot::filled(entries)));
            }
        }
        cache
    }

    /// Number of cached (kernel, micro-batch) entries whose results are
    /// available (in-flight benchmarks are not counted).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|slot| slot.result.lock().is_some())
                    .count()
            })
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            single_flight_waits: self.single_flight_waits.load(Ordering::Relaxed),
        }
    }

    /// Benchmark all algorithms for `kernel` (whose `input.n` *is* the
    /// micro-batch size), serving from cache when possible. Results are
    /// sorted fastest-first.
    ///
    /// Safe to call from many threads at once: per-key single-flight
    /// arbitration ensures the benchmark for any key runs exactly once, and
    /// benchmarks for distinct keys proceed in parallel.
    pub fn get_or_bench(&self, handle: &CudnnHandle, kernel: &KernelKey) -> Vec<BenchEntry> {
        let key = CacheKey {
            engine: engine_tag(handle),
            kernel: *kernel,
        };
        let (slot, leader) = self.slot_for(key);
        if leader {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let entries = run_benchmark(handle, kernel);
            slot.runs.fetch_add(1, Ordering::Relaxed);
            let mut guard = slot.result.lock();
            *guard = Some(entries.clone());
            slot.ready.notify_all();
            return entries;
        }
        let mut guard = slot.result.lock();
        if guard.is_none() {
            // The leader is still benchmarking; block until its result
            // lands rather than measuring the same kernel twice.
            self.single_flight_waits.fetch_add(1, Ordering::Relaxed);
            while guard.is_none() {
                slot.ready.wait(&mut guard);
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        guard.clone().expect("slot filled after wait")
    }

    /// Find or create the slot for `key`. The thread that inserts the slot
    /// is its *leader* (returns `true`) and must run the benchmark; every
    /// other thread gets the shared slot and `false`.
    fn slot_for(&self, key: CacheKey) -> (Arc<Slot>, bool) {
        let shard = &self.shards[shard_index(&key)];
        if let Some(slot) = shard.read().get(&key) {
            return (Arc::clone(slot), false);
        }
        let mut map = shard.write();
        if let Some(slot) = map.get(&key) {
            return (Arc::clone(slot), false);
        }
        let slot = Arc::new(Slot::empty());
        map.insert(key, Arc::clone(&slot));
        (slot, true)
    }

    /// Benchmark many (kernel, micro-batch) pairs, evaluating cache misses
    /// on parallel threads — the analogue of μ-cuDNN's multi-GPU parallel
    /// micro-benchmark evaluation (§III-D). Redundant with calling
    /// [`Self::get_or_bench`] from worker threads, but kept as the warm-up
    /// entry point for callers that batch their keys up front.
    pub fn prefetch(&self, handle: &CudnnHandle, kernels: &[KernelKey], parallel: bool) {
        if parallel && kernels.len() > 1 {
            std::thread::scope(|scope| {
                for k in kernels {
                    scope.spawn(move || {
                        self.get_or_bench(handle, k);
                    });
                }
            });
        } else {
            for k in kernels {
                self.get_or_bench(handle, k);
            }
        }
    }

    /// Per-kernel benchmark-run counts, sorted by kernel label. Under the
    /// single-flight guarantee every count is exactly 1 (file-DB entries
    /// that were never re-measured do not appear).
    pub fn benchmark_counts(&self) -> Vec<(String, u64)> {
        let mut counts: Vec<(String, u64)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .filter_map(|(key, slot)| {
                        let runs = slot.runs.load(Ordering::Relaxed);
                        (runs > 0).then(|| (format!("{}@{}", key.kernel, key.engine), runs))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        counts.sort();
        counts
    }

    /// Benchmark-run counts aggregated per *base* kernel — the micro-batch
    /// dimension is folded away, so one optimized layer kernel contributes
    /// one row whose count is the number of micro-batch sizes measured for
    /// it. This is the reporting granularity of
    /// [`crate::OptimizerMetrics::to_json`]; use
    /// [`Self::benchmark_counts`] for the per-entry invariant.
    pub fn benchmark_counts_by_kernel(&self) -> Vec<(String, u64)> {
        let mut counts: Vec<(String, u64)> = Vec::new();
        for shard in &self.shards {
            for (key, slot) in shard.read().iter() {
                let runs = slot.runs.load(Ordering::Relaxed);
                if runs == 0 {
                    continue;
                }
                let label = base_kernel_label(key);
                match counts.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, n)) => *n += runs,
                    None => counts.push((label, runs)),
                }
            }
        }
        counts.sort();
        counts
    }

    /// Persist the cache to its file DB (no-op for in-memory caches).
    /// Rows are sorted by key, so identical contents produce byte-identical
    /// files regardless of benchmarking order or thread count.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.file else {
            return Ok(());
        };
        let mut rows: Vec<(CacheKey, Vec<BenchEntry>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .filter_map(|(key, slot)| {
                        slot.result
                            .lock()
                            .as_ref()
                            .map(|v| (key.clone(), v.clone()))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        rows.sort_by_key(|(k, _)| (k.engine.clone(), format!("{}", k.kernel)));
        let doc = Value::Arr(rows.iter().map(|(k, v)| row_to_json(k, v)).collect());
        std::fs::write(path, doc.to_json())
    }
}

impl Default for BenchCache {
    fn default() -> Self {
        Self::new()
    }
}

fn shard_index(key: &CacheKey) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARD_COUNT
}

/// Kernel label with the micro-batch size (`input.n`) elided, shared by
/// every micro-batch entry of one optimized layer kernel.
fn base_kernel_label(key: &CacheKey) -> String {
    let k = &key.kernel;
    format!(
        "{}[in=*x{}x{}x{} filt={}x{}x{}x{} pad={}x{} stride={}x{}]@{}",
        op_tag(k.op),
        k.input.c,
        k.input.h,
        k.input.w,
        k.filter.k,
        k.filter.c,
        k.filter.r,
        k.filter.s,
        k.pad_h,
        k.pad_w,
        k.stride_h,
        k.stride_w,
        key.engine,
    )
}

fn op_tag(op: OpKind) -> &'static str {
    match op {
        OpKind::Forward => "fwd",
        OpKind::BackwardData => "bwd_data",
        OpKind::BackwardFilter => "bwd_filter",
    }
}

fn op_from_tag(tag: &str) -> Option<OpKind> {
    match tag {
        "fwd" => Some(OpKind::Forward),
        "bwd_data" => Some(OpKind::BackwardData),
        "bwd_filter" => Some(OpKind::BackwardFilter),
        _ => None,
    }
}

fn row_to_json(key: &CacheKey, entries: &[BenchEntry]) -> Value {
    let k = &key.kernel;
    json::obj([
        ("engine", Value::Str(key.engine.clone())),
        ("op", Value::Str(op_tag(k.op).to_string())),
        (
            "geometry",
            Value::Arr(
                [
                    k.input.n, k.input.c, k.input.h, k.input.w, k.filter.k, k.filter.c, k.filter.r,
                    k.filter.s, k.pad_h, k.pad_w, k.stride_h, k.stride_w,
                ]
                .iter()
                .map(|&v| json::num(v as f64))
                .collect(),
            ),
        ),
        (
            "entries",
            Value::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Value::Arr(vec![
                            json::num(e.algo.id() as f64),
                            json::num(e.time_us),
                            json::num(e.memory_bytes as f64),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn row_from_json(row: &Value) -> Option<(CacheKey, Vec<BenchEntry>)> {
    let engine = row.get("engine")?.as_str()?.to_string();
    let op = op_from_tag(row.get("op")?.as_str()?)?;
    let g = row.get("geometry")?.as_arr()?;
    if g.len() != 12 {
        return None;
    }
    let d: Vec<usize> = g.iter().map(|v| v.as_usize()).collect::<Option<Vec<_>>>()?;
    let kernel = KernelKey {
        op,
        input: ucudnn_tensor::Shape4::new(d[0], d[1], d[2], d[3]),
        filter: ucudnn_tensor::FilterShape::new(d[4], d[5], d[6], d[7]),
        pad_h: d[8],
        pad_w: d[9],
        stride_h: d[10],
        stride_w: d[11],
    };
    let entries = row
        .get("entries")?
        .as_arr()?
        .iter()
        .map(|e| {
            let e = e.as_arr()?;
            if e.len() != 3 {
                return None;
            }
            let algo = *ConvAlgo::ALL.get(e[0].as_usize()?)?;
            Some(BenchEntry {
                algo,
                time_us: e[1].as_f64()?,
                memory_bytes: e[2].as_usize()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some((CacheKey { engine, kernel }, entries))
}

fn parse_db(text: &str) -> Option<Vec<(CacheKey, Vec<BenchEntry>)>> {
    Value::parse(text)?
        .as_arr()?
        .iter()
        .map(row_from_json)
        .collect()
}

/// Run the substrate's `Find` benchmark for one micro-batch kernel.
fn run_benchmark(handle: &CudnnHandle, kernel: &KernelKey) -> Vec<BenchEntry> {
    let g = kernel.geometry();
    let xd = TensorDescriptor::from_shape(g.input).expect("valid shape");
    let wd = FilterDescriptor::from_shape(g.filter).expect("valid filter");
    let cd = ConvolutionDescriptor::new_2d(g.pad_h, g.pad_w, g.stride_h, g.stride_w)
        .expect("valid convolution");
    handle
        .find_algorithms(kernel.conv_op(), &xd, &wd, &cd)
        .expect("find_algorithms failed for a validated geometry")
        .into_iter()
        .map(|p| BenchEntry {
            algo: p.algo,
            time_us: p.time_us,
            memory_bytes: p.memory_bytes,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_cudnn_sim::ConvOp;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

    fn key(n: usize) -> KernelKey {
        let g = ConvGeometry::with_square(
            Shape4::new(n, 8, 16, 16),
            FilterShape::new(8, 8, 3, 3),
            1,
            1,
        );
        KernelKey::new(ConvOp::Forward, &g)
    }

    #[test]
    fn caches_after_first_benchmark() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let c = BenchCache::new();
        let a = c.get_or_bench(&h, &key(16));
        let b = c.get_or_bench(&h, &key(16));
        assert_eq!(a, b);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                single_flight_waits: 0
            }
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn different_micro_batches_are_distinct_entries() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let c = BenchCache::new();
        c.get_or_bench(&h, &key(16));
        c.get_or_bench(&h, &key(8));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn devices_do_not_share_entries() {
        let p = CudnnHandle::simulated(p100_sxm2());
        let v = CudnnHandle::simulated(ucudnn_gpu_model::v100_sxm2());
        let c = BenchCache::new();
        let tp = c.get_or_bench(&p, &key(16));
        let tv = c.get_or_bench(&v, &key(16));
        assert_eq!(c.stats().misses, 2, "each device must benchmark separately");
        // V100 is faster, so the cached times must differ.
        assert_ne!(tp[0].time_us, tv[0].time_us);
    }

    #[test]
    fn file_db_round_trips() {
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let h = CudnnHandle::simulated(p100_sxm2());
        let want = {
            let c = BenchCache::with_file(&path);
            let v = c.get_or_bench(&h, &key(32));
            c.save().unwrap();
            v
        };
        let c2 = BenchCache::with_file(&path);
        assert_eq!(c2.len(), 1, "offline benchmarking: entries load from disk");
        let got = c2.get_or_bench(&h, &key(32));
        // The hand-rolled JSON writer uses shortest round-trip float
        // formatting, so reloaded entries are bit-exact.
        assert_eq!(got, want);
        assert_eq!(
            c2.stats(),
            CacheStats {
                hits: 1,
                misses: 0,
                single_flight_waits: 0
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_byte_deterministic_regardless_of_insertion_order() {
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-det-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let h = CudnnHandle::simulated(p100_sxm2());
        let keys = [key(1), key(2), key(4), key(8), key(16)];
        let path_a = dir.join("a.json");
        let a = BenchCache::with_file(&path_a);
        for k in &keys {
            a.get_or_bench(&h, k);
        }
        a.save().unwrap();
        let path_b = dir.join("b.json");
        let b = BenchCache::with_file(&path_b);
        for k in keys.iter().rev() {
            b.get_or_bench(&h, k);
        }
        b.save().unwrap();
        assert_eq!(
            std::fs::read_to_string(&path_a).unwrap(),
            std::fs::read_to_string(&path_b).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_file_means_cold_cache() {
        let dir = std::env::temp_dir().join(format!("ucudnn-cache-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        std::fs::write(&path, "not json").unwrap();
        let c = BenchCache::with_file(&path);
        assert!(c.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetch_parallel_matches_serial() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let keys: Vec<KernelKey> = [1usize, 2, 4, 8, 16].iter().map(|&n| key(n)).collect();
        let serial = BenchCache::new();
        serial.prefetch(&h, &keys, false);
        let parallel = BenchCache::new();
        parallel.prefetch(&h, &keys, true);
        for k in &keys {
            assert_eq!(serial.get_or_bench(&h, k), parallel.get_or_bench(&h, k));
        }
    }

    #[test]
    fn benchmark_counts_aggregate_over_micro_batches() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let c = BenchCache::new();
        for n in [1usize, 2, 4, 8] {
            c.get_or_bench(&h, &key(n));
        }
        assert_eq!(
            c.benchmark_counts().len(),
            4,
            "one entry per micro-batch size"
        );
        let agg = c.benchmark_counts_by_kernel();
        assert_eq!(agg.len(), 1, "one base kernel");
        assert_eq!(agg[0].1, 4, "four micro-batch sizes measured for it");
        assert!(
            agg[0].0.starts_with("fwd[in=*x8x16x16"),
            "batch folded out of {}",
            agg[0].0
        );
    }

    #[test]
    fn concurrent_lookups_benchmark_each_key_exactly_once() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let c = BenchCache::new();
        let keys: Vec<KernelKey> = [1usize, 2, 4, 8].iter().map(|&n| key(n)).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let keys = &keys;
                let (c, h) = (&c, &h);
                scope.spawn(move || {
                    for k in keys {
                        c.get_or_bench(h, k);
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(
            stats.misses,
            keys.len() as u64,
            "single-flight: one benchmark per key"
        );
        assert_eq!(
            stats.hits + stats.misses + stats.single_flight_waits,
            (8 * keys.len()) as u64,
            "every lookup is accounted for exactly once"
        );
        for (label, runs) in c.benchmark_counts() {
            assert_eq!(runs, 1, "{label} measured more than once");
        }
    }
}
