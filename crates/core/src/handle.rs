//! `UcudnnHandle` — the transparent wrapper (§III-D, §III-E).
//!
//! Replacing `cudnnHandle_t` with `UcudnnHandle_t` is the only change a
//! framework needs (about three lines in Caffe). The wrapper:
//!
//! * intercepts `get_algorithm` / `get_workspace_size`, optimizes the
//!   kernel's micro-batch division, and returns a **virtual algorithm id**
//!   with **zero** required workspace — so the framework neither allocates a
//!   workspace nor interferes with the plan;
//! * intercepts the three `convolution_*` calls and replays them as the
//!   planned sequence of micro-batch kernels against the wrapped handle,
//!   with `beta = 1` accumulation for BackwardFilter;
//! * delegates everything else to the wrapped handle (`Deref`, the analogue
//!   of the C++ cast operator).
//!
//! Workspaces are owned by the wrapper: one buffer per kernel under WR, one
//! globally divided buffer under WD.

use crate::bench_cache::{BenchCache, CacheStats};
use crate::config::Configuration;
use crate::error::UcudnnError;
use crate::kernel::KernelKey;
use crate::metrics::OptimizerMetrics;
use crate::policy::BatchSizePolicy;
use crate::trace::{self, PlanProvenance};
use crate::wd::{optimize_wd_weighted_parallel, WdPlan};
use crate::wr::{optimize_wr_metered, WrResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use ucudnn_cudnn_sim::{
    ConvAlgo, ConvOp, ConvolutionDescriptor, CudnnError, CudnnHandle, FilterDescriptor,
    TensorDescriptor,
};
use ucudnn_tensor::Shape4;

/// The algorithm id returned to frameworks for every optimized kernel. The
/// value itself is meaningless (the wrapper ignores the algorithm argument
/// at execution time and uses its plan); it only has to be a valid id the
/// framework can pass back, exactly like the paper's "virtual algorithm ID".
pub const VIRTUAL_ALGO: ConvAlgo = ConvAlgo::ImplicitGemm;

/// Which optimization scheme the handle runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerMode {
    /// Workspace Reuse: per-kernel workspace of at most the limit, each
    /// kernel optimized independently by dynamic programming.
    Wr,
    /// Workspace Division: one global workspace of at most the limit,
    /// divided among kernels by the ILP.
    Wd,
}

/// Wrapper configuration (the C++ library reads these from environment
/// variables; here they are explicit).
#[derive(Debug, Clone)]
pub struct UcudnnOptions {
    /// Micro-batch sizes to benchmark.
    pub policy: BatchSizePolicy,
    /// Workspace limit in bytes: per kernel under WR, total under WD.
    pub workspace_limit_bytes: usize,
    /// WR or WD.
    pub mode: OptimizerMode,
    /// Optional file-backed benchmark database (§III-D).
    pub cache_file: Option<PathBuf>,
    /// Evaluate micro-benchmarks on parallel threads (the multi-GPU
    /// parallel-evaluation analogue). Keep off for wall-clock benchmarking.
    pub parallel_benchmark: bool,
    /// Worker threads for whole-network optimization
    /// ([`UcudnnHandle::optimize_network`] and the WD desirable-set fan-out).
    /// Plans are byte-identical for every value; only wall clock changes.
    pub opt_threads: usize,
}

impl Default for UcudnnOptions {
    fn default() -> Self {
        Self {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 64 * 1024 * 1024,
            mode: OptimizerMode::Wr,
            cache_file: None,
            parallel_benchmark: false,
            opt_threads: 1,
        }
    }
}

/// A kernel's installed execution plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The micro-batch division to execute.
    pub config: Configuration,
    /// Workspace segment offset in `f32` elements (WD; zero under WR).
    pub offset_floats: usize,
    /// How many times this kernel was registered (replicated layers).
    pub multiplicity: usize,
    /// The decision record explaining this plan (DESIGN.md §10).
    pub provenance: PlanProvenance,
}

#[derive(Debug, Default)]
struct State {
    plans: HashMap<KernelKey, Plan>,
    /// WD: kernels registered during network construction, with counts.
    pending: Vec<KernelKey>,
    wd_plan: Option<WdPlan>,
    /// WR: one workspace per kernel.
    arenas: HashMap<KernelKey, Vec<f32>>,
    /// WD: the single divided workspace.
    wd_arena: Vec<f32>,
    /// Wall time spent optimizing (benchmarks + DP + ILP), microseconds.
    opt_wall_us: f64,
}

/// The transparent μ-cuDNN handle.
///
/// The benchmark cache and metrics collector live outside the state mutex:
/// both are internally synchronized, so optimizer worker threads share them
/// directly while the mutex only guards plan installation.
#[derive(Debug)]
pub struct UcudnnHandle {
    inner: CudnnHandle,
    opts: UcudnnOptions,
    cache: BenchCache,
    metrics: OptimizerMetrics,
    state: Mutex<State>,
}

impl std::ops::Deref for UcudnnHandle {
    type Target = CudnnHandle;

    /// Delegation of every non-convolution call to the wrapped handle —
    /// the Rust spelling of the C++ cast operator.
    fn deref(&self) -> &CudnnHandle {
        &self.inner
    }
}

impl UcudnnHandle {
    /// Wrap a substrate handle.
    pub fn new(inner: CudnnHandle, opts: UcudnnOptions) -> Self {
        let cache = match &opts.cache_file {
            Some(p) => BenchCache::with_file(p),
            None => BenchCache::new(),
        };
        Self {
            inner,
            opts,
            cache,
            metrics: OptimizerMetrics::new(),
            state: Mutex::new(State::default()),
        }
    }

    /// The wrapped handle.
    pub fn inner(&self) -> &CudnnHandle {
        &self.inner
    }

    /// The wrapper options.
    pub fn options(&self) -> &UcudnnOptions {
        &self.opts
    }

    /// `cudnnGetConvolution*Algorithm` override: register (and under WR,
    /// immediately optimize) the kernel, then return the virtual algorithm.
    ///
    /// # Errors
    /// Propagates optimization failures.
    pub fn get_algorithm(
        &self,
        op: ConvOp,
        x: &TensorDescriptor,
        w: &FilterDescriptor,
        conv: &ConvolutionDescriptor,
    ) -> Result<ConvAlgo, UcudnnError> {
        let g = conv.geometry(x, w)?;
        let key = KernelKey::new(op, &g);
        let mut st = self.state.lock();
        match self.opts.mode {
            OptimizerMode::Wr => {
                self.ensure_wr_plan(&mut st, &key)?;
                if let Some(p) = st.plans.get_mut(&key) {
                    p.multiplicity += 1;
                }
            }
            OptimizerMode::Wd => {
                if st.wd_plan.is_none() {
                    st.pending.push(key);
                } else if !st.plans.contains_key(&key) {
                    // A kernel registered after WD ran: fall back to WR for
                    // it with the whole limit (rare; keeps the API total).
                    self.ensure_wr_plan(&mut st, &key)?;
                }
            }
        }
        Ok(VIRTUAL_ALGO)
    }

    /// `cudnnGetConvolution*WorkspaceSize` override: always zero — the
    /// wrapper owns all workspaces.
    ///
    /// # Errors
    /// Rejects invalid descriptor combinations like the substrate would.
    pub fn get_workspace_size(
        &self,
        _op: ConvOp,
        x: &TensorDescriptor,
        w: &FilterDescriptor,
        conv: &ConvolutionDescriptor,
        _algo: ConvAlgo,
    ) -> Result<usize, UcudnnError> {
        conv.geometry(x, w)?;
        Ok(0)
    }

    /// Run the WD optimization over all kernels registered so far. Called
    /// automatically on the first convolution; frameworks whose
    /// initialization order needs it can call it explicitly (the paper adds
    /// exactly such a post-initialization hook to Caffe).
    ///
    /// # Errors
    /// Propagates WD infeasibility.
    pub fn finalize_network(&self) -> Result<(), UcudnnError> {
        let mut st = self.state.lock();
        self.run_wd(&mut st)
    }

    fn run_wd(&self, st: &mut State) -> Result<(), UcudnnError> {
        if st.wd_plan.is_some() || st.pending.is_empty() {
            return Ok(());
        }
        let start = std::time::Instant::now();
        // Fold duplicate-shape kernels into one group with a multiplicity
        // weight: the wrapper cannot tell instances apart at execution time,
        // so they share a configuration and a segment.
        let mut counts: Vec<(KernelKey, usize)> = Vec::new();
        for k in &st.pending {
            match counts.iter_mut().find(|(kk, _)| kk == k) {
                Some((_, c)) => *c += 1,
                None => counts.push((*k, 1)),
            }
        }
        let threads = self.opts.opt_threads.max(1);
        self.metrics.set_threads(threads);
        self.metrics.add_kernels(counts.len());
        // Shrink-and-retry on allocation faults: every failed arena
        // allocation re-solves the ILP with a budget strictly below the
        // failed size, descending monotonically to zero (which never
        // faults — the threshold is strict).
        let mut limit = self.opts.workspace_limit_bytes;
        // Degradation rungs taken before the final solve, prepended to every
        // assignment's provenance so the record reads in ladder order.
        let mut shrink_rungs: Vec<String> = Vec::new();
        let plan = loop {
            let plan = optimize_wd_weighted_parallel(
                &self.inner,
                &self.cache,
                &counts,
                limit,
                self.opts.policy,
                threads,
                Some(&self.metrics),
            )?;
            if self
                .inner
                .fault_check_alloc(plan.total_workspace_bytes)
                .is_ok()
            {
                break plan;
            }
            self.metrics.degradation();
            limit = plan.total_workspace_bytes - 1;
            shrink_rungs.push(format!("wd_shrink:{limit}"));
        };
        st.wd_arena = vec![0.0f32; plan.total_workspace_bytes.div_ceil(4)];
        for (a, (_, mult)) in plan.assignments.iter().zip(&counts) {
            let mut provenance = a.provenance.clone();
            if !shrink_rungs.is_empty() {
                let mut rungs = shrink_rungs.clone();
                rungs.append(&mut provenance.degradations);
                provenance.degradations = rungs;
            }
            trace::plan_event(&a.kernel, &a.config, &provenance);
            st.plans.insert(
                a.kernel,
                Plan {
                    config: a.config.clone(),
                    offset_floats: a.offset_bytes / 4,
                    multiplicity: *mult,
                    provenance,
                },
            );
        }
        st.pending.clear();
        st.wd_plan = Some(plan);
        st.opt_wall_us += start.elapsed().as_secs_f64() * 1e6;
        Ok(())
    }

    fn ensure_wr_plan(&self, st: &mut State, key: &KernelKey) -> Result<(), UcudnnError> {
        if st.plans.contains_key(key) {
            return Ok(());
        }
        let start = std::time::Instant::now();
        let r = optimize_wr_metered(
            &self.inner,
            &self.cache,
            key,
            self.opts.workspace_limit_bytes,
            self.opts.policy,
            self.opts.parallel_benchmark,
            Some(&self.metrics),
        )?;
        let (config, arena, provenance) = self.wr_arena_with_shrink(key, r)?;
        st.opt_wall_us += start.elapsed().as_secs_f64() * 1e6;
        self.metrics.add_kernels(1);
        st.arenas.insert(*key, arena);
        st.plans.insert(
            *key,
            Plan {
                config,
                offset_floats: 0,
                multiplicity: 0,
                provenance,
            },
        );
        Ok(())
    }

    /// Allocate a WR arena for an optimized configuration, degrading on
    /// allocation faults: every failed allocation re-runs the DP with the
    /// workspace limit strictly below the failed size, so the loop descends
    /// monotonically and bottoms out at the zero-workspace configuration
    /// (a zero-byte allocation never faults — the threshold is strict).
    fn wr_arena_with_shrink(
        &self,
        key: &KernelKey,
        mut r: WrResult,
    ) -> Result<(Configuration, Vec<f32>, PlanProvenance), UcudnnError> {
        // Rungs taken by this loop, prepended so the provenance record
        // reads in ladder order: shrink rungs first, then whatever the
        // final re-optimization itself degraded through.
        let mut shrink_rungs: Vec<String> = Vec::new();
        loop {
            if !r.config.covers(key.batch()) {
                return Err(UcudnnError::Degraded {
                    kernel: key.to_string(),
                    lost: format!(
                        "optimizer produced a configuration that does not tile the batch: {}",
                        r.config
                    ),
                });
            }
            let bytes = r.config.workspace_bytes();
            if self.inner.fault_check_alloc(bytes).is_ok() {
                let mut provenance = r.provenance;
                if !shrink_rungs.is_empty() {
                    shrink_rungs.append(&mut provenance.degradations);
                    provenance.degradations = shrink_rungs;
                }
                trace::plan_event(key, &r.config, &provenance);
                return Ok((r.config, vec![0.0f32; bytes.div_ceil(4)], provenance));
            }
            self.metrics.degradation();
            shrink_rungs.push(format!("shrink_reoptimize:{}", bytes - 1));
            r = optimize_wr_metered(
                &self.inner,
                &self.cache,
                key,
                bytes - 1,
                self.opts.policy,
                self.opts.parallel_benchmark,
                Some(&self.metrics),
            )?;
        }
    }

    /// Run a substrate call, retrying transient injected execution faults
    /// up to the handle's retry budget. Non-execution errors (and faults
    /// that persist past the budget) propagate.
    fn with_exec_retries(
        &self,
        mut call: impl FnMut() -> ucudnn_cudnn_sim::Result<()>,
    ) -> Result<(), UcudnnError> {
        let budget = self.inner.fault_retry_budget();
        let mut attempt = 0u32;
        loop {
            match call() {
                Ok(()) => return Ok(()),
                Err(CudnnError::ExecutionFailed(_)) if attempt < budget => {
                    attempt += 1;
                    self.metrics.add_exec_retries(1);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Optimize a whole network's kernels in one call, fanning the
    /// per-kernel WR dynamic programs (or the WD desirable-set
    /// construction) over [`UcudnnOptions::opt_threads`] workers that share
    /// the concurrent benchmark cache.
    ///
    /// Duplicate keys are folded into one plan with their occurrence count
    /// as multiplicity. The produced plans are byte-identical to calling
    /// [`Self::get_algorithm`] kernel-by-kernel with one thread: worker
    /// results are installed in registration order, and the underlying
    /// benchmarks are pure functions of (device, kernel).
    ///
    /// # Errors
    /// Propagates the first optimization failure in registration order.
    pub fn optimize_network(&self, kernels: &[KernelKey]) -> Result<(), UcudnnError> {
        let start = std::time::Instant::now();
        let threads = self.opts.opt_threads.max(1);
        self.metrics.set_threads(threads);
        match self.opts.mode {
            OptimizerMode::Wr => self.optimize_network_wr(kernels, threads)?,
            OptimizerMode::Wd => {
                {
                    let mut st = self.state.lock();
                    for k in kernels {
                        if !st.plans.contains_key(k) {
                            st.pending.push(*k);
                        }
                    }
                }
                self.finalize_network()?;
            }
        }
        let mut st = self.state.lock();
        st.opt_wall_us += start.elapsed().as_secs_f64() * 1e6;
        // Args are thread-count-independent on purpose: logical-clock traces
        // of the same network must not differ by `opt_threads`.
        trace::event("opt", "network_done", || {
            (
                match self.opts.mode {
                    OptimizerMode::Wr => "wr".to_string(),
                    OptimizerMode::Wd => "wd".to_string(),
                },
                crate::json::obj([("kernels", crate::json::num(kernels.len() as f64))]),
            )
        });
        Ok(())
    }

    fn optimize_network_wr(
        &self,
        kernels: &[KernelKey],
        threads: usize,
    ) -> Result<(), UcudnnError> {
        // Fold duplicates and skip kernels that already have plans.
        let mut counts: Vec<(KernelKey, usize)> = Vec::new();
        {
            let st = self.state.lock();
            for k in kernels {
                match counts.iter_mut().find(|(kk, _)| kk == k) {
                    Some((_, c)) => *c += 1,
                    None if !st.plans.contains_key(k) => counts.push((*k, 1)),
                    None => {}
                }
            }
        }
        if counts.is_empty() {
            return Ok(());
        }
        self.metrics.add_kernels(counts.len());
        type WrOutcome = Result<crate::wr::WrResult, UcudnnError>;
        let results: Vec<WrOutcome> = if threads > 1 && counts.len() > 1 {
            // Work-queue fan-out: workers pull kernel indices off a shared
            // counter; results land in an index-addressed slot vector so the
            // installation order below is the registration order. A panic in
            // one kernel's optimization loses that slot, not the process —
            // lost slots are recomputed sequentially below.
            let next = AtomicUsize::new(0);
            let outcomes: Vec<Vec<(usize, Option<WrOutcome>)>> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads.min(counts.len()))
                    .map(|_| {
                        let (next, counts) = (&next, &counts);
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some((k, _)) = counts.get(i) else { break };
                                let r = catch_unwind(AssertUnwindSafe(|| self.optimize_one_wr(k)));
                                done.push((i, r.ok()));
                            }
                            done
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().unwrap_or_default())
                    .collect()
            });
            let mut slots: Vec<Option<WrOutcome>> = (0..counts.len()).map(|_| None).collect();
            for (i, r) in outcomes.into_iter().flatten() {
                if let Some(r) = r {
                    slots[i] = Some(r);
                }
            }
            // Refill slots lost to worker panics; a second panic on the
            // calling thread is reported as an error instead of crashing.
            slots
                .into_iter()
                .enumerate()
                .map(|(i, r)| match r {
                    Some(r) => r,
                    None => {
                        let (k, _) = &counts[i];
                        catch_unwind(AssertUnwindSafe(|| self.optimize_one_wr(k))).unwrap_or_else(
                            |_| {
                                Err(UcudnnError::WorkerPanicked(format!(
                                    "WR optimization for {k}"
                                )))
                            },
                        )
                    }
                })
                .collect()
        } else {
            counts
                .iter()
                .map(|(k, _)| self.optimize_one_wr(k))
                .collect()
        };
        let mut installed = Vec::with_capacity(counts.len());
        for ((key, _), result) in counts.iter().zip(results) {
            let r = result?;
            installed.push(self.wr_arena_with_shrink(key, r)?);
        }
        let mut st = self.state.lock();
        for ((key, mult), (config, arena, provenance)) in counts.iter().zip(installed) {
            st.arenas.insert(*key, arena);
            st.plans.insert(
                *key,
                Plan {
                    config,
                    offset_floats: 0,
                    multiplicity: *mult,
                    provenance,
                },
            );
        }
        Ok(())
    }

    fn optimize_one_wr(&self, key: &KernelKey) -> Result<crate::wr::WrResult, UcudnnError> {
        optimize_wr_metered(
            &self.inner,
            &self.cache,
            key,
            self.opts.workspace_limit_bytes,
            self.opts.policy,
            self.opts.parallel_benchmark,
            Some(&self.metrics),
        )
    }

    /// Fetch (or lazily build) the plan for a kernel about to execute.
    fn plan_for(&self, st: &mut State, key: &KernelKey) -> Result<Plan, UcudnnError> {
        if self.opts.mode == OptimizerMode::Wd {
            self.run_wd(st)?;
        }
        if !st.plans.contains_key(key) {
            // Unregistered kernel (framework skipped get_algorithm):
            // optimize it on the fly under WR semantics.
            self.ensure_wr_plan(st, key)?;
        }
        Ok(st.plans[key].clone())
    }

    /// `cudnnConvolutionForward` override: execute the planned micro-batch
    /// sequence. The `algo` argument is accepted for signature compatibility
    /// and ignored; workspace is supplied internally.
    ///
    /// # Errors
    /// Propagates substrate and optimization errors.
    #[allow(clippy::too_many_arguments)]
    pub fn convolution_forward(
        &self,
        alpha: f32,
        x_desc: &TensorDescriptor,
        x: &[f32],
        w_desc: &FilterDescriptor,
        w: &[f32],
        conv: &ConvolutionDescriptor,
        _algo: ConvAlgo,
        beta: f32,
        y_desc: &TensorDescriptor,
        y: &mut [f32],
    ) -> Result<(), UcudnnError> {
        let g = conv.geometry(x_desc, w_desc)?;
        if y_desc.shape() != g.output() {
            return Err(ucudnn_cudnn_sim::CudnnError::BadParam(format!(
                "output descriptor {} does not match computed {}",
                y_desc.shape(),
                g.output()
            ))
            .into());
        }
        let key = KernelKey::new(ConvOp::Forward, &g);
        let mut st = self.state.lock();
        let plan = self.plan_for(&mut st, &key)?;
        let (in_s, out_s) = (g.input.sample_len(), g.output().sample_len());
        let out_shape = g.output();
        let st = &mut *st;
        let ws = arena(st, &key, &plan);
        let mut lo = 0usize;
        for (i, m) in plan.config.micros.iter().enumerate() {
            let hi = lo + m.micro_batch;
            let mxd = desc(g.input.with_batch(m.micro_batch));
            let myd = desc(out_shape.with_batch(m.micro_batch));
            let _micro = micro_span(&key, i, m);
            self.with_exec_retries(|| {
                self.inner.convolution_forward(
                    alpha,
                    &mxd,
                    sub(x, lo, hi, in_s),
                    w_desc,
                    w,
                    conv,
                    m.algo,
                    ws,
                    beta,
                    &myd,
                    sub_mut(y, lo, hi, out_s),
                )
            })?;
            lo = hi;
        }
        debug_assert_eq!(lo, g.input.n, "configuration must tile the mini-batch");
        Ok(())
    }

    /// `cudnnConvolutionBackwardData` override.
    ///
    /// # Errors
    /// Propagates substrate and optimization errors.
    #[allow(clippy::too_many_arguments)]
    pub fn convolution_backward_data(
        &self,
        alpha: f32,
        w_desc: &FilterDescriptor,
        w: &[f32],
        dy_desc: &TensorDescriptor,
        dy: &[f32],
        conv: &ConvolutionDescriptor,
        _algo: ConvAlgo,
        beta: f32,
        dx_desc: &TensorDescriptor,
        dx: &mut [f32],
    ) -> Result<(), UcudnnError> {
        let g = conv.geometry(dx_desc, w_desc)?;
        if dy_desc.shape() != g.output() {
            return Err(ucudnn_cudnn_sim::CudnnError::BadParam(format!(
                "gradient descriptor {} does not match computed {}",
                dy_desc.shape(),
                g.output()
            ))
            .into());
        }
        let key = KernelKey::new(ConvOp::BackwardData, &g);
        let mut st = self.state.lock();
        let plan = self.plan_for(&mut st, &key)?;
        let (in_s, out_s) = (g.input.sample_len(), g.output().sample_len());
        let out_shape = g.output();
        let st = &mut *st;
        let ws = arena(st, &key, &plan);
        let mut lo = 0usize;
        for (i, m) in plan.config.micros.iter().enumerate() {
            let hi = lo + m.micro_batch;
            let mdyd = desc(out_shape.with_batch(m.micro_batch));
            let mdxd = desc(g.input.with_batch(m.micro_batch));
            let _micro = micro_span(&key, i, m);
            self.with_exec_retries(|| {
                self.inner.convolution_backward_data(
                    alpha,
                    w_desc,
                    w,
                    &mdyd,
                    sub(dy, lo, hi, out_s),
                    conv,
                    m.algo,
                    ws,
                    beta,
                    &mdxd,
                    sub_mut(dx, lo, hi, in_s),
                )
            })?;
            lo = hi;
        }
        debug_assert_eq!(lo, g.input.n);
        Ok(())
    }

    /// `cudnnConvolutionBackwardFilter` override. Micro-batches after the
    /// first accumulate with `beta = 1` (output scaling), which preserves
    /// the undivided gradient exactly up to floating-point reassociation —
    /// the paper's §II argument.
    ///
    /// # Errors
    /// Propagates substrate and optimization errors.
    #[allow(clippy::too_many_arguments)]
    pub fn convolution_backward_filter(
        &self,
        alpha: f32,
        x_desc: &TensorDescriptor,
        x: &[f32],
        dy_desc: &TensorDescriptor,
        dy: &[f32],
        conv: &ConvolutionDescriptor,
        _algo: ConvAlgo,
        beta: f32,
        dw_desc: &FilterDescriptor,
        dw: &mut [f32],
    ) -> Result<(), UcudnnError> {
        let g = conv.geometry(x_desc, dw_desc)?;
        if dy_desc.shape() != g.output() {
            return Err(ucudnn_cudnn_sim::CudnnError::BadParam(format!(
                "gradient descriptor {} does not match computed {}",
                dy_desc.shape(),
                g.output()
            ))
            .into());
        }
        let key = KernelKey::new(ConvOp::BackwardFilter, &g);
        let mut st = self.state.lock();
        let plan = self.plan_for(&mut st, &key)?;
        let (in_s, out_s) = (g.input.sample_len(), g.output().sample_len());
        let out_shape = g.output();
        let st = &mut *st;
        let ws = arena(st, &key, &plan);
        let mut lo = 0usize;
        for (i, m) in plan.config.micros.iter().enumerate() {
            let hi = lo + m.micro_batch;
            let mxd = desc(g.input.with_batch(m.micro_batch));
            let mdyd = desc(out_shape.with_batch(m.micro_batch));
            let micro_beta = if i == 0 { beta } else { 1.0 };
            let _micro = micro_span(&key, i, m);
            self.with_exec_retries(|| {
                self.inner.convolution_backward_filter(
                    alpha,
                    &mxd,
                    sub(x, lo, hi, in_s),
                    &mdyd,
                    sub(dy, lo, hi, out_s),
                    conv,
                    m.algo,
                    ws,
                    micro_beta,
                    dw_desc,
                    dw,
                )
            })?;
            lo = hi;
        }
        debug_assert_eq!(lo, g.input.n);
        Ok(())
    }

    /// The installed plan for a kernel, if any.
    pub fn plan(&self, op: ConvOp, g: &ucudnn_tensor::ConvGeometry) -> Option<Plan> {
        self.state.lock().plans.get(&KernelKey::new(op, g)).cloned()
    }

    /// Per-kernel workspace assignment: `(kernel, configuration, bytes)` —
    /// the data behind the paper's Fig. 12 and Fig. 14.
    pub fn memory_report(&self) -> Vec<(KernelKey, Configuration, usize)> {
        let st = self.state.lock();
        let mut v: Vec<_> = st
            .plans
            .iter()
            .map(|(k, p)| (*k, p.config.clone(), p.config.workspace_bytes()))
            .collect();
        v.sort_by_key(|(k, _, _)| format!("{k}"));
        v
    }

    /// Total workspace bytes the wrapper has allocated (Σ per-kernel arenas
    /// under WR; the single divided arena under WD).
    pub fn total_workspace_bytes(&self) -> usize {
        let st = self.state.lock();
        4 * (st.wd_arena.len() + st.arenas.values().map(Vec::len).sum::<usize>())
    }

    /// Wall time spent in optimization (benchmarks + DP + ILP).
    pub fn optimization_wall_us(&self) -> f64 {
        self.state.lock().opt_wall_us
    }

    /// The WD plan, once computed.
    pub fn wd_plan(&self) -> Option<WdPlan> {
        self.state.lock().wd_plan.clone()
    }

    /// Benchmark-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared optimization metrics collector.
    pub fn metrics(&self) -> &OptimizerMetrics {
        &self.metrics
    }

    /// The telemetry registry behind [`Self::metrics`], with the cache and
    /// fault-injection tallies freshly mirrored in. Scrape it standalone
    /// ([`crate::telemetry::Registry::expose`]) or compose it into a larger
    /// exposition (the serving stack embeds it under its `STATS` verb).
    pub fn telemetry(&self) -> crate::telemetry::Registry {
        self.metrics
            .set_total_us(self.state.lock().opt_wall_us as u64);
        self.metrics.sync_cache(
            &self.cache.stats(),
            &self.inner.exec_cache_stats(),
            self.inner.faults_injected(),
        );
        self.metrics.registry()
    }

    /// Full metrics report as JSON: per-phase timings, thread and kernel
    /// counts, cache traffic, per-kernel benchmark counts (aggregated over
    /// micro-batch sizes), execution-plan cache counters, and the
    /// robustness ledger (degradations, injected faults, retries, DB
    /// quarantine counts).
    pub fn metrics_json(&self) -> String {
        self.metrics
            .set_total_us(self.state.lock().opt_wall_us as u64);
        self.metrics.to_json(
            self.cache.stats(),
            &self.cache.benchmark_counts_by_kernel(),
            self.inner.faults_injected(),
            self.inner.exec_cache_stats(),
        )
    }

    /// Persist the benchmark cache to its file DB, if configured.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save_cache(&self) -> std::io::Result<()> {
        self.cache.save()
    }
}

/// Span around one micro-batch kernel replay (cat `exec`, name `micro`).
fn micro_span(key: &KernelKey, i: usize, m: &crate::config::MicroConfig) -> trace::SpanGuard {
    trace::span("exec", "micro", || {
        (
            format!("{key}#{i}"),
            crate::json::obj([
                ("algo", crate::json::Value::Str(m.algo.to_string())),
                ("micro_batch", crate::json::num(m.micro_batch as f64)),
                ("modeled_us", crate::json::num(m.time_us)),
            ]),
        )
    })
}

/// Workspace slice for a kernel: its private arena under WR, its segment of
/// the global arena under WD.
fn arena<'a>(st: &'a mut State, key: &KernelKey, plan: &Plan) -> &'a mut [f32] {
    if let Some(buf) = st.arenas.get_mut(key) {
        return buf.as_mut_slice();
    }
    let len = plan.config.workspace_bytes().div_ceil(4);
    &mut st.wd_arena[plan.offset_floats..plan.offset_floats + len]
}

fn desc(shape: Shape4) -> TensorDescriptor {
    TensorDescriptor::from_shape(shape).expect("micro shape is valid by construction")
}

/// Batch sub-slice that passes empty (simulated-engine) buffers through.
fn sub(data: &[f32], lo: usize, hi: usize, sample_len: usize) -> &[f32] {
    if data.is_empty() {
        data
    } else {
        &data[lo * sample_len..hi * sample_len]
    }
}

fn sub_mut(data: &mut [f32], lo: usize, hi: usize, sample_len: usize) -> &mut [f32] {
    if data.is_empty() {
        data
    } else {
        &mut data[lo * sample_len..hi * sample_len]
    }
}
