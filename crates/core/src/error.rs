//! Errors surfaced by the μ-cuDNN optimizer.

use ucudnn_cudnn_sim::CudnnError;

/// Errors from optimization or micro-batched execution.
#[derive(Debug, Clone, PartialEq)]
pub enum UcudnnError {
    /// A delegated cuDNN-style call failed.
    Cudnn(CudnnError),
    /// No configuration satisfies the workspace constraint.
    NoFeasibleConfiguration(String),
    /// The WD integer program is infeasible for the given total limit.
    WdInfeasible(String),
    /// A kernel was executed that was never registered or optimized and
    /// lazy optimization is disabled.
    UnknownKernel(String),
    /// Optimization could not even fall back to the undivided
    /// zero-workspace configuration — nothing runnable remains for the
    /// kernel. Recoverable degradations (dropped benchmark points, shrunk
    /// workspaces) are *not* errors; they are counted in the metrics.
    Degraded {
        /// The kernel that could not be planned.
        kernel: String,
        /// What was lost before the ladder ran out.
        lost: String,
    },
    /// An optimizer worker thread panicked and its kernels could not be
    /// recomputed sequentially.
    WorkerPanicked(String),
}

impl From<CudnnError> for UcudnnError {
    fn from(e: CudnnError) -> Self {
        UcudnnError::Cudnn(e)
    }
}

impl core::fmt::Display for UcudnnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UcudnnError::Cudnn(e) => write!(f, "substrate error: {e}"),
            UcudnnError::NoFeasibleConfiguration(m) => write!(f, "no feasible configuration: {m}"),
            UcudnnError::WdInfeasible(m) => write!(f, "WD ILP infeasible: {m}"),
            UcudnnError::UnknownKernel(m) => write!(f, "unknown kernel: {m}"),
            UcudnnError::Degraded { kernel, lost } => {
                write!(f, "kernel {kernel} degraded beyond recovery: {lost}")
            }
            UcudnnError::WorkerPanicked(m) => write!(f, "optimizer worker panicked: {m}"),
        }
    }
}

impl std::error::Error for UcudnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: UcudnnError = CudnnError::BadParam("x".into()).into();
        assert!(e.to_string().contains("substrate error"));
        assert!(UcudnnError::WdInfeasible("y".into())
            .to_string()
            .contains("infeasible"));
        assert!(UcudnnError::Degraded {
            kernel: "fwd[k]".into(),
            lost: "all algorithms failed".into()
        }
        .to_string()
        .contains("degraded beyond recovery"));
        assert!(UcudnnError::WorkerPanicked("boom".into())
            .to_string()
            .contains("panicked"));
    }
}
