//! Structured tracing: spans, events, plan provenance (DESIGN.md §10).
//!
//! The optimizer metrics (`metrics`) answer *how much* time went where in
//! aggregate; this module answers *what happened*: which algorithm each
//! kernel got and why, which degradation rungs fired, how long each
//! iteration/layer/micro-batch actually took. Emit sites across the
//! workspace record [`TraceEvent`]s into thread-local buffers that drain
//! into one shared bounded buffer; a [`TraceSession`] collects them into a
//! [`Trace`] renderable as JSONL or Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`).
//!
//! Tracing is **zero-cost when disabled**: every emit site is gated on one
//! relaxed atomic load, and the key/args builders are closures that only run
//! when a session is active.
//!
//! Sessions are configured programmatically ([`session`]) or from the
//! environment ([`session_from_env`], `UCUDNN_TRACE*` — see the table in
//! [`crate::env`]). The [`ClockMode::Logical`] mode replaces wall-clock
//! timestamps with a deterministic logical order at collection time, so a
//! trace of a deterministic optimization is byte-identical regardless of
//! thread count or machine speed — the property the determinism tests pin.

use crate::config::Configuration;
use crate::env::EnvError;
use crate::json::{self, Value};
use crate::kernel::KernelKey;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Serialization format of a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One event object per line (`Trace::to_jsonl`), the parseable default.
    Jsonl,
    /// Chrome trace-event JSON (`Trace::to_chrome_json`), for Perfetto.
    Chrome,
}

/// Timestamp source for collected events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Session-relative wall-clock microseconds.
    Wall,
    /// Deterministic logical time: at collection, events are stably sorted
    /// by `(cat, key, name)` and re-stamped `ts_us = 0, 1, 2, …` with
    /// `dur_us = 0` and `tid = 0`. Event *content* from a deterministic run
    /// is deterministic, so the serialized trace is byte-identical across
    /// thread counts and machines.
    Logical,
}

/// Default shared-buffer capacity, in events (`UCUDNN_TRACE_BUF`).
pub const DEFAULT_CAPACITY: usize = 65536;

/// Configuration of a [`TraceSession`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// File to write at session end (`UCUDNN_TRACE`); `None` keeps the
    /// trace in memory only.
    pub path: Option<PathBuf>,
    /// Serialization format for `path` (`UCUDNN_TRACE_FORMAT`).
    pub format: TraceFormat,
    /// Timestamp mode (`UCUDNN_TRACE_CLOCK`).
    pub clock: ClockMode,
    /// Shared-buffer capacity in events (`UCUDNN_TRACE_BUF`); overflow is
    /// dropped and counted in [`Trace::dropped`], never reallocated.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            path: None,
            format: TraceFormat::Jsonl,
            clock: ClockMode::Wall,
            capacity: DEFAULT_CAPACITY,
        }
    }
}

impl TraceConfig {
    /// Build a configuration from a key-lookup function (testable twin of
    /// [`TraceConfig::from_env`]). Returns `Ok(None)` when `UCUDNN_TRACE`
    /// is unset — tracing stays disabled.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<Option<Self>, EnvError> {
        let Some(path) = lookup("UCUDNN_TRACE") else {
            return Ok(None);
        };
        let mut cfg = Self {
            path: Some(PathBuf::from(path)),
            ..Self::default()
        };
        if let Some(v) = lookup("UCUDNN_TRACE_FORMAT") {
            cfg.format = match v.as_str() {
                "jsonl" => TraceFormat::Jsonl,
                "chrome" => TraceFormat::Chrome,
                _ => {
                    return Err(EnvError {
                        variable: "UCUDNN_TRACE_FORMAT",
                        value: v,
                    })
                }
            };
        }
        if let Some(v) = lookup("UCUDNN_TRACE_BUF") {
            cfg.capacity = v
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(EnvError {
                    variable: "UCUDNN_TRACE_BUF",
                    value: v,
                })?;
        }
        if let Some(v) = lookup("UCUDNN_TRACE_CLOCK") {
            cfg.clock = match v.as_str() {
                "wall" => ClockMode::Wall,
                "logical" => ClockMode::Logical,
                _ => {
                    return Err(EnvError {
                        variable: "UCUDNN_TRACE_CLOCK",
                        value: v,
                    })
                }
            };
        }
        Ok(Some(cfg))
    }

    /// Build a configuration from the process environment.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_env() -> Result<Option<Self>, EnvError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }
}

/// One collected span or instant event.
///
/// JSONL schema (one object per line): `ts_us`, `dur_us`, `cat`, `name`,
/// `key`, `tid`, `args`. Instant events have `dur_us = 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Start timestamp: session-relative microseconds ([`ClockMode::Wall`])
    /// or a logical sequence number ([`ClockMode::Logical`]).
    pub ts_us: f64,
    /// Wall duration in microseconds; 0 for instant events and in logical
    /// mode.
    pub dur_us: f64,
    /// Event category (`"plan"`, `"bench"`, `"substrate"`, `"exec"`,
    /// `"train"`, `"opt"`, …).
    pub cat: String,
    /// Event name within the category.
    pub name: String,
    /// The subject — a kernel key, layer name, iteration label.
    pub key: String,
    /// Recording thread (session-local numbering; 0 in logical mode).
    pub tid: u64,
    /// Structured payload. Emit sites must put only *deterministic* (modeled
    /// or counted) quantities here; wall-clock measurements belong in
    /// `ts_us`/`dur_us`, which logical mode normalizes away.
    pub args: Value,
}

impl TraceEvent {
    /// The JSONL representation of this event.
    pub fn to_json_value(&self) -> Value {
        json::obj([
            ("ts_us", json::num(self.ts_us)),
            ("dur_us", json::num(self.dur_us)),
            ("cat", Value::Str(self.cat.clone())),
            ("name", Value::Str(self.name.clone())),
            ("key", Value::Str(self.key.clone())),
            ("tid", json::num(self.tid as f64)),
            ("args", self.args.clone()),
        ])
    }

    /// Parse one JSONL object back into an event.
    pub fn from_json_value(v: &Value) -> Option<Self> {
        Some(Self {
            ts_us: v.get("ts_us")?.as_f64()?,
            dur_us: v.get("dur_us")?.as_f64()?,
            cat: v.get("cat")?.as_str()?.to_string(),
            name: v.get("name")?.as_str()?.to_string(),
            key: v.get("key")?.as_str()?.to_string(),
            tid: v.get("tid")?.as_u64()?,
            args: v.get("args")?.clone(),
        })
    }
}

/// A collected trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The events, ordered by timestamp (wall) or logical rank (logical).
    pub events: Vec<TraceEvent>,
    /// Events discarded because the shared buffer was full.
    pub dropped: u64,
}

impl Trace {
    /// Serialize as JSON Lines: one event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json_value().to_json());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL document written by [`Trace::to_jsonl`]. Blank lines
    /// are skipped; any malformed line fails the whole parse (`None`).
    pub fn from_jsonl(text: &str) -> Option<Self> {
        let mut events = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(TraceEvent::from_json_value(&Value::parse(line)?)?);
        }
        Some(Self { events, dropped: 0 })
    }

    /// Serialize as Chrome trace-event JSON (the `traceEvents` array of
    /// complete `"X"` events), loadable in Perfetto / `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                json::obj([
                    ("name", Value::Str(format!("{} {}", e.name, e.key))),
                    ("cat", Value::Str(e.cat.clone())),
                    ("ph", Value::Str("X".to_string())),
                    ("ts", json::num(e.ts_us)),
                    ("dur", json::num(e.dur_us)),
                    ("pid", json::num(1.0)),
                    ("tid", json::num(e.tid as f64)),
                    ("args", e.args.clone()),
                ])
            })
            .collect();
        json::obj([
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", Value::Str("ms".to_string())),
        ])
        .to_json()
    }
}

/// Why a kernel's plan looks the way it does: the decision record WR/WD
/// attach to every optimized kernel (one per [`crate::handle::Plan`] /
/// [`crate::wd::WdAssignment`]), also emitted as a `"plan"` trace event.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanProvenance {
    /// Which optimizer decided: `"wr"` or `"wd"`.
    pub optimizer: &'static str,
    /// Micro-batch sizes the policy put up for benchmarking.
    pub candidate_sizes: usize,
    /// Sizes that yielded at least one usable measurement (WR) / at least
    /// one Pareto point (WD).
    pub candidates_kept: usize,
    /// WD: configurations generated at the final DP stage before pruning.
    pub pareto_generated: usize,
    /// WD: desirable-set size after Pareto pruning (`pareto_generated −
    /// pareto_kept` points were pruned).
    pub pareto_kept: usize,
    /// WD: index the ILP chose within the desirable set (ascending
    /// workspace).
    pub ilp_choice: Option<usize>,
    /// WD: the index WR would have chosen — the fastest endpoint of the
    /// desirable set. Differs from `ilp_choice` when the global budget made
    /// the ILP pick a smaller configuration for this kernel.
    pub wr_choice: Option<usize>,
    /// Workspace bytes actually granted to the configuration.
    pub workspace_granted_bytes: usize,
    /// Degradation-ladder rungs taken, in order: `"dropped_bench_points"`,
    /// `"undivided_fallback"`, `"shrink_reoptimize:<bytes>"`,
    /// `"wd_shrink:<bytes>"`.
    pub degradations: Vec<String>,
}

impl PlanProvenance {
    /// The JSON representation embedded in `"plan"` trace events.
    pub fn to_json_value(&self) -> Value {
        let opt_num = |v: Option<usize>| v.map_or(Value::Null, |i| json::num(i as f64));
        json::obj([
            ("optimizer", Value::Str(self.optimizer.to_string())),
            ("candidate_sizes", json::num(self.candidate_sizes as f64)),
            ("candidates_kept", json::num(self.candidates_kept as f64)),
            ("pareto_generated", json::num(self.pareto_generated as f64)),
            ("pareto_kept", json::num(self.pareto_kept as f64)),
            ("ilp_choice", opt_num(self.ilp_choice)),
            ("wr_choice", opt_num(self.wr_choice)),
            (
                "workspace_granted_bytes",
                json::num(self.workspace_granted_bytes as f64),
            ),
            (
                "degradations",
                Value::Arr(
                    self.degradations
                        .iter()
                        .map(|d| Value::Str(d.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Recording machinery.

/// Events buffered per thread before draining into the shared buffer.
const FLUSH_CHUNK: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Serializes sessions process-wide: only one trace collects at a time.
static SESSION: Mutex<()> = Mutex::new(());
static COLLECTOR: Mutex<Option<Arc<Collector>>> = Mutex::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Process-wide monotonic epoch; event timestamps are made session-relative
/// at collection time.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

struct Collector {
    capacity: usize,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl Collector {
    /// Move a thread-local batch into the shared buffer, dropping (and
    /// counting) whatever exceeds the capacity.
    fn absorb(&self, batch: &mut Vec<TraceEvent>) {
        let mut shared = self.events.lock();
        let room = self.capacity.saturating_sub(shared.len());
        if batch.len() > room {
            self.dropped
                .fetch_add((batch.len() - room) as u64, Ordering::Relaxed);
            batch.truncate(room);
        }
        shared.append(batch);
    }
}

/// Thread-local recorder. Dropping it (thread exit) flushes the tail, so
/// scoped optimizer workers lose no events.
struct LocalBuf(Vec<TraceEvent>);

impl Drop for LocalBuf {
    fn drop(&mut self) {
        flush_local(&mut self.0);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const { RefCell::new(LocalBuf(Vec::new())) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn flush_local(buf: &mut Vec<TraceEvent>) {
    if buf.is_empty() {
        return;
    }
    let collector = COLLECTOR.lock().clone();
    match collector {
        Some(c) => c.absorb(buf),
        None => buf.clear(),
    }
}

fn record(event: TraceEvent) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.0.push(event);
        if l.0.len() >= FLUSH_CHUNK {
            flush_local(&mut l.0);
        }
    });
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// Whether a trace session is collecting. One relaxed atomic load — the
/// entire cost of every emit site in an untraced process.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record an instant event. `detail` builds the `(key, args)` pair and runs
/// only when tracing is enabled.
pub fn event(cat: &'static str, name: &'static str, detail: impl FnOnce() -> (String, Value)) {
    if !enabled() {
        return;
    }
    let (key, args) = detail();
    record(TraceEvent {
        ts_us: now_us(),
        dur_us: 0.0,
        cat: cat.to_string(),
        name: name.to_string(),
        key,
        tid: current_tid(),
        args,
    });
}

/// A live span; records its event (with wall duration) on drop. Obtained
/// from [`span`]; inert when tracing is disabled.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    cat: &'static str,
    name: &'static str,
    key: String,
    args: Value,
    start: Instant,
    start_us: f64,
}

/// Open a span. `detail` builds the `(key, args)` pair and runs only when
/// tracing is enabled; the returned guard records the event when dropped.
#[must_use = "a span measures until the guard is dropped"]
pub fn span(
    cat: &'static str,
    name: &'static str,
    detail: impl FnOnce() -> (String, Value),
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let (key, args) = detail();
    SpanGuard {
        inner: Some(SpanInner {
            cat,
            name,
            key,
            args,
            start: Instant::now(),
            start_us: now_us(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else { return };
        if !enabled() {
            // The session ended while the span was open; its start context
            // is gone, so the measurement is meaningless.
            return;
        }
        record(TraceEvent {
            ts_us: s.start_us,
            dur_us: s.start.elapsed().as_secs_f64() * 1e6,
            cat: s.cat.to_string(),
            name: s.name.to_string(),
            key: s.key,
            tid: current_tid(),
            args: s.args,
        });
    }
}

/// Emit the `"plan"` decision event for one optimized kernel.
pub(crate) fn plan_event(kernel: &KernelKey, config: &Configuration, prov: &PlanProvenance) {
    event("plan", "decision", || {
        (
            kernel.to_string(),
            json::obj([
                ("config", Value::Str(config.describe())),
                ("time_us", json::num(config.time_us())),
                (
                    "workspace_bytes",
                    json::num(config.workspace_bytes() as f64),
                ),
                ("provenance", prov.to_json_value()),
            ]),
        )
    });
}

// ---------------------------------------------------------------------------
// Sessions.

/// An active trace session (RAII). Created by [`session`] /
/// [`session_from_env`]; sessions are serialized process-wide. Dropping a
/// session without calling [`TraceSession::finish`] still collects and (if
/// configured) writes the trace.
pub struct TraceSession {
    config: TraceConfig,
    start_us: f64,
    collector: Arc<Collector>,
    finished: bool,
    _serial: parking_lot::MutexGuard<'static, ()>,
}

/// Start collecting a trace under `config`. Blocks until any other active
/// session finishes.
pub fn session(config: TraceConfig) -> TraceSession {
    let serial = SESSION.lock();
    let collector = Arc::new(Collector {
        capacity: config.capacity.max(1),
        events: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    });
    *COLLECTOR.lock() = Some(Arc::clone(&collector));
    // Bridge substrate find/exec hooks into trace events. Args carry only
    // modeled quantities, keeping logical-mode traces deterministic.
    ucudnn_cudnn_sim::set_call_observer(Some(Arc::new(
        |e: &ucudnn_cudnn_sim::CallEvent| match e.site {
            ucudnn_cudnn_sim::CallSite::Find => event("substrate", "find", || {
                (
                    format!("{}[{}]", e.op, e.geometry),
                    json::obj([
                        ("micro_batch", json::num(e.micro_batch as f64)),
                        ("rows", json::num(e.rows as f64)),
                    ]),
                )
            }),
            ucudnn_cudnn_sim::CallSite::Exec => event("substrate", "exec", || {
                (
                    format!("{}[{}]", e.op, e.geometry),
                    json::obj([
                        (
                            "algo",
                            e.algo.map_or(Value::Null, |a| Value::Str(a.to_string())),
                        ),
                        ("micro_batch", json::num(e.micro_batch as f64)),
                        ("modeled_us", json::num(e.modeled_us)),
                    ]),
                )
            }),
        },
    )));
    let start_us = now_us();
    ENABLED.store(true, Ordering::SeqCst);
    TraceSession {
        config,
        start_us,
        collector,
        finished: false,
        _serial: serial,
    }
}

/// Start a session from `UCUDNN_TRACE*`, or `Ok(None)` when tracing is not
/// requested.
///
/// # Errors
/// [`EnvError`] naming the malformed variable.
pub fn session_from_env() -> Result<Option<TraceSession>, EnvError> {
    Ok(TraceConfig::from_env()?.map(session))
}

impl TraceSession {
    /// Stop collecting and return the trace (also written to the configured
    /// path, best-effort).
    pub fn finish(mut self) -> Trace {
        self.close()
    }

    fn close(&mut self) -> Trace {
        self.finished = true;
        ENABLED.store(false, Ordering::SeqCst);
        ucudnn_cudnn_sim::set_call_observer(None);
        // Drain this thread's recorder; worker threads flushed at exit.
        LOCAL.with(|l| flush_local(&mut l.borrow_mut().0));
        *COLLECTOR.lock() = None;
        let mut events = std::mem::take(&mut *self.collector.events.lock());
        let dropped = self.collector.dropped.load(Ordering::Relaxed);
        match self.config.clock {
            ClockMode::Wall => {
                for e in &mut events {
                    e.ts_us -= self.start_us;
                }
                events.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
            }
            ClockMode::Logical => {
                // Stable sort: events with equal (cat, key, name) keep their
                // single-thread program order from the drain.
                events.sort_by(|a, b| {
                    (a.cat.as_str(), a.key.as_str(), a.name.as_str()).cmp(&(
                        b.cat.as_str(),
                        b.key.as_str(),
                        b.name.as_str(),
                    ))
                });
                for (i, e) in events.iter_mut().enumerate() {
                    e.ts_us = i as f64;
                    e.dur_us = 0.0;
                    e.tid = 0;
                }
            }
        }
        let trace = Trace { events, dropped };
        if let Some(path) = &self.config.path {
            let text = match self.config.format {
                TraceFormat::Jsonl => trace.to_jsonl(),
                TraceFormat::Chrome => trace.to_chrome_json(),
            };
            // Best-effort: a trace that cannot be written must not fail the
            // traced computation.
            let _ = std::fs::write(path, text);
        }
        trace
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.to_string())
        }
    }

    // Other core tests run concurrently in this process and may emit events
    // while one of these sessions is active, so every assertion filters on
    // a category/key marker unique to this module.
    fn mine<'t>(t: &'t Trace, name: &str) -> Vec<&'t TraceEvent> {
        t.events
            .iter()
            .filter(|e| e.cat == "trace-test" && e.name == name)
            .collect()
    }

    #[test]
    fn disabled_tracing_never_builds_details() {
        // No session active on this thread (sessions serialize, but another
        // test's session could be live), so gate on the flag itself.
        if !enabled() {
            event("trace-test", "never", || {
                unreachable!("detail builder must not run while disabled")
            });
        }
        let g = span("trace-test", "never", || (String::new(), Value::Null));
        drop(g); // inert guard when built while disabled
    }

    #[test]
    fn config_from_lookup_parses_and_rejects() {
        assert!(TraceConfig::from_lookup(|_| None).unwrap().is_none());
        let cfg = TraceConfig::from_lookup(lookup(&[
            ("UCUDNN_TRACE", "/tmp/t.jsonl"),
            ("UCUDNN_TRACE_FORMAT", "chrome"),
            ("UCUDNN_TRACE_BUF", "128"),
            ("UCUDNN_TRACE_CLOCK", "logical"),
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(cfg.format, TraceFormat::Chrome);
        assert_eq!(cfg.capacity, 128);
        assert_eq!(cfg.clock, ClockMode::Logical);
        assert_eq!(
            cfg.path.as_deref().unwrap().to_str().unwrap(),
            "/tmp/t.jsonl"
        );
        for (k, v) in [
            ("UCUDNN_TRACE_FORMAT", "xml"),
            ("UCUDNN_TRACE_BUF", "0"),
            ("UCUDNN_TRACE_BUF", "lots"),
            ("UCUDNN_TRACE_CLOCK", "sundial"),
        ] {
            let e = TraceConfig::from_lookup(lookup(&[("UCUDNN_TRACE", "t"), (k, v)])).unwrap_err();
            assert_eq!(e.variable, k);
        }
    }

    #[test]
    fn events_and_spans_are_collected() {
        let s = session(TraceConfig::default());
        event("trace-test", "e", || {
            ("k1".into(), json::obj([("x", json::num(1.0))]))
        });
        {
            let _g = span("trace-test", "s", || ("k2".into(), Value::Null));
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let t = s.finish();
        let es = mine(&t, "e");
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].key, "k1");
        assert_eq!(es[0].args.get("x").unwrap().as_f64(), Some(1.0));
        assert_eq!(es[0].dur_us, 0.0);
        let ss = mine(&t, "s");
        assert_eq!(ss.len(), 1);
        assert!(ss[0].dur_us > 0.0, "span must measure a wall duration");
    }

    #[test]
    fn worker_thread_events_drain_at_thread_exit() {
        let s = session(TraceConfig::default());
        std::thread::scope(|scope| {
            for i in 0..4 {
                scope.spawn(move || {
                    event("trace-test", "w", || (format!("worker{i}"), Value::Null));
                });
            }
        });
        let t = s.finish();
        assert_eq!(mine(&t, "w").len(), 4);
    }

    #[test]
    fn bounded_buffer_drops_and_counts_overflow() {
        let s = session(TraceConfig {
            capacity: 10,
            ..TraceConfig::default()
        });
        for i in 0..500 {
            event("trace-test", "flood", || (format!("{i}"), Value::Null));
        }
        let t = s.finish();
        assert!(t.events.len() <= 10);
        assert!(t.dropped >= 490, "dropped {}", t.dropped);
    }

    #[test]
    fn logical_clock_normalizes_order_and_stamps() {
        let run = || {
            let s = session(TraceConfig {
                clock: ClockMode::Logical,
                ..TraceConfig::default()
            });
            // Emit from several threads in schedule-dependent order.
            std::thread::scope(|scope| {
                for i in 0..4 {
                    scope.spawn(move || {
                        event("trace-test", "l", || (format!("k{i}"), json::num(i as f64)));
                    });
                }
            });
            let t = s.finish();
            mine(&t, "l")
                .into_iter()
                .cloned()
                .collect::<Vec<TraceEvent>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "logical traces must be schedule-independent");
        let keys: Vec<&str> = a.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["k0", "k1", "k2", "k3"]);
        for e in &a {
            assert_eq!(e.dur_us, 0.0);
            assert_eq!(e.tid, 0);
        }
        // ts values are the global logical rank: strictly increasing.
        assert!(a.windows(2).all(|w| w[0].ts_us < w[1].ts_us));
    }

    #[test]
    fn jsonl_round_trips_and_chrome_is_valid_json() {
        let s = session(TraceConfig {
            clock: ClockMode::Logical,
            ..TraceConfig::default()
        });
        event("trace-test", "r", || {
            (
                "kernel[x]".into(),
                json::obj([("algo", Value::Str("FFT".into())), ("n", json::num(8.0))]),
            )
        });
        let t = s.finish();
        let parsed = Trace::from_jsonl(&t.to_jsonl()).expect("jsonl must re-parse");
        assert_eq!(parsed.events, t.events);
        let chrome = Value::parse(&t.to_chrome_json()).expect("chrome export must be JSON");
        let events = chrome.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), t.events.len());
        for e in events {
            for k in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
                assert!(e.get(k).is_some(), "chrome event missing {k}");
            }
        }
    }

    #[test]
    fn session_writes_configured_file() {
        let dir = std::env::temp_dir().join(format!("ucudnn-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let s = session(TraceConfig {
            path: Some(path.clone()),
            clock: ClockMode::Logical,
            ..TraceConfig::default()
        });
        event("trace-test", "f", || ("k".into(), Value::Null));
        let t = s.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, t.to_jsonl());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn provenance_serializes_every_field() {
        let p = PlanProvenance {
            optimizer: "wd",
            candidate_sizes: 9,
            candidates_kept: 8,
            pareto_generated: 40,
            pareto_kept: 6,
            ilp_choice: Some(2),
            wr_choice: Some(5),
            workspace_granted_bytes: 1024,
            degradations: vec!["dropped_bench_points".into()],
        };
        let v = p.to_json_value();
        assert_eq!(v.get("optimizer").unwrap().as_str(), Some("wd"));
        assert_eq!(v.get("candidate_sizes").unwrap().as_usize(), Some(9));
        assert_eq!(v.get("pareto_generated").unwrap().as_usize(), Some(40));
        assert_eq!(v.get("pareto_kept").unwrap().as_usize(), Some(6));
        assert_eq!(v.get("ilp_choice").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("wr_choice").unwrap().as_usize(), Some(5));
        assert_eq!(
            v.get("workspace_granted_bytes").unwrap().as_usize(),
            Some(1024)
        );
        assert_eq!(v.get("degradations").unwrap().as_arr().unwrap().len(), 1);
        // The default record is serializable too (None → null).
        assert_eq!(
            PlanProvenance::default().to_json_value().get("ilp_choice"),
            Some(&Value::Null)
        );
    }
}
