//! The unified telemetry plane: one registry of typed instruments behind
//! every metric the library and the serving stack export.
//!
//! Before this module each subsystem kept its own ad-hoc counters
//! (`metrics.rs` atomics, `ServeMetrics` atomics, cache stats structs) and
//! the only export was a one-shot JSON dump. A [`Registry`] is the single
//! source of truth instead: producers hold cheap atomic instrument handles
//! ([`Counter`], [`Gauge`], [`Histogram`]), and every consumer — the
//! Prometheus-style text [`Registry::expose`], the serving `STATS` verb,
//! `--metrics-dump`, the JSON reports — renders the same instruments.
//!
//! Design rules:
//!
//! * **Zero external deps, lock-free hot path.** Counters are one
//!   `fetch_add`; gauges one `store` of f64 bits; histograms one short
//!   mutex-protected bucket increment (same cost as the framework's
//!   streaming histogram).
//! * **Bounded label cardinality.** A labeled family is created with a
//!   fixed vocabulary; values outside it are rejected and counted by the
//!   `ucudnn_telemetry_dropped_total` self-metric, so a hostile request
//!   string can never mint unbounded series.
//! * **History survives between scrapes.** Each series keeps a fixed-size
//!   ring of timestamped window snapshots ([`Registry::snapshot`],
//!   capacity `UCUDNN_TELEMETRY_RING`): a scrape that comes late still sees
//!   the shape of the interval it missed.
//! * **Deterministic.** Timestamps are always passed in by the caller
//!   (virtual-clock sims pass virtual time), never read from a wall clock,
//!   so expositions are byte-reproducible under the deterministic sims.
//!
//! The log-bucket geometry (`HIST_LO_US`/`HIST_FACTOR`/`HIST_BUCKETS`) is
//! defined here and reused by `ucudnn_framework::StreamingHistogram`, so
//! quantiles agree across the training and serving planes.

use crate::env::EnvError;
use crate::json::{self, Value};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Shared log-bucket geometry (one source of truth for all histograms).

/// Smallest representable observation, microseconds. Anything at or below
/// lands in bucket 0.
pub const HIST_LO_US: f64 = 0.01;
/// Geometric bucket growth factor; bounds the relative quantile error
/// (~5% per bucket).
pub const HIST_FACTOR: f64 = 1.05;
/// Bucket count: covers `HIST_LO_US * HIST_FACTOR^HIST_BUCKETS` ≈ 7e8 µs
/// (~12 minutes), far beyond any latency measured here.
pub const HIST_BUCKETS: usize = 512;

/// The bucket an observation lands in (clamped to the last bucket).
pub fn bucket_index(us: f64) -> usize {
    if us <= HIST_LO_US {
        0
    } else {
        (((us / HIST_LO_US).ln() / HIST_FACTOR.ln()).ceil() as usize).min(HIST_BUCKETS - 1)
    }
}

/// The representative (upper-edge) value of bucket `idx`, microseconds.
pub fn bucket_upper(idx: usize) -> f64 {
    HIST_LO_US * HIST_FACTOR.powi(idx as i32)
}

// ---------------------------------------------------------------------------
// Ring capacity configuration.

/// Default per-series ring capacity (window snapshots kept between scrapes).
pub const DEFAULT_RING: usize = 8;

/// Parse `UCUDNN_TELEMETRY_RING` from a key-lookup function (testable twin
/// of [`ring_from_env`]). Unset keeps [`DEFAULT_RING`]; malformed values
/// are errors, not silent fallbacks.
///
/// # Errors
/// [`EnvError`] naming the malformed variable.
pub fn ring_from_lookup(
    lookup: impl Fn(&str) -> Option<String>,
) -> core::result::Result<usize, EnvError> {
    match lookup("UCUDNN_TELEMETRY_RING") {
        None => Ok(DEFAULT_RING),
        Some(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or(EnvError {
                variable: "UCUDNN_TELEMETRY_RING",
                value: v,
            }),
    }
}

/// Ring capacity from the process environment.
///
/// # Errors
/// [`EnvError`] naming the malformed variable.
pub fn ring_from_env() -> core::result::Result<usize, EnvError> {
    ring_from_lookup(|k| std::env::var(k).ok())
}

// ---------------------------------------------------------------------------
// Instrument kinds and internals.

/// The exposition type of an instrument family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone event count (`# TYPE … counter`).
    Counter,
    /// Point-in-time value (`# TYPE … gauge`).
    Gauge,
    /// Log-bucket latency distribution, exposed as a quantile summary
    /// (`# TYPE … summary`).
    Histogram,
}

impl Kind {
    fn prom(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "summary",
        }
    }
}

/// One timestamped window snapshot in a series' ring buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSnapshot {
    /// Caller-supplied timestamp of the snapshot, microseconds.
    pub ts_us: f64,
    /// Counter/gauge: the cumulative value at `ts_us`. Histogram: the p50
    /// of the observations since the previous snapshot (0 when none).
    pub value: f64,
    /// Histogram: observations in the window. Counters/gauges: 0.
    pub count: u64,
}

#[derive(Debug)]
struct HistState {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
    w_counts: Vec<u64>,
    w_total: u64,
    w_sum: f64,
    w_min: f64,
    w_max: f64,
    /// Last request-correlated observation: `(request id, value µs)`.
    exemplar: Option<(u64, f64)>,
}

impl HistState {
    fn new() -> Self {
        Self {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            w_counts: vec![0; HIST_BUCKETS],
            w_total: 0,
            w_sum: 0.0,
            w_min: f64::INFINITY,
            w_max: f64::NEG_INFINITY,
            exemplar: None,
        }
    }

    fn record(&mut self, us: f64) {
        if !us.is_finite() {
            return;
        }
        let idx = bucket_index(us);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += us;
        self.min = self.min.min(us);
        self.max = self.max.max(us);
        self.w_counts[idx] += 1;
        self.w_total += 1;
        self.w_sum += us;
        self.w_min = self.w_min.min(us);
        self.w_max = self.w_max.max(us);
    }

    fn quantile_of(counts: &[u64], total: u64, min: f64, max: f64, q: f64) -> Option<f64> {
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(idx).clamp(min, max));
            }
        }
        Some(max)
    }

    fn try_quantile(&self, q: f64) -> Option<f64> {
        Self::quantile_of(&self.counts, self.total, self.min, self.max, q)
    }

    fn take_window(&mut self) -> HistStats {
        let q = |p| Self::quantile_of(&self.w_counts, self.w_total, self.w_min, self.w_max, p);
        let stats = HistStats {
            count: self.w_total,
            sum: self.w_sum,
            p50_us: q(0.50),
            p95_us: q(0.95),
            p99_us: q(0.99),
        };
        self.w_counts.iter_mut().for_each(|c| *c = 0);
        self.w_total = 0;
        self.w_sum = 0.0;
        self.w_min = f64::INFINITY;
        self.w_max = f64::NEG_INFINITY;
        stats
    }
}

/// Summary of one histogram window (or of the cumulative state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStats {
    /// Observations covered.
    pub count: u64,
    /// Sum of observations, microseconds.
    pub sum: f64,
    /// Median, or `None` when empty (no fake 0µs tails).
    pub p50_us: Option<f64>,
    /// 95th percentile, or `None` when empty.
    pub p95_us: Option<f64>,
    /// 99th percentile, or `None` when empty.
    pub p99_us: Option<f64>,
}

impl HistStats {
    /// Mean of the covered observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug)]
struct SeriesInner {
    /// Label value of this series (`None` for unlabeled families).
    label: Option<String>,
    /// Counter: integer count. Gauge: f64 bits.
    value: AtomicU64,
    hist: Option<Mutex<HistState>>,
    ring: Mutex<VecDeque<WindowSnapshot>>,
}

impl SeriesInner {
    fn new(label: Option<String>, kind: Kind) -> Self {
        Self {
            label,
            value: AtomicU64::new(0),
            hist: (kind == Kind::Histogram).then(|| Mutex::new(HistState::new())),
            ring: Mutex::new(VecDeque::new()),
        }
    }
}

#[derive(Debug)]
struct FamilyInner {
    name: String,
    help: String,
    kind: Kind,
    label_key: Option<String>,
    /// All series, fixed at creation (one per vocabulary entry); never
    /// grows, which is what bounds the cardinality.
    series: Vec<Arc<SeriesInner>>,
}

// ---------------------------------------------------------------------------
// Instrument handles.

/// A monotone event counter. Cloneable handle; all clones share the count.
#[derive(Debug, Clone)]
pub struct Counter {
    series: Arc<SeriesInner>,
}

impl Counter {
    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    pub fn add(&self, n: u64) {
        self.series.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.series.value.load(Ordering::Relaxed)
    }

    /// Overwrite the count. For absolute syncs from an external tally
    /// (cache stats structs) and for `reset()`-style re-runs — the counter
    /// is still exposed as monotone, exactly like a process restart.
    pub fn set(&self, v: u64) {
        self.series.value.store(v, Ordering::Relaxed);
    }
}

/// A point-in-time value (f64). Cloneable handle; clones share the value.
#[derive(Debug, Clone)]
pub struct Gauge {
    series: Arc<SeriesInner>,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.series.value.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if above the current value (high-water mark).
    pub fn set_max(&self, v: f64) {
        let _ = self
            .series
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.series.value.load(Ordering::Relaxed))
    }
}

/// A log-bucketed latency histogram (geometry shared with
/// `ucudnn_framework::StreamingHistogram`), exposed as a quantile summary.
/// Keeps a cumulative view plus a window since the last snapshot, and the
/// last request-correlated exemplar.
#[derive(Debug, Clone)]
pub struct Histogram {
    series: Arc<SeriesInner>,
}

impl Histogram {
    fn state(&self) -> &Mutex<HistState> {
        self.series.hist.as_ref().expect("histogram series")
    }

    /// Record one observation, microseconds. Non-finite values are ignored.
    pub fn record(&self, us: f64) {
        self.state().lock().record(us);
    }

    /// Record one observation correlated with a request id; the id/value
    /// pair is kept as the series' exemplar (last one wins) and rendered
    /// into the exposition.
    pub fn record_with_exemplar(&self, us: f64, request_id: u64) {
        let mut h = self.state().lock();
        h.record(us);
        if us.is_finite() {
            h.exemplar = Some((request_id, us));
        }
    }

    /// Observations recorded since creation.
    pub fn count(&self) -> u64 {
        self.state().lock().total
    }

    /// Mean over the cumulative view; 0 when empty.
    pub fn mean(&self) -> f64 {
        let h = self.state().lock();
        if h.total == 0 {
            0.0
        } else {
            h.sum / h.total as f64
        }
    }

    /// Cumulative q-quantile, or `None` when nothing has been recorded.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        self.state().lock().try_quantile(q)
    }

    /// Cumulative p50/p95/p99 bundle (quantiles `None` when empty).
    pub fn cumulative(&self) -> HistStats {
        let h = self.state().lock();
        HistStats {
            count: h.total,
            sum: h.sum,
            p50_us: h.try_quantile(0.50),
            p95_us: h.try_quantile(0.95),
            p99_us: h.try_quantile(0.99),
        }
    }

    /// Observations since the last window consumer.
    pub fn window_count(&self) -> u64 {
        self.state().lock().w_total
    }

    /// Detach and reset the window, returning its summary. Window consumers
    /// compose: the serving JSON snapshot and the ring snapshot each see
    /// the observations that landed since whichever consumer ran last.
    pub fn take_window(&self) -> HistStats {
        self.state().lock().take_window()
    }

    /// The last request-correlated observation, if any.
    pub fn exemplar(&self) -> Option<(u64, f64)> {
        self.state().lock().exemplar
    }
}

/// A labeled counter family with a fixed vocabulary.
#[derive(Debug, Clone)]
pub struct CounterVec {
    family: Arc<FamilyInner>,
    registry: Registry,
}

impl CounterVec {
    /// The counter for `label`, or `None` (counted by the
    /// `telemetry_dropped` self-metric) when `label` is outside the
    /// family's vocabulary.
    pub fn with(&self, label: &str) -> Option<Counter> {
        match self
            .family
            .series
            .iter()
            .find(|s| s.label.as_deref() == Some(label))
        {
            Some(s) => Some(Counter {
                series: Arc::clone(s),
            }),
            None => {
                self.registry.inner.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

/// A labeled gauge family with a fixed vocabulary.
#[derive(Debug, Clone)]
pub struct GaugeVec {
    family: Arc<FamilyInner>,
    registry: Registry,
}

impl GaugeVec {
    /// The gauge for `label`, or `None` (counted) outside the vocabulary.
    pub fn with(&self, label: &str) -> Option<Gauge> {
        match self
            .family
            .series
            .iter()
            .find(|s| s.label.as_deref() == Some(label))
        {
            Some(s) => Some(Gauge {
                series: Arc::clone(s),
            }),
            None => {
                self.registry.inner.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The registry.

#[derive(Debug)]
struct RegistryInner {
    families: Mutex<Vec<Arc<FamilyInner>>>,
    /// The `ucudnn_telemetry_dropped_total` self-metric: label values
    /// rejected for being outside a family's vocabulary.
    dropped: AtomicU64,
    ring_cap: usize,
}

/// An insertion-ordered registry of instrument families. Cloning shares
/// the underlying registry (cheap `Arc` clone).
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with the default ring capacity ([`DEFAULT_RING`]).
    pub fn new() -> Self {
        Self::with_ring(DEFAULT_RING)
    }

    /// A registry whose series keep `ring_cap` window snapshots
    /// (`UCUDNN_TELEMETRY_RING`; parse with [`ring_from_env`]).
    pub fn with_ring(ring_cap: usize) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                families: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                ring_cap: ring_cap.max(1),
            }),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        label_key: Option<&str>,
        vocab: &[&str],
    ) -> Arc<FamilyInner> {
        let mut fams = self.inner.families.lock();
        if let Some(f) = fams.iter().find(|f| f.name == name) {
            assert!(
                f.kind == kind && f.label_key.as_deref() == label_key,
                "telemetry family {name:?} re-registered with a different shape"
            );
            return Arc::clone(f);
        }
        let series = if label_key.is_some() {
            vocab
                .iter()
                .map(|v| Arc::new(SeriesInner::new(Some((*v).to_string()), kind)))
                .collect()
        } else {
            vec![Arc::new(SeriesInner::new(None, kind))]
        };
        let fam = Arc::new(FamilyInner {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            label_key: label_key.map(str::to_string),
            series,
        });
        fams.push(Arc::clone(&fam));
        fam
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let fam = self.register(name, help, Kind::Counter, None, &[]);
        Counter {
            series: Arc::clone(&fam.series[0]),
        }
    }

    /// Register (or fetch) a counter family labeled by `label_key`, with
    /// the fixed vocabulary `vocab` (the cardinality bound).
    pub fn counter_vec(
        &self,
        name: &str,
        help: &str,
        label_key: &str,
        vocab: &[&str],
    ) -> CounterVec {
        let fam = self.register(name, help, Kind::Counter, Some(label_key), vocab);
        CounterVec {
            family: fam,
            registry: self.clone(),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let fam = self.register(name, help, Kind::Gauge, None, &[]);
        Gauge {
            series: Arc::clone(&fam.series[0]),
        }
    }

    /// Register (or fetch) a gauge family labeled by `label_key` with a
    /// fixed vocabulary.
    pub fn gauge_vec(&self, name: &str, help: &str, label_key: &str, vocab: &[&str]) -> GaugeVec {
        let fam = self.register(name, help, Kind::Gauge, Some(label_key), vocab);
        GaugeVec {
            family: fam,
            registry: self.clone(),
        }
    }

    /// Register (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let fam = self.register(name, help, Kind::Histogram, None, &[]);
        Histogram {
            series: Arc::clone(&fam.series[0]),
        }
    }

    /// Label values rejected so far (the `telemetry_dropped` self-metric).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Push one timestamped window snapshot into every series' ring,
    /// evicting the oldest beyond the ring capacity. Histograms consume
    /// their window; counters and gauges snapshot their current value.
    pub fn snapshot(&self, ts_us: f64) {
        let fams: Vec<Arc<FamilyInner>> = self.inner.families.lock().clone();
        for fam in fams {
            for s in &fam.series {
                let snap = match &s.hist {
                    Some(h) => {
                        let w = h.lock().take_window();
                        WindowSnapshot {
                            ts_us,
                            value: w.p50_us.unwrap_or(0.0),
                            count: w.count,
                        }
                    }
                    None => WindowSnapshot {
                        ts_us,
                        value: match fam.kind {
                            Kind::Gauge => f64::from_bits(s.value.load(Ordering::Relaxed)),
                            _ => s.value.load(Ordering::Relaxed) as f64,
                        },
                        count: 0,
                    },
                };
                let mut ring = s.ring.lock();
                ring.push_back(snap);
                while ring.len() > self.inner.ring_cap {
                    ring.pop_front();
                }
            }
        }
    }

    /// The ring contents of one series (`label: None` for unlabeled
    /// families), oldest first. `None` when the series does not exist.
    pub fn ring(&self, name: &str, label: Option<&str>) -> Option<Vec<WindowSnapshot>> {
        let fams = self.inner.families.lock();
        let fam = fams.iter().find(|f| f.name == name)?;
        let s = fam.series.iter().find(|s| s.label.as_deref() == label)?;
        let snaps = s.ring.lock().iter().copied().collect();
        Some(snaps)
    }

    /// Render every family into `out` in Prometheus text format (`# HELP`,
    /// `# TYPE`, escaped labels; histograms as quantile summaries with
    /// `# EXEMPLAR` comment lines). Emits no terminator, so multiple
    /// registries compose into one scrape; the caller appends the
    /// `telemetry_dropped` self-metric and `# EOF`.
    pub fn expose_into(&self, out: &mut String) {
        let fams: Vec<Arc<FamilyInner>> = self.inner.families.lock().clone();
        for fam in fams {
            out.push_str(&format!("# HELP {} {}\n", fam.name, escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.prom()));
            for s in &fam.series {
                let label = |extra: Option<(&str, String)>| -> String {
                    let mut parts = Vec::new();
                    if let (Some(k), Some(v)) = (&fam.label_key, &s.label) {
                        parts.push(format!("{k}=\"{}\"", escape_label(v)));
                    }
                    if let Some((k, v)) = extra {
                        parts.push(format!("{k}=\"{}\"", escape_label(&v)));
                    }
                    if parts.is_empty() {
                        String::new()
                    } else {
                        format!("{{{}}}", parts.join(","))
                    }
                };
                match &s.hist {
                    None => {
                        let v = match fam.kind {
                            Kind::Gauge => f64::from_bits(s.value.load(Ordering::Relaxed)),
                            _ => s.value.load(Ordering::Relaxed) as f64,
                        };
                        out.push_str(&format!("{}{} {}\n", fam.name, label(None), fmt_num(v)));
                    }
                    Some(h) => {
                        let h = h.lock();
                        for (q, qs) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                            if let Some(v) = h.try_quantile(q) {
                                out.push_str(&format!(
                                    "{}{} {}\n",
                                    fam.name,
                                    label(Some(("quantile", qs.to_string()))),
                                    fmt_num(v)
                                ));
                            }
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            fam.name,
                            label(None),
                            fmt_num(h.sum)
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            fam.name,
                            label(None),
                            fmt_num(h.total as f64)
                        ));
                        if let Some((id, us)) = h.exemplar {
                            out.push_str(&format!(
                                "# EXEMPLAR {} request_id=\"{id}\" value={}\n",
                                fam.name,
                                fmt_num(us)
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Render the `telemetry_dropped` self-metric line(s) for a combined
    /// drop count (callers merging several registries sum their drops).
    pub fn expose_dropped_into(out: &mut String, dropped: u64) {
        out.push_str("# HELP ucudnn_telemetry_dropped_total Label values rejected for exceeding a family's fixed vocabulary.\n");
        out.push_str("# TYPE ucudnn_telemetry_dropped_total counter\n");
        out.push_str(&format!("ucudnn_telemetry_dropped_total {dropped}\n"));
    }

    /// A complete standalone scrape of this registry: families, the
    /// self-metric, and the `# EOF` terminator.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        self.expose_into(&mut out);
        Self::expose_dropped_into(&mut out, self.dropped());
        out.push_str("# EOF\n");
        out
    }

    /// The ring history of every series as a JSON document (the offline
    /// companion of the exposition, written by `--metrics-dump`).
    pub fn history_json(&self) -> Value {
        let fams: Vec<Arc<FamilyInner>> = self.inner.families.lock().clone();
        let mut rows = Vec::new();
        for fam in fams {
            for s in &fam.series {
                let snaps: Vec<Value> = s
                    .ring
                    .lock()
                    .iter()
                    .map(|w| {
                        json::obj([
                            ("ts_us", json::num(w.ts_us)),
                            ("value", json::num(w.value)),
                            ("count", json::num(w.count as f64)),
                        ])
                    })
                    .collect();
                rows.push(json::obj([
                    ("name", Value::Str(fam.name.clone())),
                    (
                        "label",
                        s.label
                            .as_ref()
                            .map_or(Value::Null, |l| Value::Str(l.clone())),
                    ),
                    ("snapshots", Value::Arr(snaps)),
                ]));
            }
        }
        json::obj([
            ("ring_capacity", json::num(self.inner.ring_cap as f64)),
            ("series", Value::Arr(rows)),
        ])
    }
}

/// Prometheus number formatting via the JSON writer: whole numbers print
/// as integers, everything else shortest-round-trip.
fn fmt_num(v: f64) -> String {
    json::num(v).to_json()
}

/// Escape a label value per the Prometheus text format: backslash, double
/// quote, and newline.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a HELP string: backslash and newline.
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_matches_the_streaming_histogram() {
        // The framework's histogram reuses these; pin the geometry.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(HIST_LO_US), 0);
        assert_eq!(bucket_index(f64::MAX), HIST_BUCKETS - 1);
        for idx in [1usize, 17, 255, HIST_BUCKETS - 1] {
            let upper = bucket_upper(idx);
            assert_eq!(bucket_index(upper * 0.999), idx, "idx {idx}");
        }
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "test counter");
        let g = reg.gauge("t_gauge", "test gauge");
        let h = reg.histogram("t_hist", "test histogram");
        const THREADS: usize = 8;
        const PER: usize = 2_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (c, g, h) = (c.clone(), g.clone(), h.clone());
                s.spawn(move || {
                    for i in 0..PER {
                        c.inc();
                        g.set_max((t * PER + i) as f64);
                        h.record(100.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), (THREADS * PER) as u64);
        assert_eq!(g.get(), (THREADS * PER - 1) as f64);
        assert_eq!(h.count(), (THREADS * PER) as u64);
        assert_eq!(h.try_quantile(0.99), Some(100.0));
    }

    #[test]
    fn exposition_golden_format() {
        let reg = Registry::new();
        let c = reg.counter("ucudnn_t_events_total", "Events seen.");
        c.add(3);
        let v = reg.counter_vec(
            "ucudnn_t_shed_total",
            "Sheds by reason.",
            "reason",
            &["queue_full", "with\"quote"],
        );
        v.with("queue_full").unwrap().add(2);
        v.with("with\"quote").unwrap().inc();
        let g = reg.gauge("ucudnn_t_depth", "Queue depth.");
        g.set(4.5);
        let h = reg.histogram("ucudnn_t_latency_us", "Latency.");
        h.record_with_exemplar(100.0, 42);
        let got = reg.expose();
        let want = "\
# HELP ucudnn_t_events_total Events seen.
# TYPE ucudnn_t_events_total counter
ucudnn_t_events_total 3
# HELP ucudnn_t_shed_total Sheds by reason.
# TYPE ucudnn_t_shed_total counter
ucudnn_t_shed_total{reason=\"queue_full\"} 2
ucudnn_t_shed_total{reason=\"with\\\"quote\"} 1
# HELP ucudnn_t_depth Queue depth.
# TYPE ucudnn_t_depth gauge
ucudnn_t_depth 4.5
# HELP ucudnn_t_latency_us Latency.
# TYPE ucudnn_t_latency_us summary
ucudnn_t_latency_us{quantile=\"0.5\"} 100
ucudnn_t_latency_us{quantile=\"0.95\"} 100
ucudnn_t_latency_us{quantile=\"0.99\"} 100
ucudnn_t_latency_us_sum 100
ucudnn_t_latency_us_count 1
# EXEMPLAR ucudnn_t_latency_us request_id=\"42\" value=100
# HELP ucudnn_telemetry_dropped_total Label values rejected for exceeding a family's fixed vocabulary.
# TYPE ucudnn_telemetry_dropped_total counter
ucudnn_telemetry_dropped_total 0
# EOF
";
        assert_eq!(got, want);
    }

    #[test]
    fn out_of_vocabulary_labels_are_rejected_and_counted() {
        let reg = Registry::new();
        let v = reg.counter_vec("t_total", "t", "reason", &["a", "b"]);
        assert!(v.with("a").is_some());
        assert!(v.with("hostile{injection=\"x\"}").is_none());
        assert!(v.with("c").is_none());
        assert_eq!(reg.dropped(), 2);
        let text = reg.expose();
        assert!(text.contains("ucudnn_telemetry_dropped_total 2"));
        // The rejected values minted no series.
        assert!(!text.contains("hostile"));
        let gv = reg.gauge_vec("t_g", "t", "window", &["fast"]);
        assert!(gv.with("slow").is_none());
        assert_eq!(reg.dropped(), 3);
    }

    #[test]
    fn ring_snapshots_evict_beyond_capacity() {
        let reg = Registry::with_ring(3);
        let c = reg.counter("t_total", "t");
        let h = reg.histogram("t_h", "t");
        for i in 0..5 {
            c.add(10);
            h.record(100.0 * (i + 1) as f64);
            reg.snapshot(1_000.0 * i as f64);
        }
        let ring = reg.ring("t_total", None).unwrap();
        assert_eq!(ring.len(), 3, "capacity bounds the ring");
        // Oldest snapshots (t=0, t=1000) were evicted.
        assert_eq!(ring[0].ts_us, 2_000.0);
        assert_eq!(ring[0].value, 30.0);
        assert_eq!(ring[2].ts_us, 4_000.0);
        assert_eq!(ring[2].value, 50.0);
        // Histogram snapshots consume the window: one sample each.
        let hring = reg.ring("t_h", None).unwrap();
        assert_eq!(hring.len(), 3);
        assert_eq!(hring[2].count, 1);
        assert_eq!(hring[2].value, 500.0);
        // And the history JSON renders the same content.
        let j = reg.history_json();
        assert_eq!(j.get("ring_capacity").unwrap().as_u64(), Some(3));
        let series = j.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn histogram_windows_and_cumulative_views_are_independent() {
        let reg = Registry::new();
        let h = reg.histogram("t_h", "t");
        for _ in 0..10 {
            h.record(100.0);
        }
        let w = h.take_window();
        assert_eq!(w.count, 10);
        assert_eq!(w.p50_us, Some(100.0));
        assert_eq!(h.window_count(), 0);
        h.record(400.0);
        let w2 = h.take_window();
        assert_eq!(w2.count, 1);
        assert_eq!(w2.p50_us, Some(400.0));
        // The cumulative view still answers over the full history (bucket
        // upper edge: ≤5% relative error).
        let c = h.cumulative();
        assert_eq!(c.count, 11);
        let p50 = c.p50_us.unwrap();
        assert!((100.0..=105.0).contains(&p50), "p50 {p50}");
        // An empty window has no quantiles, not fake zeros.
        let w3 = h.take_window();
        assert_eq!(w3.count, 0);
        assert_eq!(w3.p50_us, None);
        assert_eq!(w3.mean(), 0.0);
    }

    #[test]
    fn families_are_idempotent_and_shape_checked() {
        let reg = Registry::new();
        let a = reg.counter("t_total", "t");
        let b = reg.counter("t_total", "t");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same name shares the series");
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.gauge("t_total", "t")));
        assert!(r.is_err(), "kind mismatch must be loud");
    }

    #[test]
    fn ring_capacity_env_parses_strictly() {
        assert_eq!(ring_from_lookup(|_| None).unwrap(), DEFAULT_RING);
        let ok = ring_from_lookup(|k| (k == "UCUDNN_TELEMETRY_RING").then(|| " 16 ".to_string()))
            .unwrap();
        assert_eq!(ok, 16);
        for bad in ["0", "many", "-3"] {
            let e = ring_from_lookup(|k| (k == "UCUDNN_TELEMETRY_RING").then(|| bad.to_string()))
                .unwrap_err();
            assert_eq!(e.variable, "UCUDNN_TELEMETRY_RING");
        }
    }
}
