//! The WD (Workspace Division) optimizer (§III-C): one workspace for the
//! whole network, divided among kernels by a 0-1 integer linear program.
//!
//! For kernel set `K` with desirable configuration sets `S_k`, WD solves
//!
//! ```text
//! minimize   Σ_k Σ_{c ∈ S_k} T_{k,c} · x_{k,c}
//! subject to Σ_k Σ_{c ∈ S_k} M_{k,c} · x_{k,c} ≤ W_total
//!            Σ_{c ∈ S_k} x_{k,c} = 1            ∀ k
//!            x ∈ {0,1}
//! ```
//!
//! — a multiple-choice knapsack, solved exactly with the branch-and-bound
//! ILP solver from `ucudnn-lp` (the GLPK stand-in).

use crate::bench_cache::BenchCache;
use crate::config::Configuration;
use crate::error::UcudnnError;
use crate::kernel::KernelKey;
use crate::metrics::{OptimizerMetrics, Phase};
use crate::pareto::{desirable_set_traced, DesirableStats};
use crate::policy::BatchSizePolicy;
use crate::trace::PlanProvenance;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_lp::{Item, MckInstance};

/// Best-effort text of a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// One kernel's slot in a WD plan.
#[derive(Debug, Clone)]
pub struct WdAssignment {
    /// Which kernel.
    pub kernel: KernelKey,
    /// The configuration chosen by the ILP.
    pub config: Configuration,
    /// Byte offset of this kernel's segment within the global workspace.
    pub offset_bytes: usize,
    /// The decision record: desirable-set sizes, ILP choice vs. the WR
    /// endpoint, degradation rungs (DESIGN.md §10).
    pub provenance: PlanProvenance,
}

/// Result of a WD optimization.
#[derive(Debug, Clone)]
pub struct WdPlan {
    /// Per-kernel assignments, in registration order.
    pub assignments: Vec<WdAssignment>,
    /// Total workspace actually allocated (sum of segments ≤ the limit).
    pub total_workspace_bytes: usize,
    /// Number of 0-1 variables in the ILP (reported in §IV-D: 562 for
    /// ResNet-50).
    pub ilp_variables: usize,
    /// Branch-and-bound nodes explored.
    pub ilp_nodes: usize,
    /// Wall time spent in the ILP solver, microseconds.
    pub ilp_solve_us: f64,
}

impl WdPlan {
    /// Total modeled execution time of the chosen configurations.
    pub fn time_us(&self) -> f64 {
        self.assignments.iter().map(|a| a.config.time_us()).sum()
    }

    /// Look up the assignment for a kernel (first match).
    pub fn assignment(&self, kernel: &KernelKey) -> Option<&WdAssignment> {
        self.assignments.iter().find(|a| &a.kernel == kernel)
    }
}

/// Optimize a set of kernels under a total workspace budget.
///
/// ```
/// use ucudnn::{optimize_wd, BatchSizePolicy, BenchCache, KernelKey};
/// use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
/// use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};
///
/// let kernels: Vec<KernelKey> = [(64usize, 27usize, 192usize, 5usize, 2usize),
///                                (192, 13, 384, 3, 1)]
///     .iter()
///     .map(|&(c, hw, k, r, pad)| {
///         let g = ConvGeometry::with_square(
///             Shape4::new(64, c, hw, hw),
///             FilterShape::new(k, c, r, r),
///             pad,
///             1,
///         );
///         KernelKey::new(ConvOp::Forward, &g)
///     })
///     .collect();
/// let handle = CudnnHandle::simulated(ucudnn_gpu_model::p100_sxm2());
/// let cache = BenchCache::new();
/// let plan = optimize_wd(&handle, &cache, &kernels, 64 << 20,
///                        BatchSizePolicy::PowerOfTwo).unwrap();
/// assert_eq!(plan.assignments.len(), 2);
/// assert!(plan.total_workspace_bytes <= 64 << 20);
/// ```
///
/// Desirable sets are computed per unique kernel shape (and served from the
/// benchmark cache), but every kernel *instance* gets its own ILP group and
/// its own workspace segment, matching the paper's per-kernel division
/// (Fig. 14 shows separate segments for each layer's F/BD/BF kernels).
///
/// # Errors
/// [`UcudnnError::WdInfeasible`] when even the smallest configurations
/// exceed the budget. Kernels whose benchmarks all fail (fault injection,
/// crashed auto-tuner) degrade to the undivided zero-workspace fallback
/// instead of failing; [`UcudnnError::Degraded`] is returned only when that
/// fallback is impossible too.
pub fn optimize_wd(
    handle: &CudnnHandle,
    cache: &BenchCache,
    kernels: &[KernelKey],
    total_limit: usize,
    policy: BatchSizePolicy,
) -> Result<WdPlan, UcudnnError> {
    let weighted: Vec<(KernelKey, usize)> = kernels.iter().map(|k| (*k, 1)).collect();
    optimize_wd_weighted(handle, cache, &weighted, total_limit, policy)
}

/// [`optimize_wd`] with per-kernel execution multiplicities: a kernel that
/// runs `m` times per iteration (identical replicated layers sharing one
/// workspace segment) contributes `m ×` its time to the objective but only
/// one segment to the budget. This is how the transparent handle folds
/// duplicate-shape layers, which it cannot tell apart at execution time.
///
/// # Errors
/// Same conditions as [`optimize_wd`].
pub fn optimize_wd_weighted(
    handle: &CudnnHandle,
    cache: &BenchCache,
    weighted_kernels: &[(KernelKey, usize)],
    total_limit: usize,
    policy: BatchSizePolicy,
) -> Result<WdPlan, UcudnnError> {
    optimize_wd_weighted_parallel(
        handle,
        cache,
        weighted_kernels,
        total_limit,
        policy,
        1,
        None,
    )
}

/// [`optimize_wd_weighted`] with the desirable-set (Pareto) construction
/// fanned out over `threads` workers and per-phase timings recorded into
/// `metrics`.
///
/// Workers pull unique kernels off a shared index counter and feed the
/// shared [`BenchCache`], whose single-flight arbitration guarantees every
/// micro-benchmark runs exactly once even when kernels share micro-batch
/// shapes. Completed fronts land in a slot vector indexed by kernel
/// position, so the ILP consumes them in registration order and the plan is
/// byte-identical for every thread count (the simulated benchmark is a pure
/// function of device and kernel, and DP/Pareto/ILP are deterministic given
/// the cache contents).
///
/// # Errors
/// Same conditions as [`optimize_wd`].
pub fn optimize_wd_weighted_parallel(
    handle: &CudnnHandle,
    cache: &BenchCache,
    weighted_kernels: &[(KernelKey, usize)],
    total_limit: usize,
    policy: BatchSizePolicy,
    threads: usize,
    metrics: Option<&OptimizerMetrics>,
) -> Result<WdPlan, UcudnnError> {
    let kernels: Vec<KernelKey> = weighted_kernels.iter().map(|(k, _)| *k).collect();
    // Unique kernel shapes in first-seen order; identical shapes share one
    // desirable set.
    let mut unique: Vec<KernelKey> = Vec::new();
    for k in &kernels {
        if !unique.contains(k) {
            unique.push(*k);
        }
    }

    type Front = (Vec<Configuration>, DesirableStats);
    let compute_front = |k: &KernelKey| -> Front {
        match metrics {
            Some(m) => m.time(Phase::Pareto, || {
                desirable_set_traced(handle, cache, k, total_limit, policy, metrics)
            }),
            None => desirable_set_traced(handle, cache, k, total_limit, policy, None),
        }
    };

    let fronts: Vec<Front> = if threads > 1 && unique.len() > 1 {
        let next = AtomicUsize::new(0);
        let outcomes: Vec<Vec<(usize, Option<Front>)>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads.min(unique.len()))
                .map(|_| {
                    let (next, unique, compute_front) = (&next, &unique, &compute_front);
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(k) = unique.get(i) else { break };
                            // A panic loses this slot, not the process;
                            // lost slots are refilled sequentially below.
                            done.push((
                                i,
                                catch_unwind(AssertUnwindSafe(|| compute_front(k))).ok(),
                            ));
                        }
                        done
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().unwrap_or_default())
                .collect()
        });
        let mut merged: Vec<Option<Front>> = vec![None; unique.len()];
        for (i, ds) in outcomes.into_iter().flatten() {
            if let Some(ds) = ds {
                merged[i] = Some(ds);
            }
        }
        // Refill slots lost to worker panics. A second panic on the calling
        // thread is reported as an error instead of crashing the caller.
        for (i, slot) in merged.iter_mut().enumerate() {
            if slot.is_none() {
                let k = &unique[i];
                match catch_unwind(AssertUnwindSafe(|| compute_front(k))) {
                    Ok(ds) => *slot = Some(ds),
                    Err(p) => {
                        return Err(UcudnnError::WorkerPanicked(format!(
                            "desirable set for {k}: {}",
                            panic_message(p.as_ref())
                        )))
                    }
                }
            }
        }
        merged.into_iter().flatten().collect()
    } else {
        unique.iter().map(compute_front).collect()
    };

    // Per unique kernel: the desirable set, its construction stats, and
    // whether it is the undivided fallback (a provenance degradation rung).
    let mut sets: HashMap<KernelKey, (Vec<Configuration>, DesirableStats, bool)> = HashMap::new();
    for (k, (ds, stats)) in unique.iter().zip(fronts) {
        let (ds, fallback) = if ds.is_empty() {
            // Every benchmark for this kernel failed outright: degrade to
            // the undivided zero-workspace fallback (it fits any budget)
            // instead of declaring the whole network infeasible.
            match crate::wr::undivided_fallback(handle, k) {
                Some(mc) => {
                    if let Some(m) = metrics {
                        m.degradation();
                    }
                    (vec![Configuration::undivided(mc)], true)
                }
                None => {
                    return Err(UcudnnError::Degraded {
                        kernel: k.to_string(),
                        lost: format!(
                            "no desirable configuration within {total_limit} bytes and no \
                             undivided zero-workspace algorithm remains"
                        ),
                    })
                }
            }
        } else {
            (ds, false)
        };
        sets.insert(*k, (ds, stats, fallback));
    }

    // Build and solve the multiple-choice knapsack.
    let groups: Vec<Vec<Item>> = weighted_kernels
        .iter()
        .map(|(k, mult)| {
            sets[k]
                .0
                .iter()
                .map(|c| Item {
                    cost: *mult as f64 * c.time_us(),
                    weight: c.workspace_bytes() as f64,
                })
                .collect()
        })
        .collect();
    let ilp_variables = groups.iter().map(Vec::len).sum();
    let instance = MckInstance {
        groups,
        capacity: total_limit as f64,
    };
    let ilp = instance.to_ilp();
    let start = std::time::Instant::now();
    let sol = ucudnn_lp::solve_binary(&ilp);
    let ilp_solve_us = start.elapsed().as_secs_f64() * 1e6;
    if let Some(m) = metrics {
        m.add(Phase::Ilp, ilp_solve_us as u64);
    }
    if sol.status != ucudnn_lp::IlpStatus::Optimal {
        return Err(UcudnnError::WdInfeasible(format!(
            "no combination of configurations fits {total_limit} bytes"
        )));
    }
    let choices = instance.choices_from(&sol.x);

    // Lay segments out contiguously in registration order.
    let mut assignments = Vec::with_capacity(kernels.len());
    let mut offset = 0usize;
    for (k, choice) in kernels.iter().zip(choices) {
        let (ds, stats, fallback) = &sets[k];
        let config = ds[choice].clone();
        let bytes = config.workspace_bytes();
        let provenance = PlanProvenance {
            optimizer: "wd",
            candidate_sizes: stats.candidate_sizes,
            candidates_kept: stats.sizes_kept,
            pareto_generated: stats.generated,
            pareto_kept: stats.kept,
            ilp_choice: Some(choice),
            // The fastest endpoint of the desirable set is what WR would
            // have picked for this kernel alone.
            wr_choice: Some(ds.len() - 1),
            workspace_granted_bytes: bytes,
            degradations: if *fallback {
                vec!["undivided_fallback".into()]
            } else {
                Vec::new()
            },
        };
        assignments.push(WdAssignment {
            kernel: *k,
            config,
            offset_bytes: offset,
            provenance,
        });
        offset += bytes;
    }
    Ok(WdPlan {
        assignments,
        total_workspace_bytes: offset,
        ilp_variables,
        ilp_nodes: sol.nodes,
        ilp_solve_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_cudnn_sim::ConvOp;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

    const MIB: usize = 1024 * 1024;

    fn kernel(
        op: ConvOp,
        n: usize,
        c: usize,
        hw: usize,
        k: usize,
        r: usize,
        pad: usize,
    ) -> KernelKey {
        let g = ConvGeometry::with_square(
            Shape4::new(n, c, hw, hw),
            FilterShape::new(k, c, r, r),
            pad,
            1,
        );
        KernelKey::new(op, &g)
    }

    /// A small AlexNet-flavoured kernel set: two 5×5 layers and one 3×3.
    fn kernels() -> Vec<KernelKey> {
        vec![
            kernel(ConvOp::Forward, 64, 64, 27, 192, 5, 2),
            kernel(ConvOp::Forward, 64, 192, 13, 384, 3, 1),
            kernel(ConvOp::Forward, 64, 256, 13, 256, 3, 1),
        ]
    }

    #[test]
    fn respects_the_total_budget() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        for limit in [0, 8 * MIB, 64 * MIB, 512 * MIB] {
            let plan =
                optimize_wd(&h, &cache, &kernels(), limit, BatchSizePolicy::PowerOfTwo).unwrap();
            assert!(
                plan.total_workspace_bytes <= limit,
                "plan uses {} > limit {limit}",
                plan.total_workspace_bytes
            );
            assert_eq!(plan.assignments.len(), 3);
        }
    }

    #[test]
    fn segments_do_not_overlap() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let plan = optimize_wd(
            &h,
            &cache,
            &kernels(),
            256 * MIB,
            BatchSizePolicy::PowerOfTwo,
        )
        .unwrap();
        let mut spans: Vec<(usize, usize)> = plan
            .assignments
            .iter()
            .map(|a| (a.offset_bytes, a.offset_bytes + a.config.workspace_bytes()))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "segments overlap: {:?}", spans);
        }
        assert_eq!(spans.last().unwrap().1, plan.total_workspace_bytes);
    }

    #[test]
    fn more_budget_is_never_slower() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let mut prev = f64::INFINITY;
        for limit in [0, 8 * MIB, 40 * MIB, 120 * MIB, 512 * MIB] {
            let plan =
                optimize_wd(&h, &cache, &kernels(), limit, BatchSizePolicy::PowerOfTwo).unwrap();
            assert!(
                plan.time_us() <= prev + 1e-6,
                "budget {limit} slower than smaller budget"
            );
            prev = plan.time_us();
        }
    }

    #[test]
    fn wd_beats_uniform_wr_split_of_the_same_total() {
        // The Fig. 13 claim: a shared budget of K·L bytes, divided adaptively
        // by WD, beats giving every kernel L bytes under WR.
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let ks = kernels();
        let per_kernel = 8 * MIB;
        let total = per_kernel * ks.len();
        let wd = optimize_wd(&h, &cache, &ks, total, BatchSizePolicy::PowerOfTwo).unwrap();
        let wr_total: f64 = ks
            .iter()
            .map(|k| {
                crate::wr::optimize_wr(
                    &h,
                    &cache,
                    k,
                    per_kernel,
                    BatchSizePolicy::PowerOfTwo,
                    false,
                )
                .unwrap()
                .config
                .time_us()
            })
            .sum();
        assert!(
            wd.time_us() <= wr_total + 1e-6,
            "WD ({}) must not lose to uniform WR ({wr_total})",
            wd.time_us()
        );
    }

    #[test]
    fn identical_kernels_each_get_a_segment() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let k = kernel(ConvOp::Forward, 64, 64, 27, 192, 5, 2);
        let plan =
            optimize_wd(&h, &cache, &[k, k], 200 * MIB, BatchSizePolicy::PowerOfTwo).unwrap();
        assert_eq!(plan.assignments.len(), 2);
        // Same shape ⇒ same configuration, but distinct segments.
        assert_eq!(plan.assignments[0].config, plan.assignments[1].config);
        if plan.assignments[0].config.workspace_bytes() > 0 {
            assert_ne!(
                plan.assignments[0].offset_bytes,
                plan.assignments[1].offset_bytes
            );
        }
    }

    #[test]
    fn fully_faulted_benchmarks_degrade_to_zero_workspace_plan() {
        use ucudnn_cudnn_sim::{FaultPlan, FaultTarget};
        let h = CudnnHandle::simulated(p100_sxm2()).with_faults(FaultPlan {
            targets: vec![FaultTarget::any()],
            ..FaultPlan::default()
        });
        let cache = BenchCache::new();
        let m = OptimizerMetrics::new();
        let weighted: Vec<(KernelKey, usize)> = kernels().iter().map(|k| (*k, 1)).collect();
        let plan = optimize_wd_weighted_parallel(
            &h,
            &cache,
            &weighted,
            64 * MIB,
            BatchSizePolicy::PowerOfTwo,
            1,
            Some(&m),
        )
        .unwrap();
        assert_eq!(plan.assignments.len(), 3);
        assert_eq!(plan.total_workspace_bytes, 0);
        for a in &plan.assignments {
            assert!(a.config.is_undivided());
            assert_eq!(a.config.workspace_bytes(), 0);
        }
        assert!(m.degradations() > 0);
    }

    #[test]
    fn faulted_wd_plans_are_identical_across_thread_counts() {
        use ucudnn_cudnn_sim::{FaultPlan, FaultTarget};
        use ucudnn_gpu_model::ConvAlgo;
        let plan_at = |threads: usize| {
            let h = CudnnHandle::simulated(p100_sxm2()).with_faults(FaultPlan {
                targets: vec![FaultTarget::algo(ConvAlgo::Fft)],
                exec_rate: 0.05,
                ..FaultPlan::default()
            });
            let cache = BenchCache::new();
            let weighted: Vec<(KernelKey, usize)> = kernels().iter().map(|k| (*k, 1)).collect();
            optimize_wd_weighted_parallel(
                &h,
                &cache,
                &weighted,
                64 * MIB,
                BatchSizePolicy::PowerOfTwo,
                threads,
                None,
            )
            .unwrap()
        };
        let one = plan_at(1);
        for threads in [2, 8] {
            let multi = plan_at(threads);
            assert_eq!(one.assignments.len(), multi.assignments.len());
            for (a, b) in one.assignments.iter().zip(&multi.assignments) {
                assert_eq!(a.kernel, b.kernel);
                assert_eq!(
                    a.config, b.config,
                    "fault verdicts must be schedule-independent"
                );
                assert_eq!(a.offset_bytes, b.offset_bytes);
            }
        }
    }

    #[test]
    fn ilp_stats_are_populated() {
        let h = CudnnHandle::simulated(p100_sxm2());
        let cache = BenchCache::new();
        let plan = optimize_wd(
            &h,
            &cache,
            &kernels(),
            120 * MIB,
            BatchSizePolicy::PowerOfTwo,
        )
        .unwrap();
        assert!(plan.ilp_variables >= 3);
        assert!(plan.ilp_nodes >= 1);
        assert!(plan.ilp_solve_us > 0.0);
    }
}
