//! Two-phase dense-tableau simplex for linear programs in the form
//! `minimize cᵀx  s.t.  Ax {≤,=,≥} b,  x ≥ 0`.
//!
//! Bland's rule is used throughout, trading a little speed for a guarantee
//! against cycling on the degenerate bases that multiple-choice knapsack
//! relaxations routinely produce.

/// Comparison operator of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// One sparse constraint row.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices must be unique.
    pub coeffs: Vec<(usize, f64)>,
    /// Relation to the right-hand side.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization LP over non-negative variables.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of structural variables.
    pub num_vars: usize,
    /// Objective coefficients (minimized), length `num_vars`.
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// Solver outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// Solution of an [`LpProblem`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Outcome.
    pub status: LpStatus,
    /// Values of the structural variables (valid when `Optimal`).
    pub x: Vec<f64>,
    /// Objective value (valid when `Optimal`).
    pub objective: f64,
    /// Simplex pivots performed (both phases).
    pub pivots: usize,
}

const EPS: f64 = 1e-9;

struct Tableau {
    /// `rows x cols` dense matrix; the last column is the RHS.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Basic variable of each row.
    basis: Vec<usize>,
    pivots: usize,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * self.cols + c]
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let cols = self.cols;
        let pv = self.at(pr, pc);
        debug_assert!(pv.abs() > EPS, "pivot on near-zero element");
        for c in 0..cols {
            *self.at_mut(pr, c) /= pv;
        }
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let f = self.at(r, pc);
            if f.abs() <= EPS {
                continue;
            }
            for c in 0..cols {
                let v = self.at(pr, c);
                *self.at_mut(r, c) -= f * v;
            }
        }
        self.basis[pr] = pc;
        self.pivots += 1;
    }

    /// Run simplex iterations on the given objective row `z` (a dense row of
    /// reduced costs over columns, with its own RHS cell) restricted to
    /// columns `< num_cols_active`. Returns `false` when unbounded.
    fn optimize(&mut self, z: &mut [f64], num_cols_active: usize) -> bool {
        loop {
            // Bland: entering variable = smallest index with negative
            // reduced cost.
            let Some(pc) = (0..num_cols_active).find(|&c| z[c] < -EPS) else {
                return true;
            };
            // Ratio test, Bland tie-break on basis index.
            let mut pr: Option<usize> = None;
            let mut best = f64::INFINITY;
            let rhs_col = self.cols - 1;
            for r in 0..self.rows {
                let a = self.at(r, pc);
                if a > EPS {
                    let ratio = self.at(r, rhs_col) / a;
                    if ratio < best - EPS
                        || (ratio < best + EPS && pr.is_some_and(|p| self.basis[r] < self.basis[p]))
                    {
                        best = ratio;
                        pr = Some(r);
                    }
                }
            }
            let Some(pr) = pr else {
                return false; // unbounded in direction pc
            };
            self.pivot(pr, pc);
            // Update the objective row.
            let f = z[pc];
            for (c, zc) in z.iter_mut().enumerate().take(self.cols - 1) {
                *zc -= f * self.at(pr, c);
            }
            z[self.cols - 1] -= f * self.at(pr, rhs_col);
        }
    }
}

/// Solve the LP with two-phase simplex.
pub fn solve(p: &LpProblem) -> LpSolution {
    assert_eq!(p.objective.len(), p.num_vars, "objective length mismatch");
    let m = p.constraints.len();
    let n = p.num_vars;

    // Column layout: structural | slack/surplus (one per Le/Ge) | artificial.
    let num_slack = p.constraints.iter().filter(|c| c.cmp != Cmp::Eq).count();
    // Artificials are needed for Eq rows and Ge rows (after sign fix, rows
    // whose slack coefficient is negative). We conservatively give every row
    // an artificial; phase 1 drives them out and they are cheap columns.
    let num_art = m;
    let cols = n + num_slack + num_art + 1; // +1 RHS
    let mut t = Tableau {
        a: vec![0.0; m * cols],
        rows: m,
        cols,
        basis: vec![usize::MAX; m],
        pivots: 0,
    };

    let mut slack_idx = 0usize;
    for (r, c) in p.constraints.iter().enumerate() {
        // Normalize to rhs >= 0.
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(v, coef) in &c.coeffs {
            assert!(v < n, "constraint references variable {v} >= num_vars {n}");
            *t.at_mut(r, v) += sign * coef;
        }
        *t.at_mut(r, cols - 1) = sign * c.rhs;
        let cmp = match (c.cmp, flip) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match cmp {
            Cmp::Le => {
                *t.at_mut(r, n + slack_idx) = 1.0;
                slack_idx += 1;
            }
            Cmp::Ge => {
                *t.at_mut(r, n + slack_idx) = -1.0;
                slack_idx += 1;
            }
            Cmp::Eq => {}
        }
        // Artificial variable, initially basic.
        let art_col = n + num_slack + r;
        *t.at_mut(r, art_col) = 1.0;
        t.basis[r] = art_col;
    }

    // Phase 1: minimize the sum of artificials. Reduced costs of that
    // objective after pricing out the (basic) artificials.
    let mut z1 = vec![0.0; cols];
    for r in 0..m {
        for (c, zc) in z1.iter_mut().enumerate() {
            *zc -= t.at(r, c);
        }
    }
    for r in 0..m {
        z1[n + num_slack + r] = 0.0;
    }
    if !t.optimize(&mut z1, n + num_slack) {
        // Phase 1 objective is bounded below by 0, so this cannot happen.
        unreachable!("phase-1 simplex reported unbounded");
    }
    // Phase-1 optimum is -z1[rhs]; infeasible when positive.
    let phase1 = -z1[cols - 1];
    if phase1 > 1e-6 {
        return LpSolution {
            status: LpStatus::Infeasible,
            x: vec![0.0; n],
            objective: 0.0,
            pivots: t.pivots,
        };
    }
    // Drive any artificial still in the basis out (degenerate rows).
    for r in 0..m {
        if t.basis[r] >= n + num_slack {
            if let Some(pc) = (0..n + num_slack).find(|&c| t.at(r, c).abs() > EPS) {
                t.pivot(r, pc);
            }
            // Otherwise the row is all-zero (redundant constraint): leave it.
        }
    }

    // Phase 2: original objective, priced out over the current basis.
    let mut z2 = vec![0.0; cols];
    z2[..n].copy_from_slice(&p.objective);
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            let cb = p.objective[b];
            if cb != 0.0 {
                for (c, zc) in z2.iter_mut().enumerate() {
                    *zc -= cb * t.at(r, c);
                }
            }
        }
    }
    // Forbid re-entering artificial columns.
    for r in 0..m {
        z2[n + num_slack + r] = f64::INFINITY;
    }
    if !t.optimize(&mut z2, n + num_slack) {
        return LpSolution {
            status: LpStatus::Unbounded,
            x: vec![0.0; n],
            objective: f64::NEG_INFINITY,
            pivots: t.pivots,
        };
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.at(r, cols - 1);
        }
    }
    let objective = p.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpSolution {
        status: LpStatus::Optimal,
        x,
        objective,
        pivots: t.pivots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(coeffs: &[(usize, f64)], cmp: Cmp, rhs: f64) -> Constraint {
        Constraint {
            coeffs: coeffs.to_vec(),
            cmp,
            rhs,
        }
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  → (2,6), obj 36.
        let p = LpProblem {
            num_vars: 2,
            objective: vec![-3.0, -5.0],
            constraints: vec![
                c(&[(0, 1.0)], Cmp::Le, 4.0),
                c(&[(1, 2.0)], Cmp::Le, 12.0),
                c(&[(0, 3.0), (1, 2.0)], Cmp::Le, 18.0),
            ],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 2.0).abs() < 1e-6 && (s.x[1] - 6.0).abs() < 1e-6);
        assert!((s.objective + 36.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 10, x - y >= 2 → x=6? min at y as small as
        // allowed: x+y=10, x-y>=2 → y <= 4 → best y=0? x=10, obj 10? check
        // y>=0: obj = x+2y = (10-y)+2y = 10+y → min at y=0, x=10 (x-y=10>=2 ok).
        let p = LpProblem {
            num_vars: 2,
            objective: vec![1.0, 2.0],
            constraints: vec![
                c(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 10.0),
                c(&[(0, 1.0), (1, -1.0)], Cmp::Ge, 2.0),
            ],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 10.0).abs() < 1e-6 && s.x[1].abs() < 1e-6);
        assert!((s.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let p = LpProblem {
            num_vars: 1,
            objective: vec![1.0],
            constraints: vec![c(&[(0, 1.0)], Cmp::Le, 1.0), c(&[(0, 1.0)], Cmp::Ge, 2.0)],
        };
        assert_eq!(solve(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x with only x >= 0: unbounded below.
        let p = LpProblem {
            num_vars: 1,
            objective: vec![-1.0],
            constraints: vec![c(&[(0, 1.0)], Cmp::Ge, 0.0)],
        };
        assert_eq!(solve(&p).status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x <= -3  ⇔  x >= 3; min x → 3.
        let p = LpProblem {
            num_vars: 1,
            objective: vec![1.0],
            constraints: vec![c(&[(0, -1.0)], Cmp::Le, -3.0)],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let p = LpProblem {
            num_vars: 2,
            objective: vec![-1.0, -1.0],
            constraints: vec![
                c(&[(0, 1.0), (1, 1.0)], Cmp::Le, 1.0),
                c(&[(0, 2.0), (1, 2.0)], Cmp::Le, 2.0),
                c(&[(0, 1.0)], Cmp::Le, 1.0),
                c(&[(1, 1.0)], Cmp::Le, 1.0),
            ],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn multiple_choice_relaxation_has_at_most_one_fractional_group() {
        // Two groups of two configs, a knapsack over them: the LP relaxation
        // of the WD ILP. Group A: (time 10, ws 0) or (time 2, ws 8);
        // group B: (time 8, ws 0) or (time 1, ws 6). Budget 10.
        let p = LpProblem {
            num_vars: 4,
            objective: vec![10.0, 2.0, 8.0, 1.0],
            constraints: vec![
                c(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 1.0),
                c(&[(2, 1.0), (3, 1.0)], Cmp::Eq, 1.0),
                c(&[(1, 8.0), (3, 6.0)], Cmp::Le, 10.0),
            ],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        let frac =
            s.x.iter()
                .filter(|v| v.fract().abs() > 1e-6 && (1.0 - v.fract()).abs() > 1e-6)
                .count();
        assert!(
            frac <= 2,
            "MCK relaxation should be near-integral, got {:?}",
            s.x
        );
        // Objective must be <= any integral solution; best integral is 2+8=10
        // (A fast + B slow) or 10+1=11; LP can mix: must be <= 10.
        assert!(s.objective <= 10.0 + 1e-6);
    }

    #[test]
    fn redundant_equalities_leave_artificial_in_basis() {
        // x + y = 1 twice: one row becomes all-zero after phase 1.
        let p = LpProblem {
            num_vars: 2,
            objective: vec![1.0, 3.0],
            constraints: vec![
                c(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 1.0),
                c(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 1.0),
            ],
        };
        let s = solve(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 1.0).abs() < 1e-6);
        assert!((s.objective - 1.0).abs() < 1e-6);
    }
}
