//! Exact 0-1 integer linear programming by branch & bound over LP
//! relaxations — the GLPK stand-in used by the WD optimizer (DESIGN.md §2).

use crate::simplex::{self, Cmp, Constraint, LpProblem, LpStatus};

/// A 0-1 ILP: minimize `cᵀx` subject to the constraints, `x ∈ {0,1}ⁿ`.
#[derive(Debug, Clone)]
pub struct IlpProblem {
    /// The underlying LP (variables are relaxed to `x ≥ 0` plus the binary
    /// upper bounds).
    pub lp: LpProblem,
    /// Add explicit `xᵢ ≤ 1` rows for every variable. Callers whose
    /// constraints already imply the bound (e.g. multiple-choice rows
    /// `Σ xᵢⱼ = 1`) can skip them, which keeps the tableau much smaller.
    pub add_binary_bounds: bool,
}

/// Solver outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlpStatus {
    /// An optimal binary solution was found.
    Optimal,
    /// No binary assignment satisfies the constraints.
    Infeasible,
}

/// Solution of an [`IlpProblem`].
#[derive(Debug, Clone)]
pub struct IlpSolution {
    /// Outcome.
    pub status: IlpStatus,
    /// Binary assignment (valid when `Optimal`).
    pub x: Vec<bool>,
    /// Objective value (valid when `Optimal`).
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex pivots across all LP relaxations.
    pub pivots: usize,
}

const INT_TOL: f64 = 1e-6;

/// Solve a 0-1 ILP exactly.
pub fn solve_binary(p: &IlpProblem) -> IlpSolution {
    let n = p.lp.num_vars;
    let mut base = p.lp.clone();
    if p.add_binary_bounds {
        for v in 0..n {
            base.constraints.push(Constraint {
                coeffs: vec![(v, 1.0)],
                cmp: Cmp::Le,
                rhs: 1.0,
            });
        }
    }

    // Depth-first branch & bound. A node is a set of fixings (var, value).
    let mut stack: Vec<Vec<(usize, bool)>> = vec![vec![]];
    let mut incumbent: Option<(Vec<bool>, f64)> = None;
    let mut nodes = 0usize;
    let mut pivots = 0usize;

    while let Some(fixings) = stack.pop() {
        nodes += 1;
        let mut lp = base.clone();
        for &(v, val) in &fixings {
            lp.constraints.push(Constraint {
                coeffs: vec![(v, 1.0)],
                cmp: Cmp::Eq,
                rhs: if val { 1.0 } else { 0.0 },
            });
        }
        let sol = simplex::solve(&lp);
        pivots += sol.pivots;
        match sol.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // With binary bounds the relaxation is always bounded; this
                // can only mean the caller skipped bounds on an unbounded
                // problem — treat as a hard error.
                panic!("ILP relaxation unbounded: missing binary bounds?");
            }
            LpStatus::Optimal => {}
        }
        // Bound: prune when the relaxation cannot beat the incumbent.
        if let Some((_, best)) = &incumbent {
            if sol.objective >= best - INT_TOL {
                continue;
            }
        }
        // Find the most fractional variable.
        let frac = (0..n)
            .map(|v| (v, (sol.x[v] - sol.x[v].round()).abs()))
            .filter(|&(_, f)| f > INT_TOL)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match frac {
            None => {
                // Integral: new incumbent.
                let x: Vec<bool> = sol.x.iter().map(|&v| v > 0.5).collect();
                incumbent = Some((x, sol.objective));
            }
            Some((v, _)) => {
                // Branch. Push the "round toward the relaxation" child last
                // so it is explored first.
                let toward_one = sol.x[v] > 0.5;
                let mut a = fixings.clone();
                a.push((v, !toward_one));
                let mut b = fixings;
                b.push((v, toward_one));
                stack.push(a);
                stack.push(b);
            }
        }
    }

    match incumbent {
        Some((x, objective)) => IlpSolution {
            status: IlpStatus::Optimal,
            x,
            objective,
            nodes,
            pivots,
        },
        None => IlpSolution {
            status: IlpStatus::Infeasible,
            x: vec![false; n],
            objective: 0.0,
            nodes,
            pivots,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> IlpProblem {
        // max Σ v x  ⇔  min Σ (-v) x  s.t.  Σ w x ≤ cap.
        let n = values.len();
        IlpProblem {
            lp: LpProblem {
                num_vars: n,
                objective: values.iter().map(|v| -v).collect(),
                constraints: vec![Constraint {
                    coeffs: weights.iter().copied().enumerate().collect(),
                    cmp: Cmp::Le,
                    rhs: cap,
                }],
            },
            add_binary_bounds: true,
        }
    }

    fn exhaustive_knapsack(values: &[f64], weights: &[f64], cap: f64) -> f64 {
        let n = values.len();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut v, mut w) = (0.0, 0.0);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    v += values[i];
                    w += weights[i];
                }
            }
            if w <= cap + 1e-9 {
                best = best.max(v);
            }
        }
        best
    }

    #[test]
    fn knapsack_matches_exhaustive() {
        let values = [10.0, 13.0, 7.0, 8.0, 2.0, 9.0];
        let weights = [5.0, 6.0, 3.0, 4.0, 1.0, 5.0];
        for cap in [0.0, 3.0, 7.0, 11.0, 24.0] {
            let sol = solve_binary(&knapsack(&values, &weights, cap));
            assert_eq!(sol.status, IlpStatus::Optimal);
            let want = exhaustive_knapsack(&values, &weights, cap);
            assert!(
                (-sol.objective - want).abs() < 1e-6,
                "cap {cap}: got {} want {want}",
                -sol.objective
            );
        }
    }

    #[test]
    fn multiple_choice_structure_without_explicit_bounds() {
        // Two groups, pick exactly one from each, knapsack budget — the WD
        // shape. Upper bounds are implied by the group equalities.
        let p = IlpProblem {
            lp: LpProblem {
                num_vars: 4,
                objective: vec![10.0, 2.0, 8.0, 1.0],
                constraints: vec![
                    Constraint {
                        coeffs: vec![(0, 1.0), (1, 1.0)],
                        cmp: Cmp::Eq,
                        rhs: 1.0,
                    },
                    Constraint {
                        coeffs: vec![(2, 1.0), (3, 1.0)],
                        cmp: Cmp::Eq,
                        rhs: 1.0,
                    },
                    Constraint {
                        coeffs: vec![(1, 8.0), (3, 6.0)],
                        cmp: Cmp::Le,
                        rhs: 10.0,
                    },
                ],
            },
            add_binary_bounds: false,
        };
        let sol = solve_binary(&p);
        assert_eq!(sol.status, IlpStatus::Optimal);
        // Budget admits only one fast config: B fast (ws 6) + A slow = 11,
        // or A fast (ws 8) + B slow = 10 → optimum 10.
        assert!(
            (sol.objective - 10.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert_eq!(sol.x, vec![false, true, true, false]);
    }

    #[test]
    fn infeasible_binary_problem() {
        // x1 + x2 = 1 and x1 + x2 >= 2 cannot hold for binaries.
        let p = IlpProblem {
            lp: LpProblem {
                num_vars: 2,
                objective: vec![1.0, 1.0],
                constraints: vec![
                    Constraint {
                        coeffs: vec![(0, 1.0), (1, 1.0)],
                        cmp: Cmp::Eq,
                        rhs: 1.0,
                    },
                    Constraint {
                        coeffs: vec![(0, 1.0), (1, 1.0)],
                        cmp: Cmp::Ge,
                        rhs: 2.0,
                    },
                ],
            },
            add_binary_bounds: true,
        };
        assert_eq!(solve_binary(&p).status, IlpStatus::Infeasible);
    }

    #[test]
    fn fractional_relaxation_forces_branching() {
        // max x1+x2 s.t. x1+x2 <= 1.5 → LP gives 1.5, ILP must give 1.
        let p = IlpProblem {
            lp: LpProblem {
                num_vars: 2,
                objective: vec![-1.0, -1.0],
                constraints: vec![Constraint {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Le,
                    rhs: 1.5,
                }],
            },
            add_binary_bounds: true,
        };
        let sol = solve_binary(&p);
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert!((-sol.objective - 1.0).abs() < 1e-6);
        assert!(
            sol.nodes >= 2,
            "LP optimum is fractional; branching required"
        );
    }

    #[test]
    fn zero_variable_problem() {
        let p = IlpProblem {
            lp: LpProblem {
                num_vars: 0,
                objective: vec![],
                constraints: vec![],
            },
            add_binary_bounds: true,
        };
        let sol = solve_binary(&p);
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert_eq!(sol.objective, 0.0);
    }
}
