//! Multiple-choice knapsack: the combinatorial structure of the WD ILP.
//!
//! Pick exactly one item from each group, total weight ≤ capacity, minimize
//! total cost. This module offers a direct exhaustive solver (exponential,
//! for cross-checking the branch-and-bound ILP in tests and the pruning
//! ablation) and a helper to phrase an instance as an [`IlpProblem`].

use crate::ilp::{IlpProblem, IlpSolution, IlpStatus};
use crate::simplex::{Cmp, Constraint, LpProblem};

/// One candidate item: `(cost, weight)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Cost to minimize (execution time in the WD instance).
    pub cost: f64,
    /// Weight consumed (workspace bytes in the WD instance).
    pub weight: f64,
}

/// A multiple-choice knapsack instance.
#[derive(Debug, Clone)]
pub struct MckInstance {
    /// Item groups; exactly one item per group must be chosen.
    pub groups: Vec<Vec<Item>>,
    /// Total weight budget.
    pub capacity: f64,
}

impl MckInstance {
    /// Encode as a 0-1 ILP (Equations 1–4 of the paper): one binary per
    /// item, one equality per group, one knapsack row. The group equalities
    /// imply the binary upper bounds, so they are omitted from the tableau.
    pub fn to_ilp(&self) -> IlpProblem {
        let num_vars: usize = self.groups.iter().map(Vec::len).sum();
        let mut objective = Vec::with_capacity(num_vars);
        let mut constraints = Vec::with_capacity(self.groups.len() + 1);
        let mut knapsack = Vec::new();
        let mut idx = 0usize;
        for group in &self.groups {
            assert!(!group.is_empty(), "every group needs at least one item");
            let mut row = Vec::with_capacity(group.len());
            for item in group {
                objective.push(item.cost);
                if item.weight != 0.0 {
                    knapsack.push((idx, item.weight));
                }
                row.push((idx, 1.0));
                idx += 1;
            }
            constraints.push(Constraint {
                coeffs: row,
                cmp: Cmp::Eq,
                rhs: 1.0,
            });
        }
        constraints.push(Constraint {
            coeffs: knapsack,
            cmp: Cmp::Le,
            rhs: self.capacity,
        });
        IlpProblem {
            lp: LpProblem {
                num_vars,
                objective,
                constraints,
            },
            add_binary_bounds: false,
        }
    }

    /// Solve via the branch-and-bound ILP solver; returns the chosen item
    /// index per group, or `None` when infeasible.
    pub fn solve(&self) -> Option<(Vec<usize>, f64)> {
        let sol: IlpSolution = crate::ilp::solve_binary(&self.to_ilp());
        if sol.status != IlpStatus::Optimal {
            return None;
        }
        Some((self.choices_from(&sol.x), sol.objective))
    }

    /// Decode a binary assignment into per-group choices.
    pub fn choices_from(&self, x: &[bool]) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.groups.len());
        let mut idx = 0usize;
        for group in &self.groups {
            let chosen = (0..group.len())
                .find(|j| x[idx + *j])
                .expect("exactly one item per group must be selected");
            out.push(chosen);
            idx += group.len();
        }
        out
    }

    /// Exhaustive exact solver — O(∏ |group|); only for testing and small
    /// ablations.
    pub fn solve_exhaustive(&self) -> Option<(Vec<usize>, f64)> {
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut choice = vec![0usize; self.groups.len()];
        loop {
            let (mut cost, mut weight) = (0.0, 0.0);
            for (g, &j) in self.groups.iter().zip(&choice) {
                cost += g[j].cost;
                weight += g[j].weight;
            }
            if weight <= self.capacity + 1e-9
                && best.as_ref().is_none_or(|(_, b)| cost < *b - 1e-12)
            {
                best = Some((choice.clone(), cost));
            }
            // Odometer increment.
            let mut k = 0;
            loop {
                if k == self.groups.len() {
                    return best;
                }
                choice[k] += 1;
                if choice[k] < self.groups[k].len() {
                    break;
                }
                choice[k] = 0;
                k += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(cost: f64, weight: f64) -> Item {
        Item { cost, weight }
    }

    #[test]
    fn ilp_matches_exhaustive_on_fixed_instance() {
        let inst = MckInstance {
            groups: vec![
                vec![item(10.0, 0.0), item(4.0, 5.0), item(2.0, 9.0)],
                vec![item(8.0, 0.0), item(3.0, 4.0)],
                vec![item(6.0, 0.0), item(1.0, 7.0)],
            ],
            capacity: 12.0,
        };
        let (ci, vi) = inst.solve().unwrap();
        let (ce, ve) = inst.solve_exhaustive().unwrap();
        assert!((vi - ve).abs() < 1e-9, "ilp {vi} vs exhaustive {ve}");
        // Both must be feasible selections of equal cost (tie-breaks may differ).
        let cost_of =
            |ch: &[usize]| -> f64 { inst.groups.iter().zip(ch).map(|(g, &j)| g[j].cost).sum() };
        assert!((cost_of(&ci) - cost_of(&ce)).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_forces_zero_weight_items() {
        let inst = MckInstance {
            groups: vec![vec![item(9.0, 0.0), item(1.0, 1.0)]],
            capacity: 0.0,
        };
        let (c, v) = inst.solve().unwrap();
        assert_eq!(c, vec![0]);
        assert!((v - 9.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_when_no_combination_fits() {
        let inst = MckInstance {
            groups: vec![vec![item(1.0, 5.0)], vec![item(1.0, 5.0)]],
            capacity: 7.0,
        };
        assert!(inst.solve().is_none());
        assert!(inst.solve_exhaustive().is_none());
    }

    #[test]
    fn randomized_cross_check() {
        // Deterministic pseudo-random instances; B&B must equal exhaustive.
        let mut rng = ucudnn_tensor_stub::Rng::new(42);
        for trial in 0..25 {
            let num_groups = 2 + (rng.next() % 3) as usize;
            let groups: Vec<Vec<Item>> = (0..num_groups)
                .map(|_| {
                    (0..(1 + rng.next() % 4) as usize)
                        .map(|_| item((rng.next() % 100) as f64, (rng.next() % 50) as f64))
                        .collect()
                })
                .collect();
            let capacity = (rng.next() % 120) as f64;
            let inst = MckInstance { groups, capacity };
            let a = inst.solve().map(|(_, v)| v);
            let b = inst.solve_exhaustive().map(|(_, v)| v);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6, "trial {trial}: {x} vs {y}"),
                other => panic!("trial {trial}: feasibility mismatch {other:?}"),
            }
        }
    }

    /// Tiny deterministic RNG local to the tests (this crate has no deps).
    mod ucudnn_tensor_stub {
        pub struct Rng(u64);
        impl Rng {
            pub fn new(seed: u64) -> Self {
                Rng(seed)
            }
            pub fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            }
        }
    }
}
