//! Linear and 0-1 integer programming for the WD optimizer.
//!
//! The paper solves its Workspace Division problem (Equations 1–4) with
//! GLPK; this crate is the from-scratch replacement (DESIGN.md §2): a
//! two-phase dense simplex ([`simplex`]), an exact branch-and-bound binary
//! ILP solver ([`ilp`]), and a multiple-choice-knapsack front end with an
//! exhaustive cross-check solver ([`mck`]).

pub mod ilp;
pub mod mck;
pub mod simplex;

pub use ilp::{solve_binary, IlpProblem, IlpSolution, IlpStatus};
pub use mck::{Item, MckInstance};
pub use simplex::{solve, Cmp, Constraint, LpProblem, LpSolution, LpStatus};
