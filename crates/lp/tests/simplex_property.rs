//! Property tests for the simplex and ILP solvers on randomized instances.

use proptest::prelude::*;
use ucudnn_lp::{solve, solve_binary, Cmp, Constraint, IlpProblem, LpProblem, LpStatus};

/// Random 2-variable LPs with ≤ constraints (always feasible at the origin
/// when rhs ≥ 0); optimum checked against a dense grid scan.
fn small_lp() -> impl Strategy<Value = LpProblem> {
    let coef = -5.0f64..5.0;
    let rhs = 0.0f64..10.0;
    (
        prop::collection::vec((coef.clone(), coef.clone(), rhs), 1..5),
        (-3.0f64..3.0, -3.0f64..3.0),
    )
        .prop_map(|(rows, (c0, c1))| LpProblem {
            num_vars: 2,
            objective: vec![c0, c1],
            constraints: rows
                .into_iter()
                .map(|(a, b, r)| Constraint {
                    coeffs: vec![(0, a), (1, b)],
                    cmp: Cmp::Le,
                    rhs: r,
                })
                // Keep the region bounded so minimization cannot diverge.
                .chain([
                    Constraint {
                        coeffs: vec![(0, 1.0)],
                        cmp: Cmp::Le,
                        rhs: 10.0,
                    },
                    Constraint {
                        coeffs: vec![(1, 1.0)],
                        cmp: Cmp::Le,
                        rhs: 10.0,
                    },
                ])
                .collect(),
        })
}

fn feasible(p: &LpProblem, x: &[f64]) -> bool {
    x.iter().all(|v| *v >= -1e-7)
        && p.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * x[i]).sum();
            match c.cmp {
                Cmp::Le => lhs <= c.rhs + 1e-6,
                Cmp::Ge => lhs >= c.rhs - 1e-6,
                Cmp::Eq => (lhs - c.rhs).abs() <= 1e-6,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The reported optimum is feasible and beats every grid point.
    #[test]
    fn simplex_optimum_dominates_grid(p in small_lp()) {
        let sol = solve(&p);
        // Origin is feasible (all rhs >= 0, all Le), so never infeasible.
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        prop_assert!(feasible(&p, &sol.x), "reported optimum violates constraints");
        let grid_obj = |x0: f64, x1: f64| p.objective[0] * x0 + p.objective[1] * x1;
        for i in 0..=40 {
            for j in 0..=40 {
                let (x0, x1) = (i as f64 * 0.25, j as f64 * 0.25);
                if feasible(&p, &[x0, x1]) {
                    prop_assert!(
                        sol.objective <= grid_obj(x0, x1) + 1e-5,
                        "grid point ({x0},{x1}) beats the 'optimum'"
                    );
                }
            }
        }
    }

    /// ILP branch & bound equals exhaustive enumeration on random binary
    /// knapsack-with-side-constraints instances.
    #[test]
    fn ilp_matches_exhaustive(
        values in prop::collection::vec(0.0f64..20.0, 3..7),
        weights in prop::collection::vec(0.0f64..10.0, 3..7),
        cap in 0.0f64..30.0,
    ) {
        let n = values.len().min(weights.len());
        let p = IlpProblem {
            lp: LpProblem {
                num_vars: n,
                objective: values[..n].iter().map(|v| -v).collect(),
                constraints: vec![Constraint {
                    coeffs: weights[..n].iter().copied().enumerate().collect(),
                    cmp: Cmp::Le,
                    rhs: cap,
                }],
            },
            add_binary_bounds: true,
        };
        let sol = solve_binary(&p);
        // Exhaustive.
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            let (mut obj, mut w) = (0.0, 0.0);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    obj -= values[i];
                    w += weights[i];
                }
            }
            if w <= cap + 1e-9 && obj < best {
                best = obj;
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-6, "{} vs {best}", sol.objective);
        // The reported assignment must itself be feasible and match the
        // reported objective.
        let w: f64 = (0..n).filter(|&i| sol.x[i]).map(|i| weights[i]).sum();
        let o: f64 = (0..n).filter(|&i| sol.x[i]).map(|i| -values[i]).sum();
        prop_assert!(w <= cap + 1e-9);
        prop_assert!((o - sol.objective).abs() < 1e-9);
    }
}
