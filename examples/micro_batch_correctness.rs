//! Demonstrate — with real arithmetic, not the performance model — that
//! micro-batching leaves training semantics unchanged: a full forward +
//! backward step of a small CNN computed through μ-cuDNN (which splits
//! every convolution) matches the plain-cuDNN step elementwise.
//!
//! ```text
//! cargo run --release --example micro_batch_correctness
//! ```

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_framework::{BaselineCudnn, ConvProvider, LayerSpec, NetworkDef, Params, RealExecutor};
use ucudnn_tensor::{max_rel_diff, Shape4, Tensor};

fn small_cnn(batch: usize) -> NetworkDef {
    let mut net = NetworkDef::new("small-cnn", Shape4::new(batch, 3, 16, 16));
    let c1 = net.conv_bn_relu("conv1", net.input(), 8, 3, 1, 1);
    let p1 = net.add(
        "pool1",
        LayerSpec::Pool {
            max: true,
            kernel: 2,
            stride: 2,
            pad: 0,
        },
        &[c1],
    );
    let c2 = net.conv_relu("conv2", p1, 16, 5, 1, 2);
    let c3 = net.conv_relu("conv3", c2, 16, 3, 1, 1);
    let gap = net.add("gap", LayerSpec::GlobalAvgPool, &[c3]);
    net.add("fc", LayerSpec::FullyConnected { out: 10 }, &[gap]);
    net
}

fn main() {
    let batch = 12; // deliberately not a power of two
    let net = small_cnn(batch);
    let exec = RealExecutor::new(net.clone(), 2024);
    let x = Tensor::random(net.input_shape(), 7);
    let last = net.len() - 1;

    // Reference: plain cuDNN on the real CPU engine (undivided kernels).
    let base = BaselineCudnn::new(CudnnHandle::real_cpu(), 8 << 20);
    let acts_ref = exec.forward(&base, &x).unwrap();
    let dloss = Tensor::random(net.output_shape(last), 9);
    let (grads_ref, dx_ref) = exec.backward(&base, &acts_ref, &dloss).unwrap();

    // μ-cuDNN: tiny workspace limit + `all` policy forces real splitting.
    let mu = UcudnnHandle::new(
        CudnnHandle::real_cpu(),
        UcudnnOptions {
            policy: BatchSizePolicy::All,
            workspace_limit_bytes: 256 << 10, // 256 KiB: splits are mandatory
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    );
    let acts_mu = exec.forward(&mu, &x).unwrap();
    let (grads_mu, dx_mu) = exec.backward(&mu, &acts_mu, &dloss).unwrap();

    // Show how the convolutions were divided.
    println!("micro-batch divisions chosen under a 256 KiB limit:");
    for id in net.conv_layers() {
        let g = net.conv_geometry(id);
        if let Some(plan) = mu.plan(ConvOp::Forward, &g) {
            println!("  {:<8} {}", net.nodes()[id].name, plan.config);
        }
    }
    println!(
        "({} kernels launched vs {} undivided)",
        mu.inner().kernels_launched(),
        { base.handle().kernels_launched() }
    );

    // Compare everything.
    let out_diff = max_rel_diff(&acts_ref[last], &acts_mu[last]);
    let dx_diff = max_rel_diff(&dx_ref, &dx_mu);
    let mut worst_grad = 0.0f32;
    for (a, b) in grads_ref.iter().zip(&grads_mu) {
        let d = match (a, b) {
            (Params::Conv { w: wa, .. }, Params::Conv { w: wb, .. })
            | (Params::Fc { w: wa, .. }, Params::Fc { w: wb, .. }) => wa
                .iter()
                .zip(wb)
                .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
                .fold(0.0, f32::max),
            _ => 0.0,
        };
        worst_grad = worst_grad.max(d);
    }
    println!("\nmax relative difference vs undivided execution:");
    println!("  network output   : {out_diff:.3e}");
    println!("  weight gradients : {worst_grad:.3e}");
    println!("  input gradient   : {dx_diff:.3e}");
    assert!(out_diff < 1e-3 && worst_grad < 1e-2 && dx_diff < 1e-2);
    println!("\nmicro-batching preserved the training step (up to f32 reassociation). ✓");
}
