//! Benchmark a full AlexNet training iteration — plain cuDNN vs μ-cuDNN —
//! on any of the paper's three GPUs.
//!
//! ```text
//! cargo run --release --example alexnet_training -- [k80|p100|v100] [ws_mib] [batch]
//! cargo run --release --example alexnet_training -- p100 64 256
//! ```

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{alexnet, time_command, BaselineCudnn};
use ucudnn_gpu_model::{k80, p100_sxm2, v100_sxm2, DeviceSpec};

const MIB: usize = 1024 * 1024;

fn device(name: &str) -> DeviceSpec {
    match name {
        "k80" => k80(),
        "v100" => v100_sxm2(),
        _ => p100_sxm2(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dev = device(args.get(1).map(String::as_str).unwrap_or("p100"));
    let ws_mib: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
    let batch: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(256);
    let net = alexnet(batch);
    println!(
        "AlexNet, batch {batch}, {} — workspace limit {ws_mib} MiB/kernel\n",
        dev.name
    );

    // Plain cuDNN: per-layer algorithm under SPECIFY_WORKSPACE_LIMIT.
    let base = BaselineCudnn::new(CudnnHandle::simulated(dev.clone()), ws_mib * MIB);
    let rb = time_command(&base, &net, 1).unwrap();
    println!("--- plain cuDNN ---\n{}", rb.render());

    // μ-cuDNN with the `all` policy.
    let mu = UcudnnHandle::new(
        CudnnHandle::simulated(dev),
        UcudnnOptions {
            policy: BatchSizePolicy::All,
            workspace_limit_bytes: ws_mib * MIB,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    );
    let rm = time_command(&mu, &net, 1).unwrap();
    println!("--- ucudnn (WR, all) ---\n{}", rm.render());

    println!(
        "speedup: {:.2}x entire iteration, {:.2}x convolutions alone",
        rb.timing.total_us() / rm.timing.total_us(),
        rb.timing.conv_us() / rm.timing.conv_us()
    );
    println!(
        "optimization took {:.1} ms ({} kernel benchmarks)",
        mu.optimization_wall_us() / 1000.0,
        mu.cache_stats().misses
    );
    for (key, config, _) in mu.memory_report() {
        if !config.is_undivided() {
            println!("  {key}: {config}");
        }
    }
}
