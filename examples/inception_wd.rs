//! Workspace Division on an Inception module: one global workspace budget
//! divided by the ILP across four parallel convolution towers with very
//! different appetites — the paper's motivating scenario for WD (§III-A).
//!
//! ```text
//! cargo run --release --example inception_wd -- [total_mib]
//! ```

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::concurrency::overlap_schedule;
use ucudnn_framework::{inception_module, setup_network, time_iteration, BaselineCudnn};
use ucudnn_gpu_model::p100_sxm2;

const MIB: usize = 1024 * 1024;

fn main() {
    let total_mib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);
    let net = inception_module(128);
    let kernels: usize = net
        .conv_layers()
        .iter()
        .map(|&id| if net.needs_backward_data(id) { 3 } else { 2 })
        .sum();
    let per_kernel = total_mib * MIB / kernels;
    println!(
        "Inception module, batch 128, {} kernels; budget {total_mib} MiB total ({} MiB/kernel for WR)\n",
        kernels,
        per_kernel / MIB
    );

    // Uniform per-kernel split (what a framework does with cuDNN).
    let base = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), per_kernel);
    setup_network(&base, &net).unwrap();
    let tb = time_iteration(&base, &net).unwrap();

    // WD: let the ILP divide the same total.
    let mu = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::All,
            workspace_limit_bytes: total_mib * MIB,
            mode: OptimizerMode::Wd,
            ..Default::default()
        },
    );
    setup_network(&mu, &net).unwrap();
    let tm = time_iteration(&mu, &net).unwrap();

    let plan = mu.wd_plan().unwrap();
    println!(
        "WD division ({} ILP variables, {} B&B nodes, {:.2} ms solve):",
        plan.ilp_variables,
        plan.ilp_nodes,
        plan.ilp_solve_us / 1000.0
    );
    for a in &plan.assignments {
        println!(
            "  {:<36} {:>7.1} MiB  {}",
            format!("{}", a.kernel),
            a.config.workspace_bytes() as f64 / MIB as f64,
            a.config
        );
    }
    println!(
        "\nuniform cuDNN split: {:.3} ms | WD: {:.3} ms -> {:.2}x",
        tb.total_us() / 1000.0,
        tm.total_us() / 1000.0,
        tb.total_us() / tm.total_us()
    );
    println!(
        "WD allocated {:.1} MiB of the {total_mib} MiB budget",
        plan.total_workspace_bytes as f64 / MIB as f64
    );

    // §III-A's concurrency remark: WD's disjoint segments let the four
    // towers run on separate streams. Schedule the measured iteration onto
    // 4 streams and report the overlap gain.
    let overlap = overlap_schedule(&net, &tm, 4);
    println!(
        "
with 4 streams over WD's disjoint segments: {:.3} ms -> {:.3} ms ({:.2}x overlap gain, peak width {})",
        overlap.serial_us / 1000.0,
        overlap.overlapped_us / 1000.0,
        overlap.speedup(),
        overlap.max_width
    );
}
