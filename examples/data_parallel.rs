//! Data-parallel scaling (the paper's §I motivation): strong-scale an
//! AlexNet global batch of 512 over 1–8 simulated P100s, with plain cuDNN
//! vs μ-cuDNN per-replica compute.
//!
//! ```text
//! cargo run --release --example data_parallel
//! ```

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::data_parallel::{strong_scaling, ClusterSpec, ScalingPoint};
use ucudnn_framework::{alexnet, BaselineCudnn};
use ucudnn_gpu_model::p100_sxm2;

const MIB: usize = 1024 * 1024;

fn print_curve(label: &str, pts: &[ScalingPoint]) {
    println!("\n--- {label} ---");
    println!(
        "{:>4} {:>9} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "GPUs", "batch/GPU", "compute(ms)", "comm(ms)", "iter(ms)", "samples/s", "efficiency"
    );
    for p in pts {
        println!(
            "{:>4} {:>9} {:>12.2} {:>10.2} {:>12.2} {:>12.0} {:>9.0}%",
            p.gpus,
            p.per_gpu_batch,
            p.compute_us / 1000.0,
            p.comm_us / 1000.0,
            p.iter_us / 1000.0,
            p.samples_per_sec,
            100.0 * p.efficiency_vs(&pts[0]),
        );
    }
}

fn main() {
    let cluster = ClusterSpec::dgx1_like();
    let global = 512usize;
    println!(
        "AlexNet, global batch {global}, up to {} P100s, 64 MiB workspace/kernel",
        cluster.gpus
    );

    let base = strong_scaling(
        alexnet,
        || BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB),
        &cluster,
        global,
    )
    .unwrap();
    print_curve("plain cuDNN", &base);

    let mu = strong_scaling(
        alexnet,
        || {
            UcudnnHandle::new(
                CudnnHandle::simulated(p100_sxm2()),
                UcudnnOptions {
                    policy: BatchSizePolicy::PowerOfTwo,
                    workspace_limit_bytes: 64 * MIB,
                    mode: OptimizerMode::Wr,
                    ..Default::default()
                },
            )
        },
        &cluster,
        global,
    )
    .unwrap();
    print_curve("ucudnn (WR, powerOfTwo)", &mu);

    println!("\nThroughput gain from micro-batching at each scale:");
    for (b, m) in base.iter().zip(&mu) {
        println!(
            "  {} GPU(s): {:.0} -> {:.0} samples/s ({:.2}x)",
            b.gpus,
            b.samples_per_sec,
            m.samples_per_sec,
            m.samples_per_sec / b.samples_per_sec
        );
    }
    println!("\nNote how per-GPU batches shrink as replicas grow — the regime the paper's");
    println!("introduction argues against, and where workspace pressure per sample is worst.");
}
