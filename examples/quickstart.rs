//! Quickstart: wrap a cuDNN-style handle with μ-cuDNN and watch it unlock a
//! fast convolution algorithm under a tight workspace limit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::{
    ConvOp, ConvolutionDescriptor, CudnnHandle, FilterDescriptor, TensorDescriptor,
};
use ucudnn_gpu_model::p100_sxm2;

const MIB: usize = 1024 * 1024;

fn main() {
    // 1. A handle to the substrate — here the simulated P100 from the
    //    paper's evaluation. (With a real cuDNN this would be the only line
    //    that changes in your framework.)
    let cudnn = CudnnHandle::simulated(p100_sxm2());

    // 2. Wrap it. WR mode, 64 MiB per-kernel workspace, powerOfTwo policy.
    let handle = UcudnnHandle::new(
        cudnn,
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 64 * MIB,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    );

    // 3. Describe AlexNet's conv2 like any framework would.
    let x = TensorDescriptor::new_4d(256, 64, 27, 27).unwrap();
    let w = FilterDescriptor::new_4d(192, 64, 5, 5).unwrap();
    let conv = ConvolutionDescriptor::new_2d(2, 2, 1, 1).unwrap();

    // 4. Ask for an algorithm. μ-cuDNN optimizes the micro-batch division
    //    behind this call and reports zero required workspace.
    let algo = handle
        .get_algorithm(ConvOp::Forward, &x, &w, &conv)
        .unwrap();
    let ws = handle
        .get_workspace_size(ConvOp::Forward, &x, &w, &conv, algo)
        .unwrap();
    assert_eq!(ws, 0);

    // 5. Inspect the installed plan.
    let g = conv.geometry(&x, &w).unwrap();
    let plan = handle
        .plan(ConvOp::Forward, &g)
        .expect("plan installed by get_algorithm");
    println!("conv2 plan under 64 MiB: {}", plan.config);
    println!(
        "  total time {:.3} ms, resident workspace {:.1} MiB",
        plan.config.time_us() / 1000.0,
        plan.config.workspace_bytes() as f64 / MIB as f64
    );

    // 6. Execute: the wrapper replays the plan as micro-batch kernels.
    //    (Simulated engine: empty data buffers, virtual clock.)
    let y = TensorDescriptor::from_shape(g.output()).unwrap();
    handle
        .convolution_forward(1.0, &x, &[], &w, &[], &conv, algo, 0.0, &y, &mut [])
        .unwrap();
    println!(
        "executed {} kernels in {:.3} ms of simulated GPU time",
        handle.kernels_launched(),
        handle.elapsed_us() / 1000.0
    );

    // Compare with what plain cuDNN would have done under the same limit.
    let baseline = CudnnHandle::simulated(p100_sxm2());
    let perfs = baseline
        .find_algorithms(ConvOp::Forward, &x, &w, &conv)
        .unwrap();
    let fallback = perfs.iter().find(|p| p.memory_bytes <= 64 * MIB).unwrap();
    println!(
        "plain cuDNN at 64 MiB: {} in {:.3} ms -> micro-batching is {:.2}x faster",
        fallback.algo,
        fallback.time_us / 1000.0,
        fallback.time_us / plan.config.time_us()
    );
}
